(* Shared plumbing for the experiment harness. *)

let full = ref false
(* --full switches to paper-scale parameters (much slower). *)

let smoke = ref false
(* --smoke shrinks topologies/durations so CI can run the harness in
   seconds while still exercising every code path and JSON emitter. *)

let section title paper =
  Format.printf "@.==================================================================@.";
  Format.printf "%s@." title;
  Format.printf "paper reference: %s@." paper;
  Format.printf "==================================================================@."

let row fmt = Format.printf fmt

let ms s = s *. 1000.0

let run_scenario ?(spec_n = 4) ?spec ?(accounts = 1_000) ?(rate = 20.0) ?(duration = 60.0)
    ?(latency = Stellar_sim.Latency.datacenter) ?(seed = 1) () =
  let spec =
    match spec with Some s -> s | None -> Stellar_node.Topology.all_to_all ~n:spec_n
  in
  Stellar_node.Scenario.run
    {
      (Stellar_node.Scenario.default ~spec) with
      Stellar_node.Scenario.n_accounts = accounts;
      tx_rate = rate;
      duration;
      latency;
      seed;
    }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
