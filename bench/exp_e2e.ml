(* fig-e2e: end-to-end payment latency under the fig-10 load sweep (§7.3).

   The paper's headline user-visible number: a payment is confirmed within
   ~5 seconds of submission.  Each rate point runs with [observe = true];
   submit→externalize and submit→apply latencies come from the per-tx
   lifecycle events in the trace, and the per-slot critical path comes from
   the causal DAG (Flood_send msg ids ↔ Flood_recv send ids), attributing
   every externalization to network transit vs. timer wait vs. modeled CPU.

   Everything in BENCH_e2e.json derives from simulated-time stamps only, so
   the file is byte-identical across runs with the same seed. *)

module Obs = Stellar_obs

let seed = 11

(* The attribution accounting identity the report guarantees: per slot,
   network + timer + cpu must equal externalize − nominate-start to within
   1 µs of simulated time.  A violation is a bug, not noise — fail loudly. *)
let check_attribution cps =
  List.iter
    (fun cp ->
      let open Obs.Report in
      let sum = cp.network_s +. cp.timer_s +. cp.cpu_s in
      let residual = Float.abs (sum -. cp.cp_total_s) in
      if residual > 1e-6 then
        failwith
          (Printf.sprintf
             "fig-e2e: slot %d attribution broken: |%.9f - %.9f| = %.3e s > 1us"
             cp.cp_slot sum cp.cp_total_s residual))
    cps

let run () =
  Common.section "fig-e2e: end-to-end payment latency vs load"
    "§7.3: payments confirmed ~5s after submission; critical-path attribution";
  let accounts =
    if !Common.full then 100_000 else if !Common.smoke then 500 else 10_000
  in
  let rates =
    if !Common.full then [ 100.0; 150.0; 200.0; 250.0; 300.0; 350.0 ]
    else if !Common.smoke then [ 10.0; 20.0 ]
    else [ 50.0; 100.0; 200.0; 350.0 ]
  in
  let duration = if !Common.smoke then 40.0 else 60.0 in
  Common.row "%8s | %6s | %12s | %12s | %12s | %22s@." "tx/s" "txs" "ext p50(ms)"
    "ext p99(ms)" "apply p50" "critical path net/timer";
  Common.row
    "---------+--------+--------------+--------------+--------------+-----------------------@.";
  let results =
    List.map
      (fun rate ->
        let r =
          Stellar_node.Scenario.run
            {
              (Stellar_node.Scenario.default
                 ~spec:(Stellar_node.Topology.all_to_all ~n:4))
              with
              Stellar_node.Scenario.n_accounts = accounts;
              tx_rate = rate;
              duration;
              seed;
              observe = true;
            }
        in
        let telemetry =
          match r.Stellar_node.Scenario.telemetry with
          | Some c -> c
          | None -> failwith "fig-e2e: scenario ran without telemetry"
        in
        let trace = Obs.Collector.trace telemetry in
        let e2e = Obs.Report.e2e_latency trace in
        let cps = Obs.Report.critical_paths trace in
        check_attribution cps;
        let open Obs.Report in
        let cp_net = List.fold_left (fun a cp -> a +. cp.network_s) 0.0 cps in
        let cp_timer = List.fold_left (fun a cp -> a +. cp.timer_s) 0.0 cps in
        let cp_cpu = List.fold_left (fun a cp -> a +. cp.cpu_s) 0.0 cps in
        let cp_total = List.fold_left (fun a cp -> a +. cp.cp_total_s) 0.0 cps in
        Common.row "%8.0f | %6d | %12.1f | %12.1f | %12.1f | %9.0fms /%8.0fms@." rate
          e2e.n_applied
          (Common.ms e2e.submit_to_externalize.p50)
          (Common.ms e2e.submit_to_externalize.p99)
          (Common.ms e2e.submit_to_apply.p50)
          (Common.ms cp_net) (Common.ms cp_timer);
        (rate, e2e, cps, cp_net, cp_timer, cp_cpu, cp_total))
      rates
  in
  Common.row "shape check: p50 < 5000ms at every rate; attribution sums exact@.";
  let rate_json (rate, e2e, cps, cp_net, cp_timer, cp_cpu, cp_total) =
    Printf.sprintf
      {|{"rate":%.1f,"e2e":%s,"critical_path":{"slots":%d,"network_ms":%.6f,"timer_ms":%.6f,"cpu_ms":%.6f,"total_ms":%.6f},"per_slot":%s}|}
      rate
      (Obs.Report.e2e_json e2e)
      (List.length cps) (Common.ms cp_net) (Common.ms cp_timer) (Common.ms cp_cpu)
      (Common.ms cp_total)
      (Obs.Report.critical_paths_json cps)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"fig-e2e\",\n\
      \  \"seed\": %d,\n\
      \  \"nodes\": 4,\n\
      \  \"accounts\": %d,\n\
      \  \"duration_s\": %.1f,\n\
      \  \"rates\": [%s]\n\
       }\n"
      seed accounts duration
      (String.concat ",\n    " (List.map rate_json results))
  in
  let oc = open_out "BENCH_e2e.json" in
  output_string oc json;
  close_out oc;
  Common.row "wrote BENCH_e2e.json@."
