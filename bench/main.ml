(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (§6.2, §7) plus the ablation benches.

     dune exec bench/main.exe                 # all experiments, scaled
     dune exec bench/main.exe -- --full       # paper-scale parameters
     dune exec bench/main.exe -- -e fig9-accounts -e tab-qic
     dune exec bench/main.exe -- --list *)

let experiments =
  [
    ("fig7-topology", Exp_topology.run);
    ("tab-messages", Exp_messages.run);
    ("fig8-timeouts", Exp_timeouts.run);
    ("fig9-accounts", Exp_accounts.run);
    ("fig10-load", Exp_load.run);
    ("fig11-validators", Exp_validators.run);
    ("tab-close", Exp_close.run);
    ("tab-resources", Exp_resources.run);
    ("fig12-phases", Exp_phases.run);
    ("fig-e2e", Exp_e2e.run);
    ("fig-liveness", Exp_faults.run);
    ("tab-qic", Exp_quorum.run);
    ("abl-baseline", Exp_baseline.run);
    ("abl-crypto", Micro.run);
  ]

let () =
  let selected = ref [] in
  let list_only = ref false in
  let spec =
    [
      ("--full", Arg.Set Common.full, "paper-scale parameters (slow)");
      ("--smoke", Arg.Set Common.smoke, "tiny parameters for CI smoke runs");
      ("-e", Arg.String (fun s -> selected := s :: !selected), "run one experiment (repeatable)");
      ("--list", Arg.Set list_only, "list experiment ids");
    ]
  in
  Arg.parse spec (fun s -> selected := s :: !selected) "bench/main.exe [-e EXP]... [--full]";
  if !list_only then
    List.iter (fun (name, _) -> print_endline name) experiments
  else begin
    let to_run =
      match !selected with
      | [] -> experiments
      | names ->
          List.filter_map
            (fun n ->
              match List.assoc_opt n experiments with
              | Some f -> Some (n, f)
              | None ->
                  Format.eprintf "unknown experiment %s (try --list)@." n;
                  exit 1)
            (List.rev names)
    in
    let t0 = Unix.gettimeofday () in
    Format.printf "Stellar (SOSP'19) evaluation reproduction -- %s parameters@."
      (if !Common.full then "PAPER-SCALE" else "scaled-down (use --full for paper scale)");
    List.iter
      (fun (name, f) ->
        let (), dt = Common.time f in
        Format.printf "[%s finished in %.1fs]@." name dt)
      to_run;
    Format.printf "@.total: %.1fs@." (Unix.gettimeofday () -. t0)
  end
