(* fig-liveness: crash/recovery and partition-heal under load (§5.4, §6).

   A fig-10-style load sweep where the network is actively abused: a
   minority of validators crash mid-run and rejoin (bootstrapping from the
   history archive's latest checkpoint, then replaying and closing the gap
   live via straggler help), a transient loss window drops messages, one
   node turns into a Byzantine re-flooder, and a partition splits off a
   minority that later heals.  For every rate we assert that the surviving
   network never stops closing ledgers and that every node converges to the
   same header chain by the end, and we report time-to-recover quantiles
   (restart → first in-sync externalize, heal → last laggard in sync).

   Everything in BENCH_faults.json derives from simulated-time stamps, so
   the file is byte-identical across runs with the same seed — the harness
   runs the whole sweep twice and fails loudly if the bytes differ. *)

module Obs = Stellar_obs

let seed = 17
let n_nodes = 7
let interval = 5.0
let duration = 75.0
let crashed_nodes = [ 5; 6 ]

(* two nodes crash and rejoin; 5% loss while they are down; a re-flooder
   turns chatty; then {4,5,6} split off and heal 15s later *)
let faults : Stellar_node.Fault.schedule =
  [
    Stellar_node.Fault.Crash { node = 5; at = 12.0 };
    Stellar_node.Fault.Crash { node = 6; at = 14.0 };
    Stellar_node.Fault.Loss { rate = 0.05; from_ = 18.0; until_ = 24.0 };
    Stellar_node.Fault.Restart { node = 5; at = 30.0 };
    Stellar_node.Fault.Restart { node = 6; at = 32.0 };
    Stellar_node.Fault.Reflood { node = 1; at = 40.0; copies = 4 };
    Stellar_node.Fault.Partition
      {
        at = 45.0;
        groups = [ (0, 0); (1, 0); (2, 0); (3, 0); (4, 1); (5, 1); (6, 1) ];
      };
    Stellar_node.Fault.Heal { at = 60.0 };
  ]

let run_rate ~accounts rate =
  let r =
    Stellar_node.Scenario.run
      {
        (Stellar_node.Scenario.default ~spec:(Stellar_node.Topology.all_to_all ~n:n_nodes))
        with
        Stellar_node.Scenario.n_accounts = accounts;
        tx_rate = rate;
        duration;
        seed;
        ledger_interval = interval;
        observe = true;
        faults;
      }
  in
  let telemetry =
    match r.Stellar_node.Scenario.telemetry with
    | Some c -> c
    | None -> failwith "fig-liveness: scenario ran without telemetry"
  in
  let trace = Obs.Collector.trace telemetry in
  if not r.Stellar_node.Scenario.converged then begin
    let c0 =
      match r.Stellar_node.Scenario.chains with (_, c) :: _ -> Array.of_list c | [] -> [||]
    in
    List.iter
      (fun (i, c) ->
        let arr = Array.of_list c in
        let div = ref (-1) in
        Array.iteri
          (fun k h -> if !div < 0 && (k >= Array.length c0 || c0.(k) <> h) then div := k)
          arr;
        Printf.eprintf "node %d: chain length %d head %s first-divergence %d\n%!" i
          (List.length c)
          (match List.rev c with h :: _ -> String.sub h 0 12 | [] -> "-")
          !div)
      r.Stellar_node.Scenario.chains;
    failwith
      (Printf.sprintf "fig-liveness: validators did not converge at rate %.0f" rate)
  end;
  (* every crashed node must have completed an archive catchup on restart *)
  let catchup_done_nodes =
    let nodes = ref [] in
    Obs.Trace.iter trace (fun s ->
        match s.Obs.Trace.event with
        | Obs.Event.Catchup_done _ -> nodes := s.Obs.Trace.node :: !nodes
        | _ -> ());
    List.sort_uniq Int.compare !nodes
  in
  List.iter
    (fun node ->
      if not (List.mem node catchup_done_nodes) then
        failwith
          (Printf.sprintf "fig-liveness: node %d restarted without a Catchup_done event"
             node))
    crashed_nodes;
  let recoveries = Obs.Report.recoveries ~interval trace in
  let heals = Obs.Report.heals ~interval trace in
  List.iter
    (fun rc ->
      let open Obs.Report in
      if rc.recover_s = None then
        failwith
          (Printf.sprintf "fig-liveness: node %d never resynced after restart" rc.rec_node))
    recoveries;
  (match heals with
  | [] -> failwith "fig-liveness: partition heal left no trace"
  | hs ->
      List.iter
        (fun h ->
          if h.Obs.Report.heal_recover_s = None then
            failwith "fig-liveness: a partitioned node never resynced after heal")
        hs);
  (* pooled time-to-recover samples: per-crash restart→in-sync plus per-node
     heal→in-sync delays *)
  let samples =
    List.filter_map (fun rc -> rc.Obs.Report.recover_s) recoveries
    @ List.concat_map
        (fun h -> List.filter_map snd h.Obs.Report.lagged)
        heals
  in
  let q = Obs.Report.quantiles samples in
  (r, recoveries, heals, q)

let rate_json (rate, (r, recoveries, heals, q)) =
  Printf.sprintf
    {|{"rate":%.1f,"converged":%b,"ledgers_closed":%d,"final_seq":%d,"recoveries":%s,"heals":%s,"recover_quantiles":%s}|}
    rate r.Stellar_node.Scenario.converged r.Stellar_node.Scenario.ledgers_closed
    r.Stellar_node.Scenario.final_ledger_seq
    (Obs.Report.recoveries_json recoveries)
    (Obs.Report.heals_json heals)
    (Obs.Report.quantiles_json q)

let sweep ~accounts ~rates =
  let results = List.map (fun rate -> (rate, run_rate ~accounts rate)) rates in
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"fig-liveness\",\n\
      \  \"seed\": %d,\n\
      \  \"nodes\": %d,\n\
      \  \"accounts\": %d,\n\
      \  \"duration_s\": %.1f,\n\
      \  \"rates\": [%s]\n\
       }\n"
      seed n_nodes accounts duration
      (String.concat ",\n    " (List.map rate_json results))
  in
  (results, json)

let run () =
  Common.section "fig-liveness: crash/restart + partition heal under load"
    "§5.4 catchup, §6 straggler help: faulty validators rejoin and converge";
  let accounts = if !Common.full then 10_000 else if !Common.smoke then 300 else 2_000 in
  let rates =
    if !Common.full then [ 50.0; 100.0 ] else if !Common.smoke then [ 5.0 ] else [ 20.0; 50.0 ]
  in
  let results, json = sweep ~accounts ~rates in
  Common.row "%8s | %7s | %9s | %10s | %14s | %14s@." "tx/s" "ledgers" "converged"
    "recoveries" "recover p50" "recover max";
  Common.row "---------+---------+-----------+------------+----------------+---------------@.";
  List.iter
    (fun (rate, (r, recoveries, _heals, q)) ->
      Common.row "%8.0f | %7d | %9b | %10d | %12.1fms | %11.1fms@." rate
        r.Stellar_node.Scenario.ledgers_closed r.Stellar_node.Scenario.converged
        (List.length recoveries)
        (Common.ms q.Obs.Report.p50) (Common.ms q.Obs.Report.max))
    results;
  (* determinism is part of the experiment's contract: the whole sweep run
     again from the same seed must produce the same bytes *)
  let _, json2 = sweep ~accounts ~rates in
  if not (String.equal json json2) then
    failwith "fig-liveness: BENCH_faults.json not deterministic across same-seed runs";
  Common.row "shape check: all rates converged; catchup traced; two runs byte-identical@.";
  let oc = open_out "BENCH_faults.json" in
  output_string oc json;
  close_out oc;
  Common.row "wrote BENCH_faults.json@."
