(* fig12-phases: trace-derived per-slot ledger-close phase breakdown (§7.3)
   and flood amplification (§7.2), measured through the observability
   subsystem rather than the herder's own stopwatch.

   The scenario runs with [observe = true]; every number below is computed
   from the structured trace (simulated-time stamps only), so the emitted
   BENCH_phases.json is byte-identical across runs with the same seed. *)

module Obs = Stellar_obs

let seed = 7

let run () =
  Common.section "fig12-phases: per-slot phase breakdown from the trace"
    "§7.3: nomination ~0.4s, balloting ~1.4s, ledger update ~0.1s";
  let spec, _ =
    if !Common.smoke then
      Stellar_node.Topology.tiered
        ~orgs:
          Quorum_analysis.Synthesis.[ (Critical, 3); (Critical, 3); (Critical, 3) ]
        ~leaves:2 ()
    else Stellar_node.Topology.tiered ~leaves:5 ()
  in
  let duration =
    if !Common.full then 1800.0 else if !Common.smoke then 40.0 else 300.0
  in
  let r =
    Stellar_node.Scenario.run
      {
        (Stellar_node.Scenario.default ~spec) with
        Stellar_node.Scenario.n_accounts = 1_000;
        tx_rate = 15.7;
        duration;
        latency = Stellar_sim.Latency.wide_area;
        seed;
        observe = true;
      }
  in
  let telemetry =
    match r.Stellar_node.Scenario.telemetry with
    | Some c -> c
    | None -> failwith "fig12-phases: scenario ran without telemetry"
  in
  let trace = Obs.Collector.trace telemetry in
  let bd = Obs.Report.breakdown trace in
  let per_slot = Obs.Report.slot_phases trace in
  let flood = Obs.Report.flood_stats trace in
  let open Obs.Report in
  Common.row "slots measured     : %d (of %d ledgers closed)@." bd.n_slots
    r.Stellar_node.Scenario.ledgers_closed;
  Common.row "nomination         : p50 %.1fms  p99 %.1fms   (paper: ~400ms)@."
    (Common.ms bd.nomination.p50) (Common.ms bd.nomination.p99);
  Common.row "balloting          : p50 %.1fms  p99 %.1fms   (paper: ~1.4s)@."
    (Common.ms bd.ballot.p50) (Common.ms bd.ballot.p99);
  Common.row "apply (modeled)    : p50 %.2fms  p99 %.2fms   (paper: ~100ms)@."
    (Common.ms bd.apply.p50) (Common.ms bd.apply.p99);
  Common.row "end-to-end         : p50 %.1fms  p99 %.1fms@." (Common.ms bd.total.p50)
    (Common.ms bd.total.p99);
  (match List.assoc_opt 0 flood with
  | Some f ->
      Common.row "flood (node 0)     : %d recv, %d dup-dropped, amplification %.2fx@."
        f.received f.dup_dropped f.amplification
  | None -> ());
  (* Aggregate registry: deterministic counters across all nodes.  (The
     wall-clock "ledger.apply_ms" histogram deliberately stays out of the
     JSON — its sum is not reproducible.) *)
  let agg = Obs.Collector.aggregate telemetry in
  let c name = Obs.Registry.counter_value agg name in
  let n_validators =
    List.length
      (List.filter spec.Stellar_node.Topology.is_validator
         (List.init spec.Stellar_node.Topology.n_nodes Fun.id))
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"fig12-phases\",\n\
      \  \"seed\": %d,\n\
      \  \"nodes\": %d,\n\
      \  \"validators\": %d,\n\
      \  \"duration_s\": %.1f,\n\
      \  \"ledgers_closed\": %d,\n\
      \  \"phases\": %s,\n\
      \  \"per_slot\": %s,\n\
      \  \"flood\": %s,\n\
      \  \"counters\": {\n\
      \    \"scp.nominate.start\": %d,\n\
      \    \"scp.ballot.bump\": %d,\n\
      \    \"scp.timeout.nomination\": %d,\n\
      \    \"scp.timeout.ballot\": %d,\n\
      \    \"flood.unique\": %d,\n\
      \    \"flood.dup_dropped\": %d,\n\
      \    \"flood.forwarded\": %d\n\
      \  }\n\
       }\n"
      seed spec.Stellar_node.Topology.n_nodes n_validators duration
      r.Stellar_node.Scenario.ledgers_closed (breakdown_json bd)
      (phases_json per_slot) (flood_json flood) (c "scp.nominate.start")
      (c "scp.ballot.bump")
      (c "scp.timeout.nomination")
      (c "scp.timeout.ballot") (c "flood.unique") (c "flood.dup_dropped")
      (c "flood.forwarded")
  in
  let oc = open_out "BENCH_phases.json" in
  output_string oc json;
  close_out oc;
  Common.row "wrote BENCH_phases.json@."
