(* tab-resources: the cost of running a validator (§7.4).

   Paper (SDF production validator on a 2-core c5.large): ~7% of one CPU,
   ~300 MiB memory, 2.78 Mbit/s in, 2.56 Mbit/s out with 28 peer
   connections and a quorum of 34, about $40/month of hardware. *)

let run () =
  Common.section "tab-resources: per-validator resource usage"
    "§7.4: ~7% CPU, 300 MiB, 2.78/2.56 Mbit/s with 28 peers";
  let duration =
    if !Common.full then 1800.0 else if !Common.smoke then 60.0 else 300.0
  in
  let spec, _ = Stellar_node.Topology.tiered ~leaves:5 () in
  Gc.compact ();
  let cpu0 = Sys.time () in
  let heap0 = (Gc.stat ()).Gc.live_words in
  let r =
    Common.run_scenario ~spec ~accounts:1_000 ~rate:15.7 ~duration
      ~latency:Stellar_sim.Latency.wide_area ()
  in
  let cpu = Sys.time () -. cpu0 in
  let heap = (Gc.stat ()).Gc.live_words - heap0 in
  let open Stellar_node in
  let n_nodes = spec.Stellar_node.Topology.n_nodes in
  Common.row "peers (node 0)     : %d   (paper: 28)@."
    (List.length (spec.Stellar_node.Topology.peers_of 0));
  Common.row "network in         : %.2f Mbit/s   (paper: 2.78)@."
    (r.Scenario.bytes_in_per_second *. 8.0 /. 1_000_000.0);
  Common.row "network out        : %.2f Mbit/s   (paper: 2.56)@."
    (r.Scenario.bytes_out_per_second *. 8.0 /. 1_000_000.0);
  Common.row "CPU                : %.1f%% of one core per validator (paper: ~7%%)@."
    (cpu /. duration /. float_of_int n_nodes *. 100.0);
  Common.row "heap growth        : %.1f MiB across %d in-process validators@."
    (float_of_int heap *. 8.0 /. 1024.0 /. 1024.0)
    n_nodes;
  Common.row "ledger update CPU  : mean %.2fms per ledger@."
    (Common.ms r.Scenario.apply.Metrics.mean);
  Common.row "shape check        : commodity-hardware scale; network cost dominates@.";
  (* Persist the measured byte accounting so the perf trajectory is
     tracked across PRs.  Sizes are real XDR encoding lengths. *)
  let ledgers = max 1 r.Scenario.ledgers_closed in
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"tab-resources\",\n\
      \  \"duration_s\": %.1f,\n\
      \  \"nodes\": %d,\n\
      \  \"peers_node0\": %d,\n\
      \  \"ledgers_closed\": %d,\n\
      \  \"txs_applied\": %d,\n\
      \  \"bytes_in_total_node0\": %d,\n\
      \  \"bytes_out_total_node0\": %d,\n\
      \  \"bytes_in_per_ledger\": %.1f,\n\
      \  \"bytes_out_per_ledger\": %.1f,\n\
      \  \"mbit_in_per_s\": %.4f,\n\
      \  \"mbit_out_per_s\": %.4f,\n\
      \  \"cpu_pct_per_validator\": %.2f,\n\
      \  \"apply_ms_mean\": %.3f\n\
       }\n"
      duration n_nodes
      (List.length (spec.Stellar_node.Topology.peers_of 0))
      r.Scenario.ledgers_closed r.Scenario.txs_applied r.Scenario.bytes_in_total
      r.Scenario.bytes_out_total
      (float_of_int r.Scenario.bytes_in_total /. float_of_int ledgers)
      (float_of_int r.Scenario.bytes_out_total /. float_of_int ledgers)
      (r.Scenario.bytes_in_per_second *. 8.0 /. 1_000_000.0)
      (r.Scenario.bytes_out_per_second *. 8.0 /. 1_000_000.0)
      (cpu /. duration /. float_of_int n_nodes *. 100.0)
      (Common.ms r.Scenario.apply.Metrics.mean)
  in
  let oc = open_out "BENCH_resources.json" in
  output_string oc json;
  close_out oc;
  Common.row "wrote BENCH_resources.json@."
