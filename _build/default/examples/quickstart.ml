(* Quickstart: boot a 4-validator Stellar network in-process, send a payment
   through full SCP consensus, and watch every validator agree.

   Run with: dune exec examples/quickstart.exe *)

open Stellar_node
open Stellar_ledger

let scheme =
  (module Stellar_crypto.Sim_sig : Stellar_crypto.Sig_intf.SCHEME with type secret = string)

let () =
  (* 1. A deterministic simulated network: 4 validators, each trusting any
        simple majority of the others (the paper's §7.3 setup). *)
  let engine = Stellar_sim.Engine.create () in
  let rng = Stellar_sim.Rng.create ~seed:42 in
  let spec = Topology.all_to_all ~n:4 in
  let network =
    Stellar_sim.Network.create ~engine ~rng ~n:4 ~latency:Stellar_sim.Latency.datacenter ()
  in

  (* 2. A genesis ledger with two funded user accounts. *)
  let genesis, accounts = Genesis.make ~n_accounts:2 () in
  let alice = accounts.(0) and bob = accounts.(1) in

  let validators =
    Array.init 4 (fun i ->
        Validator.create ~network ~index:i
          ~peers:(spec.Topology.peers_of i)
          ~config:
            (Stellar_herder.Herder.default_config ~seed:(spec.Topology.validator_seed i)
               ~qset:(spec.Topology.qset_of i))
          ~genesis ())
  in
  Array.iter Validator.start validators;

  (* 3. Alice signs a payment and submits it to one validator. *)
  let tx =
    Tx.make ~source:alice.Genesis.public ~seq_num:1
      [
        Tx.op
          (Tx.Payment
             {
               destination = bob.Genesis.public;
               asset = Asset.native;
               amount = Asset.of_units 25;
             });
      ]
  in
  let signed = Tx.sign tx ~secret:alice.Genesis.secret ~public:alice.Genesis.public ~scheme in
  Validator.submit_tx validators.(2) signed;

  (* 4. Run 3 ledgers of virtual time (~15 s) — in milliseconds of real
        time — and inspect the result via the horizon query layer. *)
  Stellar_sim.Engine.run ~until:16.0 engine;

  Array.iter
    (fun v ->
      let herder = Validator.herder v in
      let state = Stellar_herder.Herder.state herder in
      let view = Option.get (Stellar_horizon.Queries.account state bob.Genesis.public) in
      Format.printf "validator %d: ledger #%d, bob holds %a XLM, chain head %s@."
        (Validator.index v)
        (Stellar_herder.Herder.ledger_seq herder)
        Asset.pp_amount view.Stellar_horizon.Queries.native_balance
        (match Stellar_herder.Herder.last_header herder with
        | Some h -> String.sub (Stellar_crypto.Hex.encode (Header.hash h)) 0 12
        | None -> "<none>"))
    validators;

  (* every validator must report the same chain head *)
  let heads =
    Array.to_list validators
    |> List.filter_map (fun v -> Stellar_herder.Herder.last_header (Validator.herder v))
    |> List.map Header.hash
    |> List.sort_uniq String.compare
  in
  assert (List.length heads = 1);
  Format.printf "@.all validators agree -- payment settled in seconds, atomically.@."
