examples/token_market.mli:
