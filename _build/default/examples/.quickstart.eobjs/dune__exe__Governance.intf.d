examples/governance.mli:
