examples/cross_border.mli:
