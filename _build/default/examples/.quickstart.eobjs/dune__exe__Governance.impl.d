examples/governance.ml: Array Format Genesis Stellar_herder Stellar_ledger Stellar_node Stellar_sim Topology Validator
