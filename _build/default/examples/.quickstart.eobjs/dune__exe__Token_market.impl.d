examples/token_market.ml: Apply Asset Entry Format Hashtbl List Option Price State Stellar_crypto Stellar_horizon Stellar_ledger Tx
