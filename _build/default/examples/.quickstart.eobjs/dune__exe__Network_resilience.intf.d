examples/network_resilience.mli:
