examples/quickstart.mli:
