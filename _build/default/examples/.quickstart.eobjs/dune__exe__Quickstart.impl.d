examples/quickstart.ml: Array Asset Format Genesis Header List Option Stellar_crypto Stellar_herder Stellar_horizon Stellar_ledger Stellar_node Stellar_sim String Topology Tx Validator
