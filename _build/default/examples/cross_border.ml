(* The paper's motivating scenario (§1, §7.1): send $0.50 from the U.S. to
   Mexico in seconds for a fraction of a cent.

   Two anchors issue USD and MXN.  The USD anchor runs a KYC program
   (auth_required); market makers provide USD/XLM and XLM/MXN liquidity;
   horizon's path finder picks the cheapest route; and a single atomic
   PathPayment converts USD -> XLM -> MXN with an end-to-end price bound —
   no solvency or exchange-rate risk at any intermediary.

   Run with: dune exec examples/cross_border.exe *)

open Stellar_node
open Stellar_ledger

let scheme =
  (module Stellar_crypto.Sim_sig : Stellar_crypto.Sig_intf.SCHEME with type secret = string)

let cents n = Asset.of_units n / 100 (* one hundredth of a whole unit *)

let () =
  let engine = Stellar_sim.Engine.create () in
  let rng = Stellar_sim.Rng.create ~seed:7 in
  let spec = Topology.all_to_all ~n:4 in
  let network =
    Stellar_sim.Network.create ~engine ~rng ~n:4 ~latency:Stellar_sim.Latency.wide_area ()
  in
  (* participants: anchors, market makers, alice (US) and benito (MX) *)
  let genesis, accts = Genesis.make ~n_accounts:6 () in
  let usd_anchor = accts.(0)
  and mxn_anchor = accts.(1)
  and mm_usd = accts.(2)
  and mm_mxn = accts.(3)
  and alice = accts.(4)
  and benito = accts.(5) in
  let usd = Asset.credit ~code:"USD" ~issuer:usd_anchor.Genesis.public in
  let mxn = Asset.credit ~code:"MXN" ~issuer:mxn_anchor.Genesis.public in

  let validators =
    Array.init 4 (fun i ->
        Validator.create ~network ~index:i
          ~peers:(spec.Topology.peers_of i)
          ~config:
            (Stellar_herder.Herder.default_config ~seed:(spec.Topology.validator_seed i)
               ~qset:(spec.Topology.qset_of i))
          ~genesis ())
  in
  Array.iter Validator.start validators;

  let seqs = Hashtbl.create 8 in
  let submit (who : Genesis.account) ops =
    let seq = 1 + Option.value ~default:0 (Hashtbl.find_opt seqs who.Genesis.name) in
    Hashtbl.replace seqs who.Genesis.name seq;
    let tx = Tx.make ~source:who.Genesis.public ~seq_num:seq ops in
    Validator.submit_tx validators.(0)
      (Tx.sign tx ~secret:who.Genesis.secret ~public:who.Genesis.public ~scheme)
  in
  let run_ledgers n = Stellar_sim.Engine.run ~until:(Stellar_sim.Engine.now engine +. (5.2 *. float_of_int n)) engine in

  (* --- 1. the USD anchor enables KYC enforcement --- *)
  submit usd_anchor
    [
      Tx.op
        (Tx.Set_options
           {
             master_weight = None;
             low = None;
             medium = None;
             high = None;
             signer = None;
             home_domain = Some "usd-anchor.example";
             set_auth_required = Some true;
             set_auth_revocable = Some true;
             set_auth_immutable = None;
           });
    ];
  (* --- 2. everyone opens trustlines --- *)
  List.iter
    (fun (who : Genesis.account) ->
      submit who [ Tx.op (Tx.Change_trust { asset = usd; limit = Asset.of_units 1_000_000 }) ])
    [ mm_usd; alice ];
  List.iter
    (fun (who : Genesis.account) ->
      submit who [ Tx.op (Tx.Change_trust { asset = mxn; limit = Asset.of_units 1_000_000 }) ])
    [ mm_mxn; benito ];
  run_ledgers 2;

  (* --- 3. the anchor KYCs its USD customers, then funds them --- *)
  List.iter
    (fun (who : Genesis.account) ->
      submit usd_anchor
        [
          Tx.op
            (Tx.Allow_trust { trustor = who.Genesis.public; asset_code = "USD"; authorize = true });
        ])
    [ mm_usd; alice ];
  run_ledgers 1;
  submit usd_anchor
    [ Tx.op (Tx.Payment { destination = mm_usd.Genesis.public; asset = usd; amount = Asset.of_units 10_000 }) ];
  submit usd_anchor
    [ Tx.op (Tx.Payment { destination = alice.Genesis.public; asset = usd; amount = Asset.of_units 20 }) ];
  submit mxn_anchor
    [ Tx.op (Tx.Payment { destination = mm_mxn.Genesis.public; asset = mxn; amount = Asset.of_units 100_000 }) ];
  run_ledgers 1;

  (* --- 4. market makers post liquidity ---
     mm_usd buys USD with XLM at 2 XLM per USD;
     mm_mxn sells MXN for XLM at 8.5 MXN per XLM. *)
  submit mm_usd
    [
      Tx.op
        (Tx.Manage_offer
           {
             offer_id = 0;
             selling = Asset.native;
             buying = usd;
             amount = Asset.of_units 5_000;
             price = Price.make ~n:1 ~d:2;
             passive = false;
           });
    ];
  submit mm_mxn
    [
      Tx.op
        (Tx.Manage_offer
           {
             offer_id = 0;
             selling = mxn;
             buying = Asset.native;
             amount = Asset.of_units 50_000;
             price = Price.make ~n:2 ~d:17;
             passive = false;
           });
    ];
  run_ledgers 1;

  (* --- 5. alice asks horizon for the cheapest route for 8.50 MXN --- *)
  let state = Stellar_herder.Herder.state (Validator.herder validators.(0)) in
  let want_mxn = cents 850 in
  let routes =
    Stellar_horizon.Pathfinder.find state ~source_assets:[ usd ] ~dest_asset:mxn
      ~dest_amount:want_mxn ()
  in
  let route = List.hd routes in
  Format.printf "horizon: cheapest route sends %a USD via %d hop(s) %s@."
    Asset.pp_amount route.Stellar_horizon.Pathfinder.send_amount
    (List.length route.Stellar_horizon.Pathfinder.path + 1)
    (String.concat " -> "
       (List.map (Format.asprintf "%a" Asset.pp) route.Stellar_horizon.Pathfinder.path));

  (* --- 6. one atomic path payment, with an end-to-end limit price --- *)
  let t_submit = Stellar_sim.Engine.now engine in
  submit alice
    [
      Tx.op
        (Tx.Path_payment
           {
             send_asset = usd;
             send_max = route.Stellar_horizon.Pathfinder.send_amount;
             destination = benito.Genesis.public;
             dest_asset = mxn;
             dest_amount = want_mxn;
             path = route.Stellar_horizon.Pathfinder.path;
           });
    ];
  run_ledgers 2;

  let state = Stellar_herder.Herder.state (Validator.herder validators.(0)) in
  let benito_mxn =
    match State.trustline state benito.Genesis.public mxn with
    | Some tl -> tl.Entry.tl_balance
    | None -> 0
  in
  let alice_usd =
    match State.trustline state alice.Genesis.public usd with
    | Some tl -> tl.Entry.tl_balance
    | None -> 0
  in
  Format.printf "benito received %a MXN; alice has %a USD left; fee paid: 0.0000100 XLM@."
    Asset.pp_amount benito_mxn Asset.pp_amount alice_usd;
  Format.printf "settled in %.1f virtual seconds, atomically across two currency pairs.@."
    (Stellar_sim.Engine.now engine -. t_submit);
  assert (benito_mxn = want_mxn);
  assert (State.check_integrity state = Ok ())
