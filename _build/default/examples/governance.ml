(* Upgrade governance (§5.3): global parameters change through a
   federated-voting "tussle space".  Governing validators nominate a desired
   base-fee upgrade; non-governing validators never introduce upgrades but
   go along with what the governing quorum confirms.

   Run with: dune exec examples/governance.exe *)

open Stellar_node

let () =
  let n = 5 in
  let spec = Topology.all_to_all ~n in
  let engine = Stellar_sim.Engine.create () in
  let rng = Stellar_sim.Rng.create ~seed:21 in
  let network =
    Stellar_sim.Network.create ~engine ~rng ~n ~latency:Stellar_sim.Latency.datacenter ()
  in
  let genesis, _ = Genesis.make ~n_accounts:4 () in

  (* validators 0-2 are governing and want the base fee raised to 200
     stroops; 3-4 are non-governing *)
  let validators =
    Array.init n (fun i ->
        let base =
          Stellar_herder.Herder.default_config ~seed:(spec.Topology.validator_seed i)
            ~qset:(spec.Topology.qset_of i)
        in
        let config =
          if i < 3 then
            {
              base with
              Stellar_herder.Herder.is_governing = true;
              desired_upgrades = [ Stellar_herder.Value.Upgrade_base_fee 200 ];
            }
          else base
        in
        Validator.create ~network ~index:i ~peers:(spec.Topology.peers_of i) ~config
          ~genesis ())
  in
  Array.iter Validator.start validators;

  let fee i =
    Stellar_ledger.State.base_fee
      (Stellar_herder.Herder.state (Validator.herder validators.(i)))
  in
  Format.printf "before the vote: every validator charges %d stroops per operation@." (fee 4);
  assert (fee 4 = 100);

  (* run until the upgrade activates: it takes effect on the first ledger
     whose nomination leader is a governing validator *)
  let fee_now () = fee 4 in
  let rec wait deadline =
    Stellar_sim.Engine.run ~until:(Stellar_sim.Engine.now engine +. 5.2) engine;
    if fee_now () = 100 && Stellar_sim.Engine.now engine < deadline then wait deadline
  in
  wait 200.0;

  Array.iteri
    (fun i v ->
      Format.printf "validator %d (%s): ledger #%d, base fee %d@." i
        (if i < 3 then "governing" else "non-governing")
        (Stellar_herder.Herder.ledger_seq (Validator.herder v))
        (fee i))
    validators;

  (* the upgrade activated everywhere, including on non-governing nodes *)
  for i = 0 to n - 1 do
    assert (fee i = 200)
  done;
  Format.printf
    "@.the governing quorum's desired upgrade is now in force network-wide;@.";
  Format.printf
    "non-governing validators delegated the decision without giving up safety.@."
