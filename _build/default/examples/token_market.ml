(* Non-currency tokens with an immediate secondary market (§5.2, §7.1):

   - a deed registry issues LAND deed tokens;
   - the paper's "deed deal": one transaction that atomically swaps a small
     parcel + $10,000 for a bigger parcel, signed by both parties;
   - an order book where LAND trades against USD, including a passive
     market-maker offer with zero spread.

   This example drives the ledger library directly (no consensus), the way
   unit economics tools or anchors' back offices would.

   Run with: dune exec examples/token_market.exe *)

open Stellar_ledger

let scheme =
  (module Stellar_crypto.Sim_sig : Stellar_crypto.Sig_intf.SCHEME with type secret = string)

let keys = Hashtbl.create 8

let kp name =
  match Hashtbl.find_opt keys name with
  | Some k -> k
  | None ->
      let k = Stellar_crypto.Sim_sig.keypair ~seed:(Stellar_crypto.Sha256.digest name) in
      Hashtbl.add keys name k;
      k

let pub n = snd (kp n)
let sec n = fst (kp n)
let xlm = Asset.of_units

let state =
  ref
    (State.set_header
       (State.genesis ~master:(pub "registry") ~total_xlm:(xlm 1_000_000) ())
       ~ledger_seq:2 ~close_time:1_700_000_000)

let submit ?(signers = []) name ops =
  let source = pub name in
  let seq = (Option.get (State.account !state source)).Entry.seq_num + 1 in
  let tx = Tx.make ~source ~seq_num:seq ops in
  let signed = Tx.sign tx ~secret:(sec name) ~public:source ~scheme in
  let signed =
    List.fold_left
      (fun s n -> Tx.co_sign s ~secret:(sec n) ~public:(pub n) ~scheme)
      signed signers
  in
  let state', outcome = Apply.apply_tx Apply.sim_ctx !state signed in
  state := state';
  match outcome with
  | Apply.Tx_success _ -> ()
  | other -> Format.kasprintf failwith "tx failed: %a" Apply.pp_tx_outcome other

let deed = Asset.credit ~code:"LAND" ~issuer:(pub "registry")
let usd = Asset.credit ~code:"USD" ~issuer:(pub "bank")

let trust name asset =
  submit name [ Tx.op (Tx.Change_trust { asset; limit = xlm 1_000_000 }) ]

let issue issuer dest asset amount =
  submit issuer [ Tx.op (Tx.Payment { destination = pub dest; asset; amount }) ]

let holdings name =
  let v = Option.get (Stellar_horizon.Queries.account !state (pub name)) in
  let get asset =
    List.fold_left
      (fun acc (a, b, _) -> if Asset.equal a asset then b else acc)
      0 v.Stellar_horizon.Queries.balances
  in
  (get deed, get usd)

let () =
  (* setup: registry funds participants, issues deeds; bank issues USD *)
  List.iter
    (fun name ->
      submit "registry"
        [ Tx.op (Tx.Create_account { destination = pub name; starting_balance = xlm 1_000 }) ])
    [ "bank"; "amara"; "badru"; "maker" ];
  List.iter (fun n -> trust n deed) [ "amara"; "badru"; "maker" ];
  List.iter (fun n -> trust n usd) [ "amara"; "badru"; "maker" ];
  issue "registry" "amara" deed (xlm 2);
  (* amara: two small parcels *)
  issue "registry" "badru" deed (xlm 5);
  (* badru: one big estate, tokenized as 5 units *)
  issue "bank" "amara" usd (xlm 50_000);
  issue "bank" "maker" usd (xlm 100_000);
  issue "registry" "maker" deed (xlm 50);

  (* --- the land deal (§5.2): 3 operations, 2 signers, 1 atomic tx --- *)
  let amara_land, amara_usd = holdings "amara" in
  Format.printf "before: amara {deed=%a, usd=%a}  badru {deed=%a}@." Asset.pp_amount
    amara_land Asset.pp_amount amara_usd Asset.pp_amount
    (fst (holdings "badru"));
  submit "amara"
    ~signers:[ "badru" ]
    [
      Tx.op (Tx.Payment { destination = pub "badru"; asset = deed; amount = xlm 1 });
      Tx.op (Tx.Payment { destination = pub "badru"; asset = usd; amount = xlm 10_000 });
      Tx.op ~source:(pub "badru")
        (Tx.Payment { destination = pub "amara"; asset = deed; amount = xlm 3 });
    ];
  let amara_land, amara_usd = holdings "amara" in
  Format.printf "after : amara {deed=%a, usd=%a}  badru {deed=%a, usd=%a}@."
    Asset.pp_amount amara_land Asset.pp_amount amara_usd Asset.pp_amount
    (fst (holdings "badru"))
    Asset.pp_amount (snd (holdings "badru"));

  (* --- the secondary market: LAND/USD order book --- *)
  (* maker quotes both sides around $5,000/parcel; the ask is passive so it
     never consumes an exactly-opposite bid (zero spread, §5.2) *)
  submit "maker"
    [
      Tx.op
        (Tx.Manage_offer
           {
             offer_id = 0;
             selling = deed;
             buying = usd;
             amount = xlm 10;
             (* $5,000 per deed: both assets are stroop-scaled, so the
                price ratio stays small *)
             price = Price.make ~n:5_000 ~d:1;
             passive = true;
           });
    ];
  submit "maker"
    [
      Tx.op
        (Tx.Manage_offer
           {
             offer_id = 0;
             selling = usd;
             buying = deed;
             amount = xlm 45_000;
             price = Price.make ~n:1 ~d:4_500;
             passive = false;
           });
    ];
  let book = Stellar_horizon.Queries.order_book !state ~base:deed ~quote:usd in
  Format.printf "order book LAND/USD: %d ask level(s), %d bid level(s)@."
    (List.length book.Stellar_horizon.Queries.asks)
    (List.length book.Stellar_horizon.Queries.bids);

  (* amara sells one parcel at market: crosses the maker's bid at $4,500 *)
  submit "amara"
    [
      Tx.op
        (Tx.Manage_offer
           {
             offer_id = 0;
             selling = deed;
             buying = usd;
             amount = xlm 1;
             price = Price.make ~n:4_000 ~d:1;
             passive = false;
           });
    ];
  let amara_land, amara_usd = holdings "amara" in
  Format.printf "amara sold a parcel at market: {deed=%a, usd=%a}@." Asset.pp_amount
    amara_land Asset.pp_amount amara_usd;

  (* the ledger stays internally consistent and conserves every asset *)
  assert (State.check_integrity !state = Ok ());
  Format.printf "total LAND outstanding: %a units; integrity checks pass.@."
    Asset.pp_amount (State.total_issued !state deed)
