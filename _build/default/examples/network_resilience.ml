(* Operating through failures (§3.1.1, §6).

   Three acts on a production-shaped tiered network:

   1. one validator in each of three tier-1 organizations crashes — the
      51% intra-org thresholds absorb it and ledgers keep closing;
   2. an entire tier-1 organization goes dark — by design the 100% critical
      tier halts (a liveness failure, which §3.1.1 argues is vastly
      preferable to a safety failure);
   3. the remaining operators each unilaterally drop the dead org from
      their slices — no coordinated "view change" — and the network resumes,
      while the §6.2 tooling reports the reduced safety margin.

   Run with: dune exec examples/network_resilience.exe *)

open Stellar_node

let () =
  let spec, orgs = Topology.tiered () in
  Format.printf "booting: %s@." (Topology.describe spec);

  (* --- §6.2 pre-flight checks on the collective configuration --- *)
  let as_crit_orgs os =
    List.map
      (fun o ->
        {
          Quorum_analysis.Criticality.name = o.Quorum_analysis.Synthesis.name;
          validators = o.Quorum_analysis.Synthesis.validators;
        })
      os
  in
  let config = Topology.network_config spec in
  (match Quorum_analysis.Intersection.check config with
  | Quorum_analysis.Intersection.Intersecting ->
      Format.printf "pre-flight: quorum intersection holds@."
  | _ -> failwith "refusing to launch a splittable network");
  let crit = Quorum_analysis.Criticality.critical_orgs config (as_crit_orgs orgs) in
  Format.printf "pre-flight: %d org(s) flagged critical@." (List.length crit);

  (* --- boot --- *)
  let engine = Stellar_sim.Engine.create () in
  let rng = Stellar_sim.Rng.create ~seed:99 in
  let network =
    Stellar_sim.Network.create ~engine ~rng ~n:spec.Topology.n_nodes
      ~latency:Stellar_sim.Latency.wide_area ()
  in
  let genesis, _ = Genesis.make ~n_accounts:10 () in
  let buckets = Stellar_bucket.Bucket_list.of_state genesis in
  let validators =
    Array.init spec.Topology.n_nodes (fun i ->
        Validator.create ~network ~index:i
          ~peers:(spec.Topology.peers_of i)
          ~config:
            (Stellar_herder.Herder.default_config ~seed:(spec.Topology.validator_seed i)
               ~qset:(spec.Topology.qset_of i))
          ~genesis ~buckets ())
  in
  Array.iter Validator.start validators;
  let seq i = Stellar_herder.Herder.ledger_seq (Validator.herder validators.(i)) in
  let ids = Topology.node_ids spec in
  let crash_ids victim_ids =
    Array.iteri
      (fun i id -> if List.mem id victim_ids then Stellar_sim.Network.set_down network i true)
      ids
  in

  Stellar_sim.Engine.run ~until:20.0 engine;
  Format.printf "@.t=20s : ledger #%d -- healthy network@." (seq 0);

  (* --- act 1: one validator per org in three orgs --- *)
  let one_of o =
    (* crash the org's last validator (not its overlay gateway) *)
    let vs = o.Quorum_analysis.Synthesis.validators in
    [ List.nth vs (List.length vs - 1) ]
  in
  List.iteri (fun i o -> if i >= 2 && i <= 4 then crash_ids (one_of o)) orgs;
  Format.printf "t=20s : one validator crashes in each of orgs 2, 3, 4@.";
  Stellar_sim.Engine.run ~until:45.0 engine;
  let after_act1 = seq 0 in
  Format.printf "t=45s : ledger #%d -- 51%% org thresholds absorbed the losses@." after_act1;
  assert (after_act1 >= 7);

  (* --- act 2: all of org-1 goes dark --- *)
  let org1 = List.nth orgs 1 in
  crash_ids org1.Quorum_analysis.Synthesis.validators;
  Format.printf "t=45s : ALL of %s crashes (critical tier requires 100%%)@."
    org1.Quorum_analysis.Synthesis.name;
  Stellar_sim.Engine.run ~until:75.0 engine;
  let stalled = seq 0 in
  Format.printf "t=75s : ledger #%d -- network halted, but SAFE (no divergence possible)@."
    stalled;
  assert (stalled <= after_act1 + 2);

  (* --- act 3: unilateral reconfiguration around the outage --- *)
  let surviving_orgs = List.filteri (fun i _ -> i <> 1) orgs in
  let new_qset = Quorum_analysis.Synthesis.quorum_set surviving_orgs in
  Array.iter
    (fun v ->
      if not (Stellar_sim.Network.is_down network (Validator.index v)) then
        Stellar_herder.Herder.set_quorum_set (Validator.herder v) new_qset)
    validators;
  Format.printf "t=75s : operators drop %s from their slices (each acting alone)@."
    org1.Quorum_analysis.Synthesis.name;
  Stellar_sim.Engine.run ~until:110.0 engine;
  let resumed = seq 0 in
  Format.printf "t=110s: ledger #%d -- liveness restored@." resumed;
  assert (resumed > stalled);

  (* live validators still agree on the chain *)
  let live_heads =
    Array.to_list validators
    |> List.filter (fun v ->
           spec.Topology.is_validator (Validator.index v)
           && not (Stellar_sim.Network.is_down network (Validator.index v)))
    |> List.filter_map (fun v -> Stellar_herder.Herder.last_header (Validator.herder v))
    |> List.filter (fun h -> h.Stellar_ledger.Header.ledger_seq = resumed)
    |> List.map Stellar_ledger.Header.hash
    |> List.sort_uniq String.compare
  in
  assert (List.length live_heads = 1);

  (* --- the doctor reports the new, thinner margin --- *)
  let new_config = Quorum_analysis.Synthesis.network_config surviving_orgs in
  (match Quorum_analysis.Intersection.check new_config with
  | Quorum_analysis.Intersection.Intersecting ->
      Format.printf "post-reconfig: intersection still holds@."
  | _ -> Format.printf "post-reconfig: DANGER -- disjoint quorums possible@.");
  let crit' =
    Quorum_analysis.Criticality.critical_orgs new_config (as_crit_orgs surviving_orgs)
  in
  Format.printf "post-reconfig: %d org(s) critical (was %d) -- operators notified.@."
    (List.length crit') (List.length crit)
