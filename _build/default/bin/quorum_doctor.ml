(* The §6.2 misconfiguration detector as a CLI: synthesize (or load) a
   topology, check quorum intersection, and report critical orgs. *)

open Cmdliner

let run leaves drop_org =
  let spec, orgs = Stellar_node.Topology.tiered ~leaves () in
  Format.printf "topology: %s@." (Stellar_node.Topology.describe spec);
  let orgs =
    if drop_org >= 0 then List.filteri (fun i _ -> i <> drop_org) orgs else orgs
  in
  let config = Quorum_analysis.Synthesis.network_config orgs in
  Format.printf "validators in collective configuration: %d@."
    (Quorum_analysis.Network_config.size config);
  let t0 = Unix.gettimeofday () in
  (match Quorum_analysis.Intersection.check config with
  | Quorum_analysis.Intersection.Intersecting ->
      Format.printf "quorum intersection: OK (%d branch nodes, %.3fs)@."
        (Quorum_analysis.Intersection.stats ())
        (Unix.gettimeofday () -. t0)
  | Quorum_analysis.Intersection.Disjoint (a, b) ->
      Format.printf "!! DISJOINT QUORUMS (%d vs %d nodes) — the network can diverge@."
        (List.length a) (List.length b)
  | Quorum_analysis.Intersection.No_quorum ->
      Format.printf "!! configuration contains no quorum at all@.");
  let crit_orgs =
    Quorum_analysis.Criticality.critical_orgs config
      (List.map
         (fun o ->
           {
             Quorum_analysis.Criticality.name = o.Quorum_analysis.Synthesis.name;
             validators = o.Quorum_analysis.Synthesis.validators;
           })
         orgs)
  in
  match crit_orgs with
  | [] -> Format.printf "criticality: no single org's misconfiguration can split the network@."
  | l ->
      List.iter
        (fun o ->
          Format.printf "criticality WARNING: org %s is one misconfiguration from divergence@."
            o.Quorum_analysis.Criticality.name)
        l

let leaves = Arg.(value & opt int 0 & info [ "leaves" ] ~doc:"Watcher nodes")

let drop_org =
  Arg.(value & opt int (-1) & info [ "drop-org" ] ~doc:"Remove org i before checking")

let cmd =
  Cmd.v
    (Cmd.info "quorum_doctor" ~doc:"Check quorum intersection and criticality (§6.2)")
    Term.(const run $ leaves $ drop_org)

let () = exit (Cmd.eval cmd)
