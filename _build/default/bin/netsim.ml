(* Command-line driver for the network simulator: run one scenario and
   print its report.  `netsim --help` for options. *)

open Cmdliner

let run validators accounts rate duration latency_name topology leaves seed =
  let latency =
    match latency_name with
    | "datacenter" -> Stellar_sim.Latency.datacenter
    | "wide-area" -> Stellar_sim.Latency.wide_area
    | s -> (
        match float_of_string_opt s with
        | Some ms -> Stellar_sim.Latency.Constant (ms /. 1000.0)
        | None -> failwith "latency must be datacenter, wide-area, or a number (ms)")
  in
  let spec =
    match topology with
    | "all-to-all" -> Stellar_node.Topology.all_to_all ~n:validators
    | "tiered" ->
        let spec, _ = Stellar_node.Topology.tiered ~leaves () in
        spec
    | _ -> failwith "topology must be all-to-all or tiered"
  in
  let params =
    {
      (Stellar_node.Scenario.default ~spec) with
      Stellar_node.Scenario.n_accounts = accounts;
      tx_rate = rate;
      duration;
      latency;
      seed;
    }
  in
  Format.printf "topology: %s@." (Stellar_node.Topology.describe spec);
  let report = Stellar_node.Scenario.run params in
  Format.printf "%a@." Stellar_node.Scenario.pp_report report;
  if report.Stellar_node.Scenario.diverged then exit 2

let validators =
  Arg.(value & opt int 4 & info [ "n"; "validators" ] ~doc:"Number of validators")

let accounts = Arg.(value & opt int 1000 & info [ "accounts" ] ~doc:"Ledger accounts")
let rate = Arg.(value & opt float 20.0 & info [ "rate" ] ~doc:"Payments per second")

let duration =
  Arg.(value & opt float 60.0 & info [ "duration" ] ~doc:"Virtual seconds under load")

let latency =
  Arg.(
    value
    & opt string "datacenter"
    & info [ "latency" ] ~doc:"datacenter | wide-area | <milliseconds>")

let topology =
  Arg.(value & opt string "all-to-all" & info [ "topology" ] ~doc:"all-to-all | tiered")

let leaves = Arg.(value & opt int 0 & info [ "leaves" ] ~doc:"Watcher nodes (tiered only)")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed")

let cmd =
  Cmd.v
    (Cmd.info "netsim" ~doc:"Simulate a Stellar network under payment load")
    Term.(
      const run $ validators $ accounts $ rate $ duration $ latency $ topology $ leaves
      $ seed)

let () = exit (Cmd.eval cmd)
