type spec = {
  n_nodes : int;
  validator_seed : int -> string;
  qset_of : int -> Scp.Quorum_set.t;
  peers_of : int -> int list;
  is_validator : int -> bool;
}

let seed_of i = Stellar_crypto.Sha256.digest (Printf.sprintf "validator-%d" i)

let public_of i = snd (Stellar_crypto.Sim_sig.keypair ~seed:(seed_of i))

let all_to_all ~n =
  let ids = List.init n public_of in
  let qset = Scp.Quorum_set.majority ids in
  {
    n_nodes = n;
    validator_seed = seed_of;
    qset_of = (fun _ -> qset);
    peers_of = (fun i -> List.filter (fun j -> j <> i) (List.init n Fun.id));
    is_validator = (fun _ -> true);
  }

let default_orgs =
  Quorum_analysis.Synthesis.
    [
      (* 17 tier-one validators across 5 organizations (§7.2) *)
      (Critical, 4);
      (Critical, 3);
      (Critical, 3);
      (Critical, 3);
      (Critical, 4);
      (High, 3);
      (High, 3);
      (Medium, 2);
      (Medium, 2);
    ]

let tiered ?(orgs = default_orgs) ?(leaves = 0) () =
  (* assign node indices: org validators first, then leaves *)
  let org_specs =
    List.mapi (fun oi (quality, count) -> (oi, quality, count)) orgs
  in
  let n_validators = List.fold_left (fun acc (_, _, c) -> acc + c) 0 org_specs in
  let n_nodes = n_validators + leaves in
  let org_of_node = Array.make n_nodes (-1) in
  let org_members = Array.make (List.length orgs) [] in
  let next = ref 0 in
  List.iter
    (fun (oi, _, count) ->
      for _ = 1 to count do
        org_of_node.(!next) <- oi;
        org_members.(oi) <- !next :: org_members.(oi);
        incr next
      done)
    org_specs;
  let synth_orgs =
    List.map
      (fun (oi, quality, _) ->
        Quorum_analysis.Synthesis.org ~quality ~name:(Printf.sprintf "org-%d" oi)
          (List.map public_of (List.rev org_members.(oi))))
      org_specs
  in
  let qset = Quorum_analysis.Synthesis.quorum_set synth_orgs in
  let org_first oi = List.hd (List.rev org_members.(oi)) in
  let norgs = List.length orgs in
  let peers_of i =
    if i < n_validators then begin
      let oi = org_of_node.(i) in
      (* full mesh within the org *)
      let intra = List.filter (fun j -> j <> i) org_members.(oi) in
      (* gateways fully meshed across orgs; additionally EVERY validator
         keeps two links into other orgs so no single crash partitions the
         overlay *)
      let inter =
        if i = org_first oi then
          List.filter_map
            (fun (oj, _, _) -> if oj <> oi then Some (org_first oj) else None)
            org_specs
        else []
      in
      let redundant =
        if norgs > 1 then
          [
            org_first ((oi + 1 + (i mod (norgs - 1))) mod norgs);
            org_first ((oi + 1 + ((i + 1) mod (norgs - 1))) mod norgs);
          ]
          |> List.filter (fun j -> org_of_node.(j) <> oi)
        else []
      in
      List.sort_uniq Int.compare (intra @ inter @ redundant)
    end
    else begin
      (* leaf watcher: attach to two org gateways chosen by index *)
      [ org_first (i mod norgs); org_first ((i + 1) mod norgs) ]
    end
  in
  ( {
      n_nodes;
      validator_seed = seed_of;
      qset_of = (fun _ -> qset);
      peers_of;
      is_validator = (fun i -> i < n_validators);
    },
    synth_orgs )

let node_ids spec = Array.init spec.n_nodes public_of

let network_config spec =
  let assoc =
    List.filter_map
      (fun i -> if spec.is_validator i then Some (public_of i, spec.qset_of i) else None)
      (List.init spec.n_nodes Fun.id)
  in
  Quorum_analysis.Network_config.of_assoc assoc

let describe spec =
  let validators =
    List.length (List.filter spec.is_validator (List.init spec.n_nodes Fun.id))
  in
  let edges =
    List.fold_left (fun acc i -> acc + List.length (spec.peers_of i)) 0
      (List.init spec.n_nodes Fun.id)
  in
  Printf.sprintf "%d nodes (%d validators), %d directed overlay links" spec.n_nodes
    validators edges
