(** Network topologies for the experiments.

    [all_to_all] reproduces the controlled experiments of §7.3 ("every
    validator in all validators' quorum slices, with quorum slices set to
    any simple majority").  [tiered] reproduces the production network's
    shape (Fig. 6/7): a core of tier-1 organizations everyone references,
    mid-tier orgs, and leaf watchers. *)

type spec = {
  n_nodes : int;
  validator_seed : int -> string;
  qset_of : int -> Scp.Quorum_set.t;  (** quorum set for node [i] *)
  peers_of : int -> int list;  (** overlay links for node [i] *)
  is_validator : int -> bool;
}

val all_to_all : n:int -> spec

val tiered :
  ?orgs:(Quorum_analysis.Synthesis.quality * int) list ->
  ?leaves:int ->
  unit ->
  spec * Quorum_analysis.Synthesis.org list
(** [orgs] gives (quality, validator count) per organization; default is a
    production-like layout: 5 critical orgs of 3 validators (the paper's 17
    tier-1 nodes across SDF, SatoshiPay, LOBSTR, COINQVEST, Keybase — one
    runs 5), plus mid-tier orgs.  [leaves] adds non-validating watchers.
    Peers: validators within an org fully meshed, orgs connected through
    their first validators, leaves attached randomly. *)

val node_ids : spec -> Scp.Types.node_id array
val network_config : spec -> Quorum_analysis.Network_config.t
(** The collective configuration of all validators, for §6.2 checks. *)

val describe : spec -> string
