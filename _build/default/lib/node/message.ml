type t =
  | Envelope of Scp.Types.envelope
  | Tx_set_msg of Stellar_herder.Tx_set.t
  | Tx_msg of Stellar_ledger.Tx.signed

let size = function
  | Envelope env -> Scp.Types.envelope_size env
  | Tx_set_msg ts -> Stellar_herder.Tx_set.size_bytes ts + 64
  | Tx_msg signed -> Stellar_ledger.Tx.size signed

let dedup_key = function
  | Envelope env ->
      Stellar_crypto.Sha256.digest_list
        [ "env"; Scp.Types.statement_bytes env.Scp.Types.statement; env.Scp.Types.signature ]
  | Tx_set_msg ts -> Stellar_herder.Tx_set.hash ts
  | Tx_msg signed -> Stellar_ledger.Tx.hash signed.Stellar_ledger.Tx.tx
