type summary = {
  count : int;
  mean : float;
  p50 : float;
  p75 : float;
  p99 : float;
  max : float;
}

let zero = { count = 0; mean = 0.0; p50 = 0.0; p75 = 0.0; p99 = 0.0; max = 0.0 }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let idx = int_of_float (q *. float_of_int (n - 1)) in
    sorted.(max 0 (min (n - 1) idx))
  end

let summarize values =
  match values with
  | [] -> zero
  | _ ->
      let arr = Array.of_list values in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let total = Array.fold_left ( +. ) 0.0 arr in
      {
        count = n;
        mean = total /. float_of_int n;
        p50 = percentile arr 0.50;
        p75 = percentile arr 0.75;
        p99 = percentile arr 0.99;
        max = arr.(n - 1);
      }

let pp_ms fmt s =
  Format.fprintf fmt "mean=%.1fms p50=%.1f p99=%.1f max=%.1f (n=%d)" (s.mean *. 1000.0)
    (s.p50 *. 1000.0) (s.p99 *. 1000.0) (s.max *. 1000.0) s.count
