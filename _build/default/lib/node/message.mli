(** Overlay wire messages: SCP envelopes, transaction sets and transactions
    flooded among peers (§5.4, §7.5: a naive flooding protocol). *)

type t =
  | Envelope of Scp.Types.envelope
  | Tx_set_msg of Stellar_herder.Tx_set.t
  | Tx_msg of Stellar_ledger.Tx.signed

val size : t -> int
(** Serialized size in bytes, for bandwidth accounting (§7.4). *)

val dedup_key : t -> string
(** Hash used by flood deduplication. *)
