(** Test-ledger construction: the analogue of stellar-core's [generateload]
    account-creation phase (§7.3), building a genesis state with N funded
    accounts directly (the paper notes they could not just populate the
    database via SQL; we can, because the state is ours). *)

type account = { name : int; secret : string; public : string }

val account_keys : int -> account
(** Deterministic key pair for test account [i]. *)

val make :
  ?base_reserve:int ->
  ?balance:int ->
  n_accounts:int ->
  unit ->
  Stellar_ledger.State.t * account array
(** A genesis state holding [n_accounts] funded accounts plus a master
    account with the remaining supply. *)

val master_seed : string
