(** Small statistics helpers for the experiment reports. *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p75 : float;
  p99 : float;
  max : float;
}

val summarize : float list -> summary
val zero : summary
val pp_ms : Format.formatter -> summary -> unit

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]]. *)
