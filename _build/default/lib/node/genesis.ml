open Stellar_ledger

type account = { name : int; secret : string; public : string }

let master_seed = Stellar_crypto.Sha256.digest "genesis-master"

let account_keys i =
  let seed = Stellar_crypto.Sha256.digest (Printf.sprintf "genesis-account-%d" i) in
  let secret, public = Stellar_crypto.Sim_sig.keypair ~seed in
  { name = i; secret; public }

let make ?(base_reserve = 5_000_000) ?(balance = Asset.of_units 10_000) ~n_accounts () =
  let _, master = Stellar_crypto.Sim_sig.keypair ~seed:master_seed in
  let total = Asset.of_units 1_000_000_000_000 in
  let state = State.genesis ~base_reserve ~master ~total_xlm:total () in
  let accounts = Array.init n_accounts account_keys in
  let state =
    Array.fold_left
      (fun state a ->
        State.put_account state (Entry.new_account ~id:a.public ~balance ~seq_num:0))
      state accounts
  in
  (* keep the XLM supply invariant: debit the master for what was created *)
  let state =
    match State.account state master with
    | Some m ->
        State.put_account state
          { m with Entry.balance = m.Entry.balance - (n_accounts * balance) }
    | None -> state
  in
  let state, _ = State.take_dirty state in
  (state, accounts)
