lib/node/message.mli: Scp Stellar_herder Stellar_ledger
