lib/node/metrics.mli: Format
