lib/node/scenario.ml: Array Asset Format Fun Genesis Header List Metrics Stellar_bucket Stellar_crypto Stellar_herder Stellar_ledger Stellar_sim Topology Tx Unix Validator
