lib/node/message.ml: Scp Stellar_crypto Stellar_herder Stellar_ledger
