lib/node/scenario.mli: Format Metrics Stellar_sim Topology
