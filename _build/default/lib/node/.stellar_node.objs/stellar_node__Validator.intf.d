lib/node/validator.mli: Message Scp Stellar_bucket Stellar_herder Stellar_ledger Stellar_sim
