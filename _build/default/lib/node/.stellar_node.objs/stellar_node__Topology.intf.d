lib/node/topology.mli: Quorum_analysis Scp
