lib/node/metrics.ml: Array Float Format
