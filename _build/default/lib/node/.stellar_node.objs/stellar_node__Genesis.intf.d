lib/node/genesis.mli: Stellar_ledger
