lib/node/validator.ml: Hashtbl Lazy List Message Scp Stellar_herder Stellar_sim
