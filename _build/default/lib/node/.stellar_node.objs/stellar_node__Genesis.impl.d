lib/node/genesis.ml: Array Asset Entry Printf State Stellar_crypto Stellar_ledger
