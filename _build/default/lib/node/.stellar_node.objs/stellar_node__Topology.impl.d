lib/node/topology.ml: Array Fun Int List Printf Quorum_analysis Scp Stellar_crypto
