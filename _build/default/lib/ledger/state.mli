(** The ledger state: an immutable snapshot of all ledger entries plus the
    global parameters carried in the header (§5.1).

    Immutability gives transaction atomicity for free: operations build a
    tentative state and the caller discards it wholesale if any operation
    fails (§5.2). *)

type t

val genesis :
  ?base_fee:int ->
  ?base_reserve:int ->
  ?protocol_version:int ->
  master:Entry.account_id ->
  total_xlm:int ->
  unit ->
  t
(** Initial state with one master account holding the pre-mined supply. *)

(* ---- header parameters ---- *)

val ledger_seq : t -> int
val close_time : t -> int
val base_fee : t -> int
val base_reserve : t -> int
val protocol_version : t -> int
val fee_pool : t -> int
val set_header : t -> ledger_seq:int -> close_time:int -> t
val with_params : ?base_fee:int -> ?base_reserve:int -> ?protocol_version:int -> t -> t
val add_fee : t -> int -> t

val min_balance : t -> num_sub_entries:int -> int
(** [(2 + num_sub_entries) * base_reserve]. *)

(* ---- accounts ---- *)

val account : t -> Entry.account_id -> Entry.account option
val put_account : t -> Entry.account -> t
val remove_account : t -> Entry.account_id -> t
val account_count : t -> int

(* ---- trustlines ---- *)

val trustline : t -> Entry.account_id -> Asset.t -> Entry.trustline option
val put_trustline : t -> Entry.trustline -> t
val remove_trustline : t -> Entry.account_id -> Asset.t -> t
val trustlines_of : t -> Entry.account_id -> Entry.trustline list

(* ---- offers ---- *)

val offer : t -> int -> Entry.offer option
val put_offer : t -> Entry.offer -> t
(** Inserts or replaces, keeping the order-book index consistent. *)

val remove_offer : t -> int -> t
val next_offer_id : t -> t * int
val offers_of : t -> Entry.account_id -> Entry.offer list

val best_offers : t -> selling:Asset.t -> buying:Asset.t -> Entry.offer list
(** Offers selling [selling] for [buying], best (lowest) price first, ties
    by offer id — the order book of §5.1. *)

(* ---- data entries ---- *)

val data : t -> Entry.account_id -> string -> Entry.data option
val put_data : t -> Entry.data -> t
val remove_data : t -> Entry.account_id -> string -> t

(* ---- whole-ledger views ---- *)

val all_entries : t -> Entry.entry list
(** Sorted by key; feeds snapshot hashing and the bucket list. *)

val lookup : t -> Entry.key -> Entry.entry option

val take_dirty : t -> t * Entry.key list
(** Keys touched since the last [take_dirty] (deduplicated).  Because the
    dirty log is part of the immutable state value, discarding a tentative
    state also discards its dirty entries — failed transactions leave no
    trace.  Feeds incremental bucket-list updates each ledger close. *)

val snapshot_hash : t -> string

val total_native : t -> int
(** Sum of all native balances plus the fee pool (conserved by every
    transaction: only fees move XLM out of accounts). *)

val total_issued : t -> Asset.t -> int
(** Sum of trustline balances of an issued asset. *)

val id_pool : t -> int
(** Next offer id to be allocated (the header's idPool). *)

val of_entries :
  ledger_seq:int ->
  close_time:int ->
  base_fee:int ->
  base_reserve:int ->
  protocol_version:int ->
  fee_pool:int ->
  id_pool:int ->
  Entry.entry list ->
  t
(** Rebuild a state from a full entry snapshot plus the header-carried
    counters — the catchup path of {!Stellar_archive}. *)

val check_integrity : t -> (unit, string) result
(** Structural invariants: non-negative balances, trustline balance within
    limit, order-book index consistent with offers, sub-entry counts
    correct.  Used by property tests and examples. *)
