(** Order-book crossing engine, shared by ManageOffer and PathPayment.

    The taker acquires [get_asset] by paying [give_asset]; makers are the
    resting offers selling [get_asset] for [give_asset], consumed best price
    first.  Fills execute at the maker's price, rounding in the maker's
    favour (ceiling on what the taker pays), so the transfer amounts on both
    sides are equal and no value is created or destroyed.

    Unfunded or unreceivable maker offers (the seller's balance or the
    seller's trustline capacity no longer back them) are deleted on contact,
    as stellar-core does. *)

type outcome = {
  state : State.t;
  got : int;  (** units of [get_asset] acquired *)
  paid : int;  (** units of [give_asset] spent *)
  fills : int;  (** number of maker offers touched *)
}

val spendable : State.t -> Asset.account_id -> Asset.t -> int
(** How much of [asset] the account can currently pay out: native balance
    above the reserve, trustline balance, or unbounded for the issuer. *)

val receivable : State.t -> Asset.account_id -> Asset.t -> int

val cross :
  State.t ->
  give_asset:Asset.t ->
  get_asset:Asset.t ->
  ?max_give:int ->
  ?want_get:int ->
  ?price_limit:Price.t ->
  ?strict_price:bool ->
  ?exclude_seller:Asset.account_id ->
  unit ->
  (outcome, string) result
(** Stops when [want_get] is reached, [max_give] would be exceeded, the book
    is exhausted, or the best maker no longer crosses [price_limit] (the
    taker's own offer price, in units of [get_asset] per [give_asset]).
    With [strict_price] an exactly-opposite price does not cross — the
    behaviour of passive offers (§5.2: "zero spread").
    [exclude_seller] prevents self-trades.
    At least one of [max_give] / [want_get] must be given.
    Maker-side balance movements are applied to the returned state;
    taker-side movements are the caller's responsibility (path payments
    never touch the taker's intermediate balances). *)
