module Account_map = Map.Make (String)

module Trust_key = struct
  type t = Entry.account_id * Asset.t

  let compare (a1, s1) (a2, s2) =
    let c = String.compare a1 a2 in
    if c <> 0 then c else Asset.compare s1 s2
end

module Trust_map = Map.Make (Trust_key)
module Offer_map = Map.Make (Int)

module Pair_key = struct
  type t = Asset.t * Asset.t

  let compare (a1, b1) (a2, b2) =
    let c = Asset.compare a1 a2 in
    if c <> 0 then c else Asset.compare b1 b2
end

module Pair_map = Map.Make (Pair_key)

(* Price-ordered order book entries: best (lowest) price first, then by
   offer id for deterministic fill order. *)
module Book_elt = struct
  type t = Price.t * int

  let compare (p1, i1) (p2, i2) =
    let c = Price.compare p1 p2 in
    if c <> 0 then c else Int.compare i1 i2
end

module Book_set = Set.Make (Book_elt)

module Data_key = struct
  type t = Entry.account_id * string

  let compare (a1, n1) (a2, n2) =
    let c = String.compare a1 a2 in
    if c <> 0 then c else String.compare n1 n2
end

module Data_map = Map.Make (Data_key)

type t = {
  accounts : Entry.account Account_map.t;
  trustlines : Entry.trustline Trust_map.t;
  offers : Entry.offer Offer_map.t;
  book : Book_set.t Pair_map.t;
  data_entries : Entry.data Data_map.t;
  next_offer : int;
  ledger_seq : int;
  close_time : int;
  base_fee : int;
  base_reserve : int;
  protocol_version : int;
  fee_pool : int;
  dirty : Entry.key list;  (* keys touched since the last take_dirty *)
}

let genesis ?(base_fee = 100) ?(base_reserve = 5_000_000) ?(protocol_version = 1) ~master
    ~total_xlm () =
  let root = Entry.new_account ~id:master ~balance:total_xlm ~seq_num:0 in
  {
    accounts = Account_map.singleton master root;
    trustlines = Trust_map.empty;
    offers = Offer_map.empty;
    book = Pair_map.empty;
    data_entries = Data_map.empty;
    next_offer = 1;
    ledger_seq = 1;
    close_time = 0;
    base_fee;
    base_reserve;
    protocol_version;
    fee_pool = 0;
    dirty = [];
  }

let ledger_seq t = t.ledger_seq
let close_time t = t.close_time
let base_fee t = t.base_fee
let base_reserve t = t.base_reserve
let protocol_version t = t.protocol_version
let fee_pool t = t.fee_pool
let set_header t ~ledger_seq ~close_time = { t with ledger_seq; close_time }

let with_params ?base_fee ?base_reserve ?protocol_version t =
  {
    t with
    base_fee = Option.value ~default:t.base_fee base_fee;
    base_reserve = Option.value ~default:t.base_reserve base_reserve;
    protocol_version = Option.value ~default:t.protocol_version protocol_version;
  }

let add_fee t fee = { t with fee_pool = t.fee_pool + fee }
let min_balance t ~num_sub_entries = (2 + num_sub_entries) * t.base_reserve

(* ---- accounts ---- *)

let touch t key = { t with dirty = key :: t.dirty }

let account t id = Account_map.find_opt id t.accounts

let put_account t (a : Entry.account) =
  touch { t with accounts = Account_map.add a.Entry.id a t.accounts } (Entry.Account_key a.Entry.id)

let remove_account t id =
  touch { t with accounts = Account_map.remove id t.accounts } (Entry.Account_key id)
let account_count t = Account_map.cardinal t.accounts

(* ---- trustlines ---- *)

let trustline t id asset = Trust_map.find_opt (id, asset) t.trustlines

let put_trustline t (tl : Entry.trustline) =
  touch
    { t with trustlines = Trust_map.add (tl.Entry.account, tl.Entry.asset) tl t.trustlines }
    (Entry.Trustline_key (tl.Entry.account, tl.Entry.asset))

let remove_trustline t id asset =
  touch
    { t with trustlines = Trust_map.remove (id, asset) t.trustlines }
    (Entry.Trustline_key (id, asset))

let trustlines_of t id =
  Trust_map.fold
    (fun (acc, _) tl l -> if String.equal acc id then tl :: l else l)
    t.trustlines []

(* ---- offers & order book ---- *)

let offer t id = Offer_map.find_opt id t.offers

let book_key (o : Entry.offer) = (o.Entry.selling, o.Entry.buying)

let book_remove book (o : Entry.offer) =
  let key = book_key o in
  match Pair_map.find_opt key book with
  | None -> book
  | Some set ->
      let set = Book_set.remove (o.Entry.price, o.Entry.offer_id) set in
      if Book_set.is_empty set then Pair_map.remove key book else Pair_map.add key set book

let book_add book (o : Entry.offer) =
  let key = book_key o in
  let set = Option.value ~default:Book_set.empty (Pair_map.find_opt key book) in
  Pair_map.add key (Book_set.add (o.Entry.price, o.Entry.offer_id) set) book

let remove_offer t id =
  match Offer_map.find_opt id t.offers with
  | None -> t
  | Some o ->
      touch
        { t with offers = Offer_map.remove id t.offers; book = book_remove t.book o }
        (Entry.Offer_key id)

let put_offer t (o : Entry.offer) =
  let t = remove_offer t o.Entry.offer_id in
  touch
    { t with offers = Offer_map.add o.Entry.offer_id o t.offers; book = book_add t.book o }
    (Entry.Offer_key o.Entry.offer_id)

let next_offer_id t = ({ t with next_offer = t.next_offer + 1 }, t.next_offer)

let offers_of t id =
  Offer_map.fold
    (fun _ o l -> if String.equal o.Entry.seller id then o :: l else l)
    t.offers []

let best_offers t ~selling ~buying =
  match Pair_map.find_opt (selling, buying) t.book with
  | None -> []
  | Some set ->
      Book_set.fold
        (fun (_, id) acc ->
          match Offer_map.find_opt id t.offers with Some o -> o :: acc | None -> acc)
        set []
      |> List.rev

(* ---- data ---- *)

let data t id name = Data_map.find_opt (id, name) t.data_entries

let put_data t (d : Entry.data) =
  touch
    { t with data_entries = Data_map.add (d.Entry.owner, d.Entry.name) d t.data_entries }
    (Entry.Data_key (d.Entry.owner, d.Entry.name))

let remove_data t id name =
  touch
    { t with data_entries = Data_map.remove (id, name) t.data_entries }
    (Entry.Data_key (id, name))

(* ---- whole-ledger views ---- *)

let all_entries t =
  let acc = Account_map.fold (fun _ a l -> Entry.Account_entry a :: l) t.accounts [] in
  let acc = Trust_map.fold (fun _ tl l -> Entry.Trustline_entry tl :: l) t.trustlines acc in
  let acc = Offer_map.fold (fun _ o l -> Entry.Offer_entry o :: l) t.offers acc in
  let acc = Data_map.fold (fun _ d l -> Entry.Data_entry d :: l) t.data_entries acc in
  List.sort (fun a b -> Entry.compare_key (Entry.key_of_entry a) (Entry.key_of_entry b)) acc

let snapshot_hash t =
  let ctx = Stellar_crypto.Sha256.init () in
  List.iter (fun e -> Stellar_crypto.Sha256.update ctx (Entry.encode_entry e)) (all_entries t);
  Stellar_crypto.Sha256.final ctx

let total_native t =
  Account_map.fold (fun _ a acc -> acc + a.Entry.balance) t.accounts t.fee_pool

let total_issued t asset =
  Trust_map.fold
    (fun (_, a) tl acc -> if Asset.equal a asset then acc + tl.Entry.tl_balance else acc)
    t.trustlines 0

let check_integrity t =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  (* balances *)
  let* () =
    Account_map.fold
      (fun id a acc ->
        let* () = acc in
        if a.Entry.balance < 0 then err "negative balance on %s" (Stellar_crypto.Hex.encode id)
        else if a.Entry.num_sub_entries < 0 then err "negative sub entries"
        else Ok ())
      t.accounts (Ok ())
  in
  (* trustlines *)
  let* () =
    Trust_map.fold
      (fun (id, _) tl acc ->
        let* () = acc in
        if tl.Entry.tl_balance < 0 then err "negative trustline balance"
        else if tl.Entry.tl_balance > tl.Entry.limit then
          err "trustline above limit on %s" (Stellar_crypto.Hex.encode id)
        else if Account_map.find_opt id t.accounts = None then err "orphan trustline"
        else Ok ())
      t.trustlines (Ok ())
  in
  (* order book index consistency *)
  let* () =
    Offer_map.fold
      (fun id o acc ->
        let* () = acc in
        if o.Entry.amount <= 0 then err "non-positive offer amount %d" id
        else
          match Pair_map.find_opt (book_key o) t.book with
          | Some set when Book_set.mem (o.Entry.price, id) set -> Ok ()
          | _ -> err "offer %d missing from book index" id)
      t.offers (Ok ())
  in
  let* () =
    Pair_map.fold
      (fun _ set acc ->
        let* () = acc in
        Book_set.fold
          (fun (_, id) acc ->
            let* () = acc in
            if Offer_map.mem id t.offers then Ok () else err "dangling book entry %d" id)
          set (Ok ()))
      t.book (Ok ())
  in
  (* sub-entry counts: trustlines + offers + data + signers *)
  let counts = Hashtbl.create 16 in
  let bump id n = Hashtbl.replace counts id (n + Option.value ~default:0 (Hashtbl.find_opt counts id)) in
  Trust_map.iter (fun (id, _) _ -> bump id 1) t.trustlines;
  Offer_map.iter (fun _ o -> bump o.Entry.seller 1) t.offers;
  Data_map.iter (fun (id, _) _ -> bump id 1) t.data_entries;
  Account_map.iter (fun id a -> bump id (List.length a.Entry.signers)) t.accounts;
  Account_map.fold
    (fun id a acc ->
      let* () = acc in
      let expected = Option.value ~default:0 (Hashtbl.find_opt counts id) in
      if a.Entry.num_sub_entries <> expected then
        err "sub entry count mismatch on %s: %d <> %d" (Stellar_crypto.Hex.encode id)
          a.Entry.num_sub_entries expected
      else Ok ())
    t.accounts (Ok ())

let lookup t = function
  | Entry.Account_key id -> Option.map (fun a -> Entry.Account_entry a) (account t id)
  | Entry.Trustline_key (id, asset) ->
      Option.map (fun tl -> Entry.Trustline_entry tl) (trustline t id asset)
  | Entry.Offer_key id -> Option.map (fun o -> Entry.Offer_entry o) (offer t id)
  | Entry.Data_key (id, name) -> Option.map (fun d -> Entry.Data_entry d) (data t id name)

let take_dirty t =
  let keys = List.sort_uniq Entry.compare_key t.dirty in
  ({ t with dirty = [] }, keys)

let id_pool t = t.next_offer

let of_entries ~ledger_seq ~close_time ~base_fee ~base_reserve ~protocol_version ~fee_pool
    ~id_pool entries =
  let empty =
    {
      accounts = Account_map.empty;
      trustlines = Trust_map.empty;
      offers = Offer_map.empty;
      book = Pair_map.empty;
      data_entries = Data_map.empty;
      next_offer = id_pool;
      ledger_seq;
      close_time;
      base_fee;
      base_reserve;
      protocol_version;
      fee_pool;
      dirty = [];
    }
  in
  let state =
    List.fold_left
      (fun state e ->
        match e with
        | Entry.Account_entry a -> put_account state a
        | Entry.Trustline_entry tl -> put_trustline state tl
        | Entry.Offer_entry o -> put_offer state o
        | Entry.Data_entry d -> put_data state d)
      empty entries
  in
  { state with dirty = [] }
