lib/ledger/price.mli: Format
