lib/ledger/state.mli: Asset Entry
