lib/ledger/exchange.mli: Asset Price State
