lib/ledger/exchange.ml: Asset Entry Option Price State String
