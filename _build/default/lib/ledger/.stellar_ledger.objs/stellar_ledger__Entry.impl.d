lib/ledger/entry.ml: Asset Buffer Format Int Int32 Int64 List Price Printf Stellar_crypto String
