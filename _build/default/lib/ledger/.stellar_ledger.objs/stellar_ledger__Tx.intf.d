lib/ledger/tx.mli: Asset Entry Price Stellar_crypto
