lib/ledger/header.mli: Format State
