lib/ledger/apply.ml: Asset Entry Exchange Format Fun Hashtbl Int List Option Result State Stellar_crypto String Tx
