lib/ledger/price.ml: Format Int Option
