lib/ledger/entry.mli: Asset Format Price
