lib/ledger/header.ml: Buffer Format Int32 Int64 List Option State Stellar_crypto String
