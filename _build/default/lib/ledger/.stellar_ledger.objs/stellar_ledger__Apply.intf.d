lib/ledger/apply.mli: Format State Tx
