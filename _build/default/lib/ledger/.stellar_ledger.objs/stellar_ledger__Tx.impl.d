lib/ledger/tx.ml: Asset Bool Buffer Entry Int32 Int64 List Option Price Stellar_crypto String
