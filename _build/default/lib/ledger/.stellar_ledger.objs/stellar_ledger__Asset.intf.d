lib/ledger/asset.mli: Format
