lib/ledger/asset.ml: Format Printf Stellar_crypto String
