lib/ledger/state.ml: Asset Entry Format Hashtbl Int List Map Option Price Result Set Stellar_crypto String
