type t = {
  ledger_seq : int;
  prev_hash : string;
  scp_value_hash : string;
  tx_set_hash : string;
  results_hash : string;
  snapshot_hash : string;
  close_time : int;
  base_fee : int;
  base_reserve : int;
  protocol_version : int;
  fee_pool : int;
  id_pool : int;
  skip_list : string list;
}

let genesis_hash = Stellar_crypto.Sha256.digest "stellar-repro genesis"

let encode h =
  let buf = Buffer.create 256 in
  let istr s =
    Buffer.add_int32_be buf (Int32.of_int (String.length s));
    Buffer.add_string buf s
  in
  let int n = Buffer.add_int64_be buf (Int64.of_int n) in
  int h.ledger_seq;
  istr h.prev_hash;
  istr h.scp_value_hash;
  istr h.tx_set_hash;
  istr h.results_hash;
  istr h.snapshot_hash;
  int h.close_time;
  int h.base_fee;
  int h.base_reserve;
  int h.protocol_version;
  int h.fee_pool;
  int h.id_pool;
  int (List.length h.skip_list);
  List.iter istr h.skip_list;
  Buffer.contents buf

let hash h = Stellar_crypto.Sha256.digest (encode h)

(* Skip-list slot i points 4^i headers back, updated when the sequence is
   divisible by 4^i (a simplified version of stellar-core's scheme). *)
let update_skip_list prev seq =
  match prev with
  | None -> []
  | Some p ->
      let prev_hash = hash p in
      let rec go i acc =
        if i >= 4 then List.rev acc
        else
          let stride = 1 lsl (2 * i) in
          let inherited = List.nth_opt p.skip_list i in
          let slot =
            if seq mod stride = 0 then prev_hash
            else Option.value ~default:prev_hash inherited
          in
          go (i + 1) (slot :: acc)
      in
      go 0 []

let make ~prev ~scp_value_hash ~tx_set_hash ~results_hash ~snapshot_hash ~state =
  let seq = State.ledger_seq state in
  {
    ledger_seq = seq;
    prev_hash = (match prev with Some p -> hash p | None -> genesis_hash);
    scp_value_hash;
    tx_set_hash;
    results_hash;
    snapshot_hash;
    close_time = State.close_time state;
    base_fee = State.base_fee state;
    base_reserve = State.base_reserve state;
    protocol_version = State.protocol_version state;
    fee_pool = State.fee_pool state;
    id_pool = State.id_pool state;
    skip_list = update_skip_list prev seq;
  }

let verify_chain headers =
  let rec go = function
    | a :: (b :: _ as rest) ->
        String.equal b.prev_hash (hash a) && b.ledger_seq = a.ledger_seq + 1 && go rest
    | _ -> true
  in
  go headers

let pp fmt h =
  Format.fprintf fmt "ledger #%d close=%d txset=%s state=%s" h.ledger_seq h.close_time
    (String.sub (Stellar_crypto.Hex.encode h.tx_set_hash) 0 8)
    (String.sub (Stellar_crypto.Hex.encode h.snapshot_hash) 0 8)
