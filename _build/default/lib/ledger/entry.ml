type account_id = Asset.account_id

type flags = { auth_required : bool; auth_revocable : bool; auth_immutable : bool }

let default_flags = { auth_required = false; auth_revocable = false; auth_immutable = false }

type thresholds = { master_weight : int; low : int; medium : int; high : int }

let default_thresholds = { master_weight = 1; low = 0; medium = 0; high = 0 }

type signer = { key : string; weight : int }

type account = {
  id : account_id;
  balance : int;
  seq_num : int;
  num_sub_entries : int;
  flags : flags;
  thresholds : thresholds;
  signers : signer list;
  home_domain : string;
  inflation_dest : account_id option;
}

let new_account ~id ~balance ~seq_num =
  {
    id;
    balance;
    seq_num;
    num_sub_entries = 0;
    flags = default_flags;
    thresholds = default_thresholds;
    signers = [];
    home_domain = "";
    inflation_dest = None;
  }

type trustline = {
  account : account_id;
  asset : Asset.t;
  tl_balance : int;
  limit : int;
  authorized : bool;
}

type offer = {
  offer_id : int;
  seller : account_id;
  selling : Asset.t;
  buying : Asset.t;
  amount : int;
  price : Price.t;
  passive : bool;
}

type data = { owner : account_id; name : string; value : string }

type key =
  | Account_key of account_id
  | Trustline_key of account_id * Asset.t
  | Offer_key of int
  | Data_key of account_id * string

type entry =
  | Account_entry of account
  | Trustline_entry of trustline
  | Offer_entry of offer
  | Data_entry of data

let key_of_entry = function
  | Account_entry a -> Account_key a.id
  | Trustline_entry t -> Trustline_key (t.account, t.asset)
  | Offer_entry o -> Offer_key o.offer_id
  | Data_entry d -> Data_key (d.owner, d.name)

let compare_key a b =
  let rank = function
    | Account_key _ -> 0
    | Trustline_key _ -> 1
    | Offer_key _ -> 2
    | Data_key _ -> 3
  in
  match (a, b) with
  | Account_key x, Account_key y -> String.compare x y
  | Trustline_key (x1, x2), Trustline_key (y1, y2) ->
      let c = String.compare x1 y1 in
      if c <> 0 then c else Asset.compare x2 y2
  | Offer_key x, Offer_key y -> Int.compare x y
  | Data_key (x1, x2), Data_key (y1, y2) ->
      let c = String.compare x1 y1 in
      if c <> 0 then c else String.compare x2 y2
  | _ -> Int.compare (rank a) (rank b)

let encode_key = function
  | Account_key id -> "A:" ^ id
  | Trustline_key (id, asset) -> "T:" ^ id ^ ":" ^ Asset.encode asset
  | Offer_key id -> Printf.sprintf "O:%d" id
  | Data_key (id, name) -> "D:" ^ id ^ ":" ^ name

let encode_entry e =
  let buf = Buffer.create 128 in
  let istr s =
    Buffer.add_int32_be buf (Int32.of_int (String.length s));
    Buffer.add_string buf s
  in
  let int n = Buffer.add_int64_be buf (Int64.of_int n) in
  let flag b = Buffer.add_char buf (if b then '\001' else '\000') in
  (match e with
  | Account_entry a ->
      Buffer.add_char buf 'A';
      istr a.id;
      int a.balance;
      int a.seq_num;
      int a.num_sub_entries;
      flag a.flags.auth_required;
      flag a.flags.auth_revocable;
      flag a.flags.auth_immutable;
      int a.thresholds.master_weight;
      int a.thresholds.low;
      int a.thresholds.medium;
      int a.thresholds.high;
      int (List.length a.signers);
      List.iter
        (fun s ->
          istr s.key;
          int s.weight)
        a.signers;
      istr a.home_domain;
      (match a.inflation_dest with
      | None -> flag false
      | Some d ->
          flag true;
          istr d)
  | Trustline_entry t ->
      Buffer.add_char buf 'T';
      istr t.account;
      istr (Asset.encode t.asset);
      int t.tl_balance;
      int t.limit;
      flag t.authorized
  | Offer_entry o ->
      Buffer.add_char buf 'O';
      int o.offer_id;
      istr o.seller;
      istr (Asset.encode o.selling);
      istr (Asset.encode o.buying);
      int o.amount;
      int o.price.Price.n;
      int o.price.Price.d;
      flag o.passive
  | Data_entry d ->
      Buffer.add_char buf 'D';
      istr d.owner;
      istr d.name;
      istr d.value);
  Buffer.contents buf

let pp_key fmt k =
  let short s = Stellar_crypto.Hex.encode (String.sub s 0 (min 4 (String.length s))) in
  match k with
  | Account_key id -> Format.fprintf fmt "account:%s" (short id)
  | Trustline_key (id, asset) -> Format.fprintf fmt "trust:%s:%a" (short id) Asset.pp asset
  | Offer_key id -> Format.fprintf fmt "offer:%d" id
  | Data_key (id, name) -> Format.fprintf fmt "data:%s:%s" (short id) name
