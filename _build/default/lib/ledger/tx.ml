type account_id = Asset.account_id

type time_bounds = { min_time : int; max_time : int }

type memo = Memo_none | Memo_text of string | Memo_hash of string

type signer_update = Set_signer of Entry.signer | Remove_signer of string

type operation_body =
  | Create_account of { destination : account_id; starting_balance : int }
  | Payment of { destination : account_id; asset : Asset.t; amount : int }
  | Path_payment of {
      send_asset : Asset.t;
      send_max : int;
      destination : account_id;
      dest_asset : Asset.t;
      dest_amount : int;
      path : Asset.t list;
    }
  | Manage_offer of {
      offer_id : int;
      selling : Asset.t;
      buying : Asset.t;
      amount : int;
      price : Price.t;
      passive : bool;
    }
  | Set_options of {
      master_weight : int option;
      low : int option;
      medium : int option;
      high : int option;
      signer : signer_update option;
      home_domain : string option;
      set_auth_required : bool option;
      set_auth_revocable : bool option;
      set_auth_immutable : bool option;
    }
  | Change_trust of { asset : Asset.t; limit : int }
  | Allow_trust of { trustor : account_id; asset_code : string; authorize : bool }
  | Account_merge of { destination : account_id }
  | Manage_data of { name : string; value : string option }
  | Bump_sequence of { bump_to : int }
  | Set_inflation_dest of { dest : account_id }
  | Inflation

type operation = { op_source : account_id option; body : operation_body }

let op ?source body = { op_source = source; body }

type t = {
  source : account_id;
  fee : int;
  seq_num : int;
  time_bounds : time_bounds option;
  memo : memo;
  operations : operation list;
}

type signed = { tx : t; signatures : (account_id * string) list }

let make ~source ~seq_num ?fee ?time_bounds ?(memo = Memo_none) operations =
  let fee = match fee with Some f -> f | None -> 100 * List.length operations in
  { source; fee; seq_num; time_bounds; memo; operations }

let encode tx =
  let buf = Buffer.create 256 in
  let istr s =
    Buffer.add_int32_be buf (Int32.of_int (String.length s));
    Buffer.add_string buf s
  in
  let int n = Buffer.add_int64_be buf (Int64.of_int n) in
  let asset a = istr (Asset.encode a) in
  let opt_int = function
    | None -> Buffer.add_char buf '\000'
    | Some n ->
        Buffer.add_char buf '\001';
        int n
  in
  istr tx.source;
  int tx.fee;
  int tx.seq_num;
  (match tx.time_bounds with
  | None -> Buffer.add_char buf '\000'
  | Some { min_time; max_time } ->
      Buffer.add_char buf '\001';
      int min_time;
      int max_time);
  (match tx.memo with
  | Memo_none -> Buffer.add_char buf '0'
  | Memo_text s ->
      Buffer.add_char buf 't';
      istr s
  | Memo_hash h ->
      Buffer.add_char buf 'h';
      istr h);
  int (List.length tx.operations);
  List.iter
    (fun { op_source; body } ->
      (match op_source with
      | None -> Buffer.add_char buf '\000'
      | Some s ->
          Buffer.add_char buf '\001';
          istr s);
      match body with
      | Create_account { destination; starting_balance } ->
          Buffer.add_char buf 'c';
          istr destination;
          int starting_balance
      | Payment { destination; asset = a; amount } ->
          Buffer.add_char buf 'p';
          istr destination;
          asset a;
          int amount
      | Path_payment { send_asset; send_max; destination; dest_asset; dest_amount; path } ->
          Buffer.add_char buf 'P';
          asset send_asset;
          int send_max;
          istr destination;
          asset dest_asset;
          int dest_amount;
          int (List.length path);
          List.iter asset path
      | Manage_offer { offer_id; selling; buying; amount; price; passive } ->
          Buffer.add_char buf 'o';
          int offer_id;
          asset selling;
          asset buying;
          int amount;
          int price.Price.n;
          int price.Price.d;
          Buffer.add_char buf (if passive then '\001' else '\000')
      | Set_options o ->
          Buffer.add_char buf 's';
          opt_int o.master_weight;
          opt_int o.low;
          opt_int o.medium;
          opt_int o.high;
          (match o.signer with
          | None -> Buffer.add_char buf '\000'
          | Some (Set_signer s) ->
              Buffer.add_char buf '\001';
              istr s.Entry.key;
              int s.Entry.weight
          | Some (Remove_signer k) ->
              Buffer.add_char buf '\002';
              istr k);
          (match o.home_domain with
          | None -> Buffer.add_char buf '\000'
          | Some d ->
              Buffer.add_char buf '\001';
              istr d);
          opt_int (Option.map Bool.to_int o.set_auth_required);
          opt_int (Option.map Bool.to_int o.set_auth_revocable);
          opt_int (Option.map Bool.to_int o.set_auth_immutable)
      | Change_trust { asset = a; limit } ->
          Buffer.add_char buf 'T';
          asset a;
          int limit
      | Allow_trust { trustor; asset_code; authorize } ->
          Buffer.add_char buf 'A';
          istr trustor;
          istr asset_code;
          Buffer.add_char buf (if authorize then '\001' else '\000')
      | Account_merge { destination } ->
          Buffer.add_char buf 'm';
          istr destination
      | Manage_data { name; value } ->
          Buffer.add_char buf 'd';
          istr name;
          (match value with
          | None -> Buffer.add_char buf '\000'
          | Some v ->
              Buffer.add_char buf '\001';
              istr v)
      | Bump_sequence { bump_to } ->
          Buffer.add_char buf 'b';
          int bump_to
      | Set_inflation_dest { dest } ->
          Buffer.add_char buf 'i';
          istr dest
      | Inflation -> Buffer.add_char buf 'I')
    tx.operations;
  Buffer.contents buf

let network_id = Stellar_crypto.Sha256.digest "stellar-repro network ; 2026"

let hash tx = Stellar_crypto.Sha256.digest_list [ network_id; encode tx ]

let sign tx ~secret ~public ~scheme =
  let module S = (val scheme : Stellar_crypto.Sig_intf.SCHEME with type secret = string) in
  { tx; signatures = [ (public, S.sign secret (hash tx)) ] }

let co_sign signed ~secret ~public ~scheme =
  let module S = (val scheme : Stellar_crypto.Sig_intf.SCHEME with type secret = string) in
  { signed with signatures = (public, S.sign secret (hash signed.tx)) :: signed.signatures }

let operation_count tx = List.length tx.operations

let size signed =
  String.length (encode signed.tx)
  + List.fold_left (fun acc (k, s) -> acc + String.length k + String.length s) 0 signed.signatures

type threshold_level = Low | Medium | High

let threshold_level = function
  | Allow_trust _ | Bump_sequence _ | Inflation -> Low
  | Set_options _ | Account_merge _ -> High
  | Create_account _ | Payment _ | Path_payment _ | Manage_offer _ | Change_trust _
  | Manage_data _ | Set_inflation_dest _ ->
      Medium

let op_name = function
  | Create_account _ -> "create_account"
  | Payment _ -> "payment"
  | Path_payment _ -> "path_payment"
  | Manage_offer _ -> "manage_offer"
  | Set_options _ -> "set_options"
  | Change_trust _ -> "change_trust"
  | Allow_trust _ -> "allow_trust"
  | Account_merge _ -> "account_merge"
  | Manage_data _ -> "manage_data"
  | Bump_sequence _ -> "bump_sequence"
  | Set_inflation_dest _ -> "set_inflation_dest"
  | Inflation -> "inflation"
