type outcome = { state : State.t; got : int; paid : int; fills : int }

let unbounded = max_int / 4

(* Saturating [⌊x/p⌋]: an overflow means "more than any ledger amount". *)
let div_floor_sat x p =
  match Price.div_floor x p with Some v -> v | None -> unbounded

(* Maker-side transfer capacity. How much of [asset] can this account pay
   out right now (its offer may have become under-funded since creation)? *)
let spendable state account_id asset =
  match asset with
  | Asset.Native -> (
      match State.account state account_id with
      | None -> 0
      | Some a ->
          let reserve = State.min_balance state ~num_sub_entries:a.Entry.num_sub_entries in
          max 0 (a.Entry.balance - reserve))
  | Asset.Credit { issuer; _ } when String.equal issuer account_id -> unbounded
  | Asset.Credit _ -> (
      match State.trustline state account_id asset with
      | Some tl when tl.Entry.authorized -> tl.Entry.tl_balance
      | _ -> 0)

(* How much of [asset] can this account still receive? *)
let receivable state account_id asset =
  match asset with
  | Asset.Native -> ( match State.account state account_id with Some _ -> unbounded | None -> 0)
  | Asset.Credit { issuer; _ } when String.equal issuer account_id -> unbounded
  | Asset.Credit _ -> (
      match State.trustline state account_id asset with
      | Some tl when tl.Entry.authorized -> max 0 (tl.Entry.limit - tl.Entry.tl_balance)
      | _ -> 0)

(* Unchecked transfers used for maker legs; capacities were checked above. *)
let unchecked_credit state account_id asset amount =
  match asset with
  | Asset.Native ->
      let a = Option.get (State.account state account_id) in
      State.put_account state { a with Entry.balance = a.Entry.balance + amount }
  | Asset.Credit { issuer; _ } when String.equal issuer account_id -> state
  | Asset.Credit _ ->
      let tl = Option.get (State.trustline state account_id asset) in
      State.put_trustline state { tl with Entry.tl_balance = tl.Entry.tl_balance + amount }

let unchecked_debit state account_id asset amount =
  match asset with
  | Asset.Native ->
      let a = Option.get (State.account state account_id) in
      State.put_account state { a with Entry.balance = a.Entry.balance - amount }
  | Asset.Credit { issuer; _ } when String.equal issuer account_id -> state
  | Asset.Credit _ ->
      let tl = Option.get (State.trustline state account_id asset) in
      State.put_trustline state { tl with Entry.tl_balance = tl.Entry.tl_balance - amount }

(* Delete an offer and release its sub-entry on the seller. *)
let delete_offer state (o : Entry.offer) =
  let state = State.remove_offer state o.Entry.offer_id in
  match State.account state o.Entry.seller with
  | None -> state
  | Some a ->
      State.put_account state
        { a with Entry.num_sub_entries = a.Entry.num_sub_entries - 1 }

let cross state ~give_asset ~get_asset ?max_give ?want_get ?price_limit
    ?(strict_price = false) ?exclude_seller () =
  if max_give = None && want_get = None then
    Error "cross: need max_give or want_get"
  else begin
    let rec loop state got paid fills =
      let want_more =
        match want_get with Some w -> got < w | None -> true
      in
      let budget_left = match max_give with Some m -> m - paid | None -> unbounded in
      if (not want_more) || budget_left <= 0 then Ok { state; got; paid; fills }
      else
        (* Makers sell [get_asset] and buy [give_asset]. *)
        match State.best_offers state ~selling:get_asset ~buying:give_asset with
        | [] -> Ok { state; got; paid; fills }
        | maker :: _ ->
            begin
              let maker_price = maker.Entry.price in
              let stop_on_price =
                match price_limit with
                | Some taker_price ->
                    let crosses = Price.crosses ~taker:taker_price ~maker:maker_price in
                    let exactly_opposite =
                      Price.equal maker_price (Price.inverse taker_price)
                    in
                    (not crosses) || (strict_price && exactly_opposite)
                | None -> false
              in
              if stop_on_price then Ok { state; got; paid; fills }
              else if
                match exclude_seller with
                | Some s -> String.equal s maker.Entry.seller
                | None -> false
              then
                (* Would cross one of the taker's own offers: stellar-core
                   fails the operation with CROSS_SELF. *)
                Error "self-cross"
              else begin
                (* Clamp by maker's real capacities; drop dead offers. *)
                let maker_can_give = spendable state maker.Entry.seller get_asset in
                let maker_can_recv = receivable state maker.Entry.seller give_asset in
                let max_recv_units =
                  (* largest q with ceil(q * price) <= maker_can_recv *)
                  div_floor_sat maker_can_recv maker_price
                in
                let avail = min maker.Entry.amount (min maker_can_give max_recv_units) in
                if avail <= 0 then loop (delete_offer state maker) got paid fills
                else begin
                  let wanted = match want_get with Some w -> w - got | None -> unbounded in
                  let affordable = div_floor_sat budget_left maker_price in
                  let q = min avail (min wanted affordable) in
                  if q <= 0 then Ok { state; got; paid; fills }
                  else begin
                    match Price.mul_ceil q maker_price with
                    | None -> Error "cross: overflow"
                    | Some pay ->
                        (* maker leg: receives [pay] give_asset, gives [q]
                           get_asset *)
                        let state = unchecked_credit state maker.Entry.seller give_asset pay in
                        let state = unchecked_debit state maker.Entry.seller get_asset q in
                        let state =
                          if q = maker.Entry.amount then delete_offer state maker
                          else
                            State.put_offer state
                              { maker with Entry.amount = maker.Entry.amount - q }
                        in
                        loop state (got + q) (paid + pay) (fills + 1)
                  end
                end
              end
            end
    in
    loop state 0 0 0
  end
