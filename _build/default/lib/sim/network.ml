type stats = {
  mutable msgs_sent : int;
  mutable msgs_received : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

type 'msg t = {
  engine : Engine.t;
  rng : Rng.t;
  latency : Latency.t;
  processing : int -> float;
  busy_until : float array;  (* receiver CPU queue *)
  handlers : (src:int -> 'msg -> unit) option array;
  down : bool array;
  node_stats : stats array;
  mutable partition : int -> int;
  mutable loss_rate : float;
  mutable total : int;
}

let create ~engine ~rng ~n ~latency ?(processing = fun _ -> 0.0) () =
  {
    engine;
    rng;
    latency;
    processing;
    busy_until = Array.make n 0.0;
    handlers = Array.make n None;
    down = Array.make n false;
    node_stats =
      Array.init n (fun _ ->
          { msgs_sent = 0; msgs_received = 0; bytes_sent = 0; bytes_received = 0 });
    partition = (fun _ -> 0);
    loss_rate = 0.0;
    total = 0;
  }

let size t = Array.length t.handlers
let engine t = t.engine
let set_handler t i f = t.handlers.(i) <- Some f
let set_down t i b = t.down.(i) <- b
let is_down t i = t.down.(i)
let set_partition t f = t.partition <- f
let set_loss_rate t r = t.loss_rate <- r
let stats t i = t.node_stats.(i)
let total_messages t = t.total

let send t ~src ~dst ~size:bytes msg =
  if not t.down.(src) then begin
    let s = t.node_stats.(src) in
    s.msgs_sent <- s.msgs_sent + 1;
    s.bytes_sent <- s.bytes_sent + bytes;
    t.total <- t.total + 1;
    let dropped =
      t.partition src <> t.partition dst
      || (t.loss_rate > 0.0 && Rng.float t.rng 1.0 < t.loss_rate)
    in
    if not dropped then begin
      let link = if src = dst then 0.0 else Latency.sample t.latency t.rng in
      let deliver () =
        (* Down-ness and handlers are re-checked at delivery time: a node may
           crash while messages are in flight. *)
        if not t.down.(dst) then
          match t.handlers.(dst) with
          | None -> ()
          | Some h ->
              let r = t.node_stats.(dst) in
              r.msgs_received <- r.msgs_received + 1;
              r.bytes_received <- r.bytes_received + bytes;
              h ~src msg
      in
      (* The receiver's CPU queue is FIFO in ARRIVAL order: the busy-time
         accounting runs when the message arrives (engine events fire in
         time order), so an in-flight straggler never blocks messages that
         land before it. *)
      let on_arrival () =
        let now = Engine.now t.engine in
        let start = Float.max now t.busy_until.(dst) in
        let finish = start +. t.processing bytes in
        t.busy_until.(dst) <- finish;
        if finish > now then ignore (Engine.schedule t.engine ~delay:(finish -. now) deliver)
        else deliver ()
      in
      ignore (Engine.schedule t.engine ~delay:link on_arrival)
    end
  end
