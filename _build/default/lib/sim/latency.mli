(** Link-latency models for the simulated overlay.

    The paper's controlled experiments ran in one EC2 region (sub-millisecond
    RTT, 10 Gbps); the production network spans the public Internet.  The
    models below cover both regimes plus a heavy-tailed variant used for the
    timeout study (Fig. 8). *)

type t =
  | Constant of float  (** every message takes exactly [d] seconds *)
  | Uniform of { lo : float; hi : float }
  | Jittered of {
      base : float;
      jitter : float;  (** uniform extra delay in [\[0, jitter)] *)
      spike_prob : float;  (** probability of a heavy-tail spike *)
      spike : float;  (** extra delay when a spike occurs *)
    }

val datacenter : t
(** Same-region EC2-like: ~0.5–1.5 ms. *)

val wide_area : t
(** Public-Internet-like: ~30–120 ms with occasional spikes. *)

val sample : t -> Rng.t -> float
