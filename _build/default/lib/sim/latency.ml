type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Jittered of { base : float; jitter : float; spike_prob : float; spike : float }

let datacenter = Uniform { lo = 0.0005; hi = 0.0015 }

let wide_area =
  Jittered { base = 0.03; jitter = 0.09; spike_prob = 0.001; spike = 1.5 }

let sample t rng =
  match t with
  | Constant d -> d
  | Uniform { lo; hi } -> lo +. Rng.float rng (hi -. lo)
  | Jittered { base; jitter; spike_prob; spike } ->
      let d = base +. Rng.float rng jitter in
      if Rng.float rng 1.0 < spike_prob then d +. Rng.float rng spike else d
