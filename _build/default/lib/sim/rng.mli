(** Deterministic pseudo-random numbers (SplitMix64).

    All experiment randomness flows through explicitly seeded generators so
    that every simulation run is reproducible bit-for-bit. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent stream (e.g. one per node). *)

val int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
val bytes : t -> int -> string

val exponential : t -> mean:float -> float
(** Exponentially distributed sample, for Poisson arrivals. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
