(** Array-backed binary min-heap (the event queue of {!Engine}). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val peek : 'a t -> 'a option
val size : 'a t -> int
val is_empty : 'a t -> bool
