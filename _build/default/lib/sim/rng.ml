type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value stays within OCaml's positive int range. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  (* 53 random bits into [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let bytes t n =
  String.init n (fun i ->
      let _ = i in
      Char.chr (int t 256))

let exponential t ~mean =
  let u = ref (float t 1.0) in
  if !u = 0.0 then u := 1e-12;
  -.mean *. log !u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
