lib/sim/engine.mli:
