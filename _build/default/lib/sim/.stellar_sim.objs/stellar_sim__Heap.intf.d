lib/sim/heap.mli:
