lib/sim/network.ml: Array Engine Float Latency Rng
