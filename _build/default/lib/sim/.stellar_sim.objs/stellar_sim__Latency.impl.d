lib/sim/latency.ml: Rng
