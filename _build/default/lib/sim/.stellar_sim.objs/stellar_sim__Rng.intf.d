lib/sim/rng.mli:
