lib/sim/rng.ml: Array Char Int64 String
