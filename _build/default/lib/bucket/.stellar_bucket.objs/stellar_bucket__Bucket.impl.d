lib/bucket/bucket.ml: Array Buffer Entry Hashtbl Int32 List Stellar_crypto Stellar_ledger String
