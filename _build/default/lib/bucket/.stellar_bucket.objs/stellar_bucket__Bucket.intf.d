lib/bucket/bucket.mli: Stellar_ledger
