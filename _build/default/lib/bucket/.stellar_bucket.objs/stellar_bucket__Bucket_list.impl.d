lib/bucket/bucket_list.ml: Array Bucket Fun List Stellar_crypto Stellar_ledger String
