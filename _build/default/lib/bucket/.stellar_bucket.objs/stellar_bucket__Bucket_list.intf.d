lib/bucket/bucket_list.mli: Bucket Stellar_ledger
