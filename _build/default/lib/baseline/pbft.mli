(** A closed-membership PBFT-style baseline (pre-prepare / prepare / commit
    with view changes), run over the same simulated network as SCP.

    This is the "conventional Byzantine agreement" the paper contrasts with
    FBA (§2.1, §3.1): all [n = 3f + 1] replicas share one fixed membership
    and any [2f + 1] of them form a quorum.  The ablation bench compares its
    latency and message complexity with SCP's on identical networks. *)

type cluster

val create :
  engine:Stellar_sim.Engine.t ->
  rng:Stellar_sim.Rng.t ->
  n:int ->
  latency:Stellar_sim.Latency.t ->
  ?view_timeout:float ->
  on_decide:(seq:int -> string -> unit) ->
  unit ->
  cluster
(** [n] must be at least 4 ([f >= 1]). [on_decide] fires once per replica
    per sequence number. *)

val propose : cluster -> string -> unit
(** Submit a value to the current primary (a client request). *)

val crash : cluster -> int -> unit
val primary : cluster -> int
val view : cluster -> int
val decided : cluster -> int -> (int * string) list
(** Decisions (seq, value) recorded by a replica, oldest first. *)

val message_count : cluster -> int
