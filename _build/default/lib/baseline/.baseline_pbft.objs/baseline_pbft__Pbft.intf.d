lib/baseline/pbft.mli: Stellar_sim
