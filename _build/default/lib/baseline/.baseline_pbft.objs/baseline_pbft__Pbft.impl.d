lib/baseline/pbft.ml: Array Hashtbl Int List Option Set Stellar_crypto Stellar_sim String
