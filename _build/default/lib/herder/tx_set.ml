open Stellar_ledger

type t = {
  prev_header_hash : string;
  txs : Tx.signed list;
  hash : string;
  op_count : int;
  total_fees : int;
  size_bytes : int;
}

let make ~prev_header_hash txs =
  (* Canonical order: by hash, so identical sets have identical hashes. *)
  let decorated =
    List.map (fun s -> (Tx.hash s.Tx.tx, s)) txs
    |> List.sort (fun (h1, _) (h2, _) -> String.compare h1 h2)
  in
  let txs = List.map snd decorated in
  let ctx = Stellar_crypto.Sha256.init () in
  Stellar_crypto.Sha256.update ctx prev_header_hash;
  List.iter (fun (h, _) -> Stellar_crypto.Sha256.update ctx h) decorated;
  {
    prev_header_hash;
    txs;
    hash = Stellar_crypto.Sha256.final ctx;
    op_count = List.fold_left (fun acc s -> acc + Tx.operation_count s.Tx.tx) 0 txs;
    total_fees = List.fold_left (fun acc s -> acc + s.Tx.tx.Tx.fee) 0 txs;
    size_bytes = List.fold_left (fun acc s -> acc + Tx.size s) 0 txs;
  }

let txs t = t.txs
let hash t = t.hash
let prev_header_hash t = t.prev_header_hash
let op_count t = t.op_count
let total_fees t = t.total_fees
let size_bytes t = t.size_bytes
let tx_count t = List.length t.txs
