lib/herder/tx_queue.mli: Stellar_ledger
