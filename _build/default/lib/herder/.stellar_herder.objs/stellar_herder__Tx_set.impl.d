lib/herder/tx_set.ml: List Stellar_crypto Stellar_ledger String Tx
