lib/herder/value.mli: Format Stellar_ledger Tx_set
