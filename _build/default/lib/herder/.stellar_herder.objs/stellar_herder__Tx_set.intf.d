lib/herder/tx_set.mli: Stellar_ledger
