lib/herder/tx_queue.ml: Entry Hashtbl Int List State Stellar_ledger String Tx
