lib/herder/herder.ml: Apply Float Format Hashtbl Header Int Lazy List Option Scp State Stellar_bucket Stellar_crypto Stellar_ledger String Sys Tx Tx_queue Tx_set Value
