lib/herder/value.ml: Buffer Char Format Hashtbl Int Int32 Int64 List Stellar_crypto Stellar_ledger String Tx_set
