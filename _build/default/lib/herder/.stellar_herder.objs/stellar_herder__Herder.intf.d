lib/herder/herder.mli: Scp Stellar_bucket Stellar_ledger Tx_set Value
