(** A transaction set: the batch of transactions one ledger applies.  SCP
    agrees only on its hash (§5.3); the set itself floods separately. *)

type t

val make : prev_header_hash:string -> Stellar_ledger.Tx.signed list -> t
val txs : t -> Stellar_ledger.Tx.signed list
val hash : t -> string
(** Binds the transactions AND the previous ledger header (§5.3: "including
    a hash of the previous ledger header"). *)

val prev_header_hash : t -> string
val op_count : t -> int
val total_fees : t -> int
val size_bytes : t -> int
val tx_count : t -> int
