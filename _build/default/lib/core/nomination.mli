(** The nomination protocol (§3.2.2).

    Nodes federated-vote on [nominate x] statements.  Only round leaders
    introduce new values; everyone else echoes their leaders' votes.  Once a
    node confirms any nominate statement it stops voting for new values, so
    the candidate set converges; the (evolving) deterministic combination of
    all confirmed candidates seeds the ballot protocol. *)

type t

val create :
  slot:int ->
  local_id:Types.node_id ->
  get_qset:(unit -> Quorum_set.t) ->
  driver:Driver.t ->
  on_candidates:(Types.value -> unit) ->
  t
(** [get_qset] is read at every use, so a node can adjust its slices at any
    time (§3.1.1).  [on_candidates composite] fires whenever the combined
    candidate value changes; the slot uses it to (re)start balloting. *)

val nominate : t -> value:Types.value -> prev:Types.value -> unit
(** Start (or re-trigger) nomination with the application's proposed value;
    [prev] is the previous slot's value, which seeds leader selection. *)

val process_envelope : t -> Types.envelope -> [ `Processed | `Stale | `Invalid ]

val stop : t -> unit
(** Stop the round timer and refuse further votes (called once balloting
    reaches the commit phase). *)

val started : t -> bool
val round : t -> int
val leaders : t -> Types.node_id list
val candidates : t -> Types.value list
val latest_composite : t -> Types.value option
val latest_statements : t -> Types.statement list

val latest_envelopes : t -> Types.envelope list
(** The latest signed envelope from each node (including our own), kept so
    a validator can help stragglers finish an old slot (§6). *)

val reevaluate : t -> unit
(** Re-run federated voting against the current quorum set — called after a
    unilateral reconfiguration so a stuck slot can make progress. *)
