(** Top-level SCP instance: one per validator, managing a slot per ledger.

    Typical use: the herder calls {!nominate} when it wants the network to
    close a new ledger, feeds every envelope received from peers to
    {!receive_envelope}, and learns the outcome through the driver's
    [value_externalized] callback. *)

type t

val create : driver:Driver.t -> local_id:Types.node_id -> qset:Quorum_set.t -> t

val local_id : t -> Types.node_id
val quorum_set : t -> Quorum_set.t

val set_quorum_set : t -> Quorum_set.t -> unit
(** Unilateral reconfiguration (§3.1.1): takes effect immediately — every
    active slot re-evaluates federated voting under the new slices, and
    future statements advertise them. *)

val nominate : t -> slot:int -> value:Types.value -> prev:Types.value -> unit

val receive_envelope : t -> Types.envelope -> [ `Processed | `Stale | `Invalid ]

val phase : t -> slot:int -> Ballot.phase option
(** [None] when the slot has never been touched. *)

val externalized_value : t -> slot:int -> Types.value option
val ballot_counter : t -> slot:int -> int
val nomination_round : t -> slot:int -> int
val heard_from_quorum : t -> slot:int -> bool

val latest_statements : t -> slot:int -> Types.statement list
val latest_envelopes : t -> slot:int -> Types.envelope list

val purge_slots : t -> below:int -> unit
(** Drop state of old, decided slots to bound memory. *)

val active_slots : t -> int list
