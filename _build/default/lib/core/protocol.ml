type t = {
  driver : Driver.t;
  local_id : Types.node_id;
  mutable qset : Quorum_set.t;
  slots : (int, Slot.t) Hashtbl.t;
}

let create ~driver ~local_id ~qset =
  if not (Quorum_set.is_sane qset) then invalid_arg "Protocol.create: insane quorum set";
  { driver; local_id; qset; slots = Hashtbl.create 16 }

let local_id t = t.local_id
let quorum_set t = t.qset

let set_quorum_set t qset =
  if not (Quorum_set.is_sane qset) then
    invalid_arg "Protocol.set_quorum_set: insane quorum set";
  t.qset <- qset;
  (* slots read the quorum set dynamically; push them forward in case the
     new configuration unblocks federated voting *)
  Hashtbl.iter (fun _ s -> Slot.reevaluate s) t.slots

let slot t index =
  match Hashtbl.find_opt t.slots index with
  | Some s -> s
  | None ->
      let s = Slot.create ~index ~local_id:t.local_id ~get_qset:(fun () -> t.qset) ~driver:t.driver in
      Hashtbl.add t.slots index s;
      s

let nominate t ~slot:index ~value ~prev = Slot.nominate (slot t index) ~value ~prev

let receive_envelope t env =
  Slot.process_envelope (slot t env.Types.statement.Types.slot) env

let with_slot t index f =
  match Hashtbl.find_opt t.slots index with Some s -> Some (f s) | None -> None

let phase t ~slot:index = with_slot t index Slot.phase
let externalized_value t ~slot:index = Option.join (with_slot t index Slot.externalized_value)

let ballot_counter t ~slot:index =
  Option.value ~default:0 (with_slot t index Slot.ballot_counter)

let nomination_round t ~slot:index =
  Option.value ~default:0 (with_slot t index Slot.nomination_round)

let heard_from_quorum t ~slot:index =
  Option.value ~default:false (with_slot t index Slot.heard_from_quorum)

let latest_statements t ~slot:index =
  Option.value ~default:[] (with_slot t index Slot.latest_statements)

let latest_envelopes t ~slot:index =
  Option.value ~default:[] (with_slot t index Slot.latest_envelopes)

let purge_slots t ~below =
  let old = Hashtbl.fold (fun k _ acc -> if k < below then k :: acc else acc) t.slots [] in
  List.iter (Hashtbl.remove t.slots) old

let active_slots t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.slots [] |> List.sort Int.compare
