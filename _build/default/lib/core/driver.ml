type validation = Invalid | Valid

type hooks = {
  on_nomination_round : slot:int -> round:int -> unit;
  on_ballot_bump : slot:int -> counter:int -> unit;
  on_timeout : slot:int -> kind:[ `Nomination | `Ballot ] -> unit;
  on_phase_change : slot:int -> phase:string -> unit;
}

let no_hooks =
  {
    on_nomination_round = (fun ~slot:_ ~round:_ -> ());
    on_ballot_bump = (fun ~slot:_ ~counter:_ -> ());
    on_timeout = (fun ~slot:_ ~kind:_ -> ());
    on_phase_change = (fun ~slot:_ ~phase:_ -> ());
  }

type t = {
  emit_envelope : Types.envelope -> unit;
  sign : string -> string;
  verify : Types.node_id -> msg:string -> signature:string -> bool;
  validate_value : slot:int -> Types.value -> validation;
  combine_candidates : slot:int -> Types.value list -> Types.value option;
  value_externalized : slot:int -> Types.value -> unit;
  nomination_timeout : round:int -> float;
  ballot_timeout : counter:int -> float;
  schedule : delay:float -> (unit -> unit) -> unit -> unit;
  hooks : hooks;
}

let default_nomination_timeout ~round = float_of_int (1 + round)
let default_ballot_timeout ~counter = float_of_int (1 + counter)

let make ~emit_envelope ~sign ~verify ~validate_value ~combine_candidates
    ~value_externalized ~schedule ?(nomination_timeout = default_nomination_timeout)
    ?(ballot_timeout = default_ballot_timeout) ?(hooks = no_hooks) () =
  {
    emit_envelope;
    sign;
    verify;
    validate_value;
    combine_candidates;
    value_externalized;
    nomination_timeout;
    ballot_timeout;
    schedule;
    hooks;
  }
