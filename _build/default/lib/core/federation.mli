(** Federated voting predicates (§3.2.3).

    These operate over the latest statement received from each node; each
    statement carries its sender's quorum set, so quorums are discovered
    from the messages themselves — the defining feature of FBA. *)

module Node_map : Map.S with type key = string

type statements = Types.statement Node_map.t

val is_quorum :
  local_qset:Quorum_set.t ->
  statements ->
  (Types.statement -> bool) ->
  bool
(** [is_quorum ~local_qset sts pred] — is there a quorum, including the
    local node, of nodes whose latest statement satisfies [pred]?  Computed
    as a greatest fixpoint: repeatedly discard nodes whose own quorum set is
    not satisfied by the remaining set, then test the local quorum set. *)

val find_quorum :
  local_qset:Quorum_set.t ->
  statements ->
  (Types.statement -> bool) ->
  string list option
(** Like {!is_quorum} but returns the node set found. *)

val is_v_blocking_set :
  local_qset:Quorum_set.t -> statements -> (Types.statement -> bool) -> bool
(** Do the nodes whose statements satisfy [pred] form a v-blocking set for
    the local quorum set? *)

val federated_accept :
  local_qset:Quorum_set.t ->
  statements ->
  voted:(Types.statement -> bool) ->
  accepted:(Types.statement -> bool) ->
  bool
(** A node accepts a statement when either (case 2) a v-blocking set accepts
    it, or (case 1) it belongs to a quorum in which every member votes for
    or accepts it. *)

val federated_ratify :
  local_qset:Quorum_set.t -> statements -> (Types.statement -> bool) -> bool
(** Confirmation: a quorum unanimously accepts the statement. *)
