(** Federated leader selection for nomination (§3.2.5).

    Each node computes, per slot and round, a priority for every neighbor —
    a node whose per-slot hash falls below its slice weight — and follows
    the highest-priority neighbor as leader.  As rounds progress the set of
    followed leaders grows, accommodating leader failure. *)

val weight : qset:Quorum_set.t -> self:Types.node_id -> Types.node_id -> float
(** Slice weight as seen from [self]; [self] has weight 1. *)

val hash_fraction :
  slot:int -> prev:Types.value -> tag:int -> round:int -> Types.node_id -> float
(** [H_tag(round, v) / 2^256] in [\[0,1)], from SHA-256 as in stellar-core. *)

val is_neighbor :
  qset:Quorum_set.t ->
  self:Types.node_id ->
  slot:int ->
  prev:Types.value ->
  round:int ->
  Types.node_id ->
  bool

val priority : slot:int -> prev:Types.value -> round:int -> Types.node_id -> float

val round_leader :
  qset:Quorum_set.t ->
  self:Types.node_id ->
  slot:int ->
  prev:Types.value ->
  round:int ->
  Types.node_id
(** The leader to follow in the given round: highest-priority neighbor, or —
    when no node qualifies as neighbor — the node minimizing
    [H0(v)/weight(v)] per §3.2.5. *)
