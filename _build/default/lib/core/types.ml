type node_id = Quorum_set.node_id
type value = string

type ballot = { counter : int; value : value }

module Ballot = struct
  let max_counter = max_int

  let compare a b =
    let c = Int.compare a.counter b.counter in
    if c <> 0 then c else String.compare a.value b.value

  let equal a b = compare a b = 0
  let compatible a b = String.equal a.value b.value
  let less_and_compatible a b = compare a b <= 0 && compatible a b
  let less_and_incompatible a b = compare a b <= 0 && not (compatible a b)

  let pp fmt b =
    let v =
      if String.length b.value >= 4 then Stellar_crypto.Hex.encode (String.sub b.value 0 4)
      else Stellar_crypto.Hex.encode b.value
    in
    if b.counter = max_counter then Format.fprintf fmt "<inf,%s>" v
    else Format.fprintf fmt "<%d,%s>" b.counter v
end

type nomination = { votes : value list; accepted : value list }

type prepare = {
  ballot : ballot;
  prepared : ballot option;
  prepared_prime : ballot option;
  n_c : int;
  n_h : int;
}

type confirm = { ballot : ballot; n_prepared : int; n_commit : int; n_h : int }

type externalize = { commit : ballot; n_h : int }

type pledge =
  | Nominate of nomination
  | Prepare of prepare
  | Confirm of confirm
  | Externalize of externalize

type statement = {
  node_id : node_id;
  slot : int;
  quorum_set : Quorum_set.t;
  pledge : pledge;
}

type envelope = { statement : statement; signature : string }

let add_string buf s =
  Buffer.add_int32_be buf (Int32.of_int (String.length s));
  Buffer.add_string buf s

let add_int buf n = Buffer.add_int64_be buf (Int64.of_int n)

let add_ballot buf b =
  add_int buf b.counter;
  add_string buf b.value

let add_ballot_opt buf = function
  | None -> Buffer.add_char buf '\000'
  | Some b ->
      Buffer.add_char buf '\001';
      add_ballot buf b

let statement_bytes st =
  let buf = Buffer.create 256 in
  add_string buf st.node_id;
  add_int buf st.slot;
  Buffer.add_string buf (Quorum_set.encode st.quorum_set);
  (match st.pledge with
  | Nominate n ->
      Buffer.add_char buf 'N';
      add_int buf (List.length n.votes);
      List.iter (add_string buf) n.votes;
      add_int buf (List.length n.accepted);
      List.iter (add_string buf) n.accepted
  | Prepare p ->
      Buffer.add_char buf 'P';
      add_ballot buf p.ballot;
      add_ballot_opt buf p.prepared;
      add_ballot_opt buf p.prepared_prime;
      add_int buf p.n_c;
      add_int buf p.n_h
  | Confirm c ->
      Buffer.add_char buf 'C';
      add_ballot buf c.ballot;
      add_int buf c.n_prepared;
      add_int buf c.n_commit;
      add_int buf c.n_h
  | Externalize e ->
      Buffer.add_char buf 'X';
      add_ballot buf e.commit;
      add_int buf e.n_h);
  Buffer.contents buf

let envelope_size env = String.length (statement_bytes env.statement) + String.length env.signature

let pledge_kind = function
  | Nominate _ -> "nominate"
  | Prepare _ -> "prepare"
  | Confirm _ -> "confirm"
  | Externalize _ -> "externalize"

let statement_ballot_counter st =
  match st.pledge with
  | Nominate _ -> None
  | Prepare p -> Some p.ballot.counter
  | Confirm c -> Some c.ballot.counter
  | Externalize _ -> Some Ballot.max_counter

let pp_statement fmt st =
  let short id =
    Stellar_crypto.Hex.encode (String.sub id 0 (min 4 (String.length id)))
  in
  match st.pledge with
  | Nominate n ->
      Format.fprintf fmt "[%s slot=%d NOMINATE votes=%d accepted=%d]" (short st.node_id)
        st.slot (List.length n.votes) (List.length n.accepted)
  | Prepare p ->
      Format.fprintf fmt "[%s slot=%d PREPARE b=%a p=%a p'=%a c=%d h=%d]" (short st.node_id)
        st.slot Ballot.pp p.ballot
        (Format.pp_print_option Ballot.pp)
        p.prepared
        (Format.pp_print_option Ballot.pp)
        p.prepared_prime p.n_c p.n_h
  | Confirm c ->
      Format.fprintf fmt "[%s slot=%d CONFIRM b=%a p=%d c=%d h=%d]" (short st.node_id)
        st.slot Ballot.pp c.ballot c.n_prepared c.n_commit c.n_h
  | Externalize e ->
      Format.fprintf fmt "[%s slot=%d EXTERNALIZE c=%a h=%d]" (short st.node_id) st.slot
        Ballot.pp e.commit e.n_h
