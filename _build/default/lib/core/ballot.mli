(** The ballot protocol (§3.2.1, §3.2.4).

    Nodes proceed through numbered ballots [⟨n, x⟩], federated-voting on
    [prepare] and [commit] statements.  The three phases mirror
    stellar-core: PREPARE (voting/accepting prepare, then confirming it and
    voting commit), CONFIRM (accepted commit; working to confirm it) and
    EXTERNALIZE (commit confirmed — the slot's value is decided).

    Ballot synchronization: the ballot timer only runs while the node sees a
    quorum at its current (or later) ballot counter, and a node jumps
    forward when a v-blocking set is strictly ahead — both per §3.2.4. *)

type phase = Prepare_phase | Confirm_phase | Externalize_phase

val phase_name : phase -> string

type t

val create :
  slot:int ->
  local_id:Types.node_id ->
  get_qset:(unit -> Quorum_set.t) ->
  driver:Driver.t ->
  t

val phase : t -> phase
val current_ballot : t -> Types.ballot option
val prepared : t -> Types.ballot option
val high_ballot : t -> Types.ballot option
val commit_ballot : t -> Types.ballot option
val heard_from_quorum : t -> bool
val externalized_value : t -> Types.value option
val latest_statements : t -> Types.statement list
val latest_envelopes : t -> Types.envelope list

val bump : t -> value:Types.value -> force:bool -> bool
(** Start balloting on a (composite) value.  With [force] a new ballot is
    started even if one is in progress — used on nomination updates and
    timeouts; otherwise only the first call starts ballot 1. *)

val process_envelope : t -> Types.envelope -> [ `Processed | `Stale | `Invalid ]

val on_nomination_composite : t -> Types.value -> unit
(** Record the latest nomination composite, used as the value when
    abandoning a ballot with no confirmed-prepared value. *)

val reevaluate : t -> unit
(** Re-run the attempt steps against the current quorum set (after a
    unilateral slice reconfiguration, §3.1.1). *)
