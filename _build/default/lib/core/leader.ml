let weight ~qset ~self node =
  if String.equal self node then 1.0 else Quorum_set.weight qset node

(* First 8 bytes of SHA256(slot || prev || tag || round || node), scaled to
   [0,1).  Matches the paper's H_i construction. *)
let hash_fraction ~slot ~prev ~tag ~round node =
  let buf = Buffer.create 64 in
  Buffer.add_int64_be buf (Int64.of_int slot);
  Buffer.add_string buf prev;
  Buffer.add_int32_be buf (Int32.of_int tag);
  Buffer.add_int32_be buf (Int32.of_int round);
  Buffer.add_string buf node;
  let digest = Stellar_crypto.Sha256.digest (Buffer.contents buf) in
  (* 53 bits of the digest for an exact float in [0,1). *)
  let bits = ref 0 in
  for i = 0 to 6 do
    bits := (!bits lsl 8) lor Char.code digest.[i]
  done;
  float_of_int !bits /. 72057594037927936.0 (* 2^56 *)

let tag_neighbor = 1
let tag_priority = 2

let is_neighbor ~qset ~self ~slot ~prev ~round node =
  let w = weight ~qset ~self node in
  w > 0.0 && hash_fraction ~slot ~prev ~tag:tag_neighbor ~round node < w

let priority ~slot ~prev ~round node =
  hash_fraction ~slot ~prev ~tag:tag_priority ~round node

let round_leader ~qset ~self ~slot ~prev ~round =
  let nodes = List.sort_uniq String.compare (self :: Quorum_set.all_validators qset) in
  let neighbors = List.filter (is_neighbor ~qset ~self ~slot ~prev ~round) nodes in
  match neighbors with
  | _ :: _ ->
      let best (bn, bp) n =
        let p = priority ~slot ~prev ~round n in
        if p > bp then (n, p) else (bn, bp)
      in
      fst (List.fold_left best ("", -1.0) neighbors)
  | [] ->
      (* Fall back to the node minimizing H0(v)/weight(v) (§3.2.5). *)
      let score n =
        hash_fraction ~slot ~prev ~tag:tag_neighbor ~round n /. weight ~qset ~self n
      in
      let best (bn, bs) n =
        let s = score n in
        if s < bs then (n, s) else (bn, bs)
      in
      fst (List.fold_left best ("", infinity) nodes)
