open Types

module NM = Federation.Node_map

type phase = Prepare_phase | Confirm_phase | Externalize_phase

let phase_name = function
  | Prepare_phase -> "prepare"
  | Confirm_phase -> "confirm"
  | Externalize_phase -> "externalize"

type t = {
  slot : int;
  local_id : node_id;
  get_qset : unit -> Quorum_set.t;
  driver : Driver.t;
  mutable phase : phase;
  mutable b : ballot option;
  mutable p : ballot option;
  mutable p_prime : ballot option;
  mutable h : ballot option;
  mutable c : ballot option;
  mutable latest : Federation.statements;
  mutable latest_envs : envelope NM.t;
  mutable value_override : value option;
  mutable nomination_composite : value option;
  mutable heard_from_quorum : bool;
  mutable timer_cancel : (unit -> unit) option;
  mutable timer_counter : int;  (* counter the running timer was armed for *)
  mutable last_emitted : statement option;
  mutable externalized : value option;
  mutable message_level : int;
}

let create ~slot ~local_id ~get_qset ~driver =
  {
    slot;
    local_id;
    get_qset;
    driver;
    phase = Prepare_phase;
    b = None;
    p = None;
    p_prime = None;
    h = None;
    c = None;
    latest = NM.empty;
    latest_envs = NM.empty;
    value_override = None;
    nomination_composite = None;
    heard_from_quorum = false;
    timer_cancel = None;
    timer_counter = -1;
    last_emitted = None;
    externalized = None;
    message_level = 0;
  }

let phase t = t.phase
let current_ballot t = t.b
let prepared t = t.p
let high_ballot t = t.h
let commit_ballot t = t.c
let heard_from_quorum t = t.heard_from_quorum
let externalized_value t = t.externalized
let latest_statements t = NM.fold (fun _ st acc -> st :: acc) t.latest []
let latest_envelopes t = NM.fold (fun _ env acc -> env :: acc) t.latest_envs []
let on_nomination_composite t v = t.nomination_composite <- Some v

(* ---- statement predicates (what a peer's statement votes/accepts) ---- *)

(* Does [st] accept "prepared(bal)"? *)
let accepts_prepared bal st =
  match st.pledge with
  | Prepare p ->
      (match p.prepared with Some pp -> Ballot.less_and_compatible bal pp | None -> false)
      || (match p.prepared_prime with Some pp -> Ballot.less_and_compatible bal pp | None -> false)
  | Confirm c ->
      Ballot.compatible bal c.ballot && bal.counter <= c.n_prepared
  | Externalize e -> Ballot.compatible bal e.commit
  | Nominate _ -> false

(* Does [st] vote "prepare(bal)"?  A PREPARE for a higher compatible ballot
   subsumes votes for all lower ones; CONFIRM/EXTERNALIZE vote prepare at
   effectively infinite counters for their value. *)
let votes_prepared bal st =
  match st.pledge with
  | Prepare p -> Ballot.less_and_compatible bal p.ballot
  | Confirm c -> Ballot.compatible bal c.ballot
  | Externalize e -> Ballot.compatible bal e.commit
  | Nominate _ -> false

(* Does [st] vote commit(n, v) for every n in [lo, hi]? *)
let votes_commit ~value ~lo ~hi st =
  match st.pledge with
  | Prepare p ->
      String.equal p.ballot.value value && p.n_c <> 0 && p.n_c <= lo && hi <= p.n_h
  | Confirm c -> String.equal c.ballot.value value && c.n_commit <= lo
  | Externalize _ -> false
  | Nominate _ -> false

(* Does [st] accept commit(n, v) for every n in [lo, hi]? *)
let accepts_commit ~value ~lo ~hi st =
  match st.pledge with
  | Prepare _ -> false
  | Confirm c -> String.equal c.ballot.value value && c.n_commit <= lo && hi <= c.n_h
  | Externalize e -> String.equal e.commit.value value && e.commit.counter <= lo
  | Nominate _ -> false

(* ---- helpers over received statements ---- *)

let prepare_candidates t =
  let add acc bal = if List.exists (Ballot.equal bal) acc then acc else bal :: acc in
  let of_stmt acc st =
    match st.pledge with
    | Prepare p ->
        let acc = add acc p.ballot in
        let acc = match p.prepared with Some b -> add acc b | None -> acc in
        (match p.prepared_prime with Some b -> add acc b | None -> acc)
    | Confirm c ->
        let acc = add acc { counter = c.n_prepared; value = c.ballot.value } in
        add acc { counter = Ballot.max_counter; value = c.ballot.value }
    | Externalize e -> add acc { counter = Ballot.max_counter; value = e.commit.value }
    | Nominate _ -> acc
  in
  let cands = NM.fold (fun _ st acc -> of_stmt acc st) t.latest [] in
  List.sort (fun a b -> Ballot.compare b a) cands (* descending *)

let commit_boundaries t value =
  let add acc n = if n > 0 && not (List.mem n acc) then n :: acc else acc in
  let of_stmt acc st =
    match st.pledge with
    | Prepare p ->
        if String.equal p.ballot.value value && p.n_c <> 0 then add (add acc p.n_c) p.n_h
        else acc
    | Confirm c ->
        if String.equal c.ballot.value value then add (add acc c.n_commit) c.n_h else acc
    | Externalize e ->
        if String.equal e.commit.value value then add acc e.commit.counter else acc
    | Nominate _ -> acc
  in
  let bs = NM.fold (fun _ st acc -> of_stmt acc st) t.latest [] in
  List.sort (fun a b -> Int.compare b a) bs (* descending *)

(* Largest interval [lo, hi], anchored at successive boundaries from above,
   on which [pred ~lo ~hi] holds (stellar-core's findExtendedInterval). *)
let find_extended_interval boundaries pred =
  let rec go interval = function
    | [] -> interval
    | b :: rest ->
        let cand = match interval with None -> (b, b) | Some (_, hi) -> (b, hi) in
        let lo, hi = cand in
        if pred ~lo ~hi then go (Some cand) rest
        else if interval <> None then interval
        else go None rest
  in
  go None boundaries

(* ---- emitting ---- *)

let current_statement t =
  let pledge =
    match t.phase with
    | Prepare_phase ->
        let b = Option.get t.b in
        Prepare
          {
            ballot = b;
            prepared = t.p;
            prepared_prime = t.p_prime;
            n_c = (match t.c with Some c -> c.counter | None -> 0);
            n_h = (match t.h with Some h -> h.counter | None -> 0);
          }
    | Confirm_phase ->
        let b = Option.get t.b in
        Confirm
          {
            ballot = b;
            n_prepared = (match t.p with Some p -> p.counter | None -> 0);
            n_commit = (match t.c with Some c -> c.counter | None -> 0);
            n_h = (match t.h with Some h -> h.counter | None -> 0);
          }
    | Externalize_phase ->
        Externalize
          {
            commit = Option.get t.c;
            n_h = (match t.h with Some h -> h.counter | None -> 0);
          }
  in
  { node_id = t.local_id; slot = t.slot; quorum_set = t.get_qset (); pledge }

let sign_and_emit t =
  if t.b <> None then begin
    let st = current_statement t in
    if t.last_emitted <> Some st then begin
      t.last_emitted <- Some st;
      t.latest <- NM.add t.local_id st t.latest;
      let signature = t.driver.Driver.sign (statement_bytes st) in
      let env = { statement = st; signature } in
      t.latest_envs <- NM.add t.local_id env t.latest_envs;
      t.driver.Driver.emit_envelope env
    end
  end

(* ---- timers & quorum sync (§3.2.4) ---- *)

let stop_timer t =
  Option.iter (fun cancel -> cancel ()) t.timer_cancel;
  t.timer_cancel <- None;
  t.timer_counter <- -1

(* Forward declaration for the timeout callback. *)
let abandon_hook : (t -> int -> unit) ref = ref (fun _ _ -> ())

let check_heard_from_quorum t =
  match t.b with
  | None -> ()
  | Some b ->
      let at_or_above st =
        match statement_ballot_counter st with
        | Some n -> n >= b.counter
        | None -> false
      in
      if Federation.is_quorum ~local_qset:(t.get_qset ()) t.latest at_or_above then begin
        t.heard_from_quorum <- true;
        if t.phase <> Externalize_phase && t.timer_counter <> b.counter then begin
          stop_timer t;
          t.timer_counter <- b.counter;
          let delay = t.driver.Driver.ballot_timeout ~counter:b.counter in
          t.timer_cancel <-
            Some
              (t.driver.Driver.schedule ~delay (fun () ->
                   t.driver.Driver.hooks.Driver.on_timeout ~slot:t.slot ~kind:`Ballot;
                   !abandon_hook t 0))
        end
      end
      else begin
        t.heard_from_quorum <- false;
        stop_timer t
      end

(* ---- state transitions ---- *)

let bump_to_ballot t bal =
  assert (t.phase <> Externalize_phase);
  let got_bumped = match t.b with None -> true | Some b -> b.counter <> bal.counter in
  t.b <- Some bal;
  if got_bumped then begin
    t.heard_from_quorum <- false;
    stop_timer t;
    t.driver.Driver.hooks.Driver.on_ballot_bump ~slot:t.slot ~counter:bal.counter
  end

let update_current_if_needed t h =
  match t.b with
  | Some b when Ballot.compare b h >= 0 -> false
  | _ ->
      bump_to_ballot t h;
      true

(* Update p / p' with a newly accepted-prepared ballot. *)
let set_prepared t bal =
  let did = ref false in
  (match t.p with
  | None ->
      t.p <- Some bal;
      did := true
  | Some p0 ->
      let cmp = Ballot.compare p0 bal in
      if cmp < 0 then begin
        if not (Ballot.compatible p0 bal) then t.p_prime <- Some p0;
        t.p <- Some bal;
        did := true
      end
      else if cmp > 0 && not (Ballot.compatible p0 bal) then begin
        match t.p_prime with
        | Some pp when Ballot.compare bal pp <= 0 -> ()
        | _ ->
            t.p_prime <- Some bal;
            did := true
      end);
  !did

(* ---- the four "attempt" steps of advanceSlot ---- *)

let attempt_accept_prepared t =
  if t.phase = Externalize_phase then false
  else begin
    let cands = prepare_candidates t in
    let try_candidate bal =
      (* Skip candidates that cannot improve p / p'. *)
      let improves =
        match (t.p, t.p_prime) with
        | Some p0, _ when Ballot.compare bal p0 > 0 -> true
        | Some p0, pp ->
            (not (Ballot.compatible bal p0))
            && (match pp with Some pp0 -> Ballot.compare bal pp0 > 0 | None -> true)
        | None, _ -> true
      in
      (* In CONFIRM phase only ballots compatible with the commit value
         matter. *)
      let relevant =
        match t.phase with
        | Confirm_phase -> (
            match t.c with Some c -> Ballot.compatible bal c | None -> true)
        | _ -> true
      in
      if improves && relevant then
        Federation.federated_accept ~local_qset:(t.get_qset ()) t.latest
          ~voted:(votes_prepared bal) ~accepted:(accepts_prepared bal)
      else false
    in
    match List.find_opt try_candidate cands with
    | None -> false
    | Some bal ->
        let did = set_prepared t bal in
        (* Accepting an incompatible higher prepared ballot aborts any
           pending commit votes below it. *)
        let did2 =
          match (t.c, t.h) with
          | Some _, Some h0 ->
              let aborts =
                (match t.p with Some p0 -> Ballot.less_and_incompatible h0 p0 | None -> false)
                || match t.p_prime with
                   | Some pp -> Ballot.less_and_incompatible h0 pp
                   | None -> false
              in
              if aborts then begin
                t.c <- None;
                true
              end
              else false
          | _ -> false
        in
        if did || did2 then sign_and_emit t;
        did || did2
  end

let attempt_confirm_prepared t =
  if t.phase <> Prepare_phase || t.p = None then false
  else begin
    let cands = prepare_candidates t in
    let ratified bal =
      Federation.federated_ratify ~local_qset:(t.get_qset ()) t.latest (accepts_prepared bal)
    in
    let new_h =
      List.find_opt
        (fun bal ->
          (match t.h with Some h0 -> Ballot.compare bal h0 > 0 | None -> true)
          && ratified bal)
        cands
    in
    match new_h with
    | None -> false
    | Some new_h ->
        (* Find the lowest compatible ratified candidate to vote commit on,
           unless an incompatible prepared ballot forbids it. *)
        let new_c =
          if
            t.c = None
            && (match t.p with
               | Some p0 -> not (Ballot.less_and_incompatible new_h p0)
               | None -> true)
            && (match t.p_prime with
               | Some pp -> not (Ballot.less_and_incompatible new_h pp)
               | None -> true)
          then begin
            let compatible_below =
              List.filter
                (fun bal ->
                  Ballot.less_and_compatible bal new_h
                  && (match t.b with Some b -> Ballot.compare bal b >= 0 | None -> true))
                cands
              |> List.sort Ballot.compare (* ascending *)
            in
            List.find_opt ratified compatible_below
          end
          else None
        in
        t.value_override <- Some new_h.value;
        t.h <- Some new_h;
        (match new_c with Some _ -> t.c <- new_c | None -> ());
        let _ = update_current_if_needed t new_h in
        sign_and_emit t;
        true
  end

let attempt_accept_commit t =
  if t.phase = Externalize_phase then false
  else begin
    (* Try every value present in commit-able statements. *)
    let values =
      NM.fold
        (fun _ st acc ->
          let v =
            match st.pledge with
            | Prepare p when p.n_c <> 0 -> Some p.ballot.value
            | Confirm c -> Some c.ballot.value
            | Externalize e -> Some e.commit.value
            | _ -> None
          in
          match v with
          | Some v when not (List.mem v acc) -> v :: acc
          | _ -> acc)
        t.latest []
    in
    let try_value value =
      (* In later phases only the committed value may advance. *)
      let ok =
        match t.phase with
        | Confirm_phase -> (
            match t.c with Some c -> String.equal c.value value | None -> true)
        | _ -> true
      in
      if not ok then None
      else begin
        let boundaries = commit_boundaries t value in
        let pred ~lo ~hi =
          Federation.federated_accept ~local_qset:(t.get_qset ()) t.latest
            ~voted:(votes_commit ~value ~lo ~hi)
            ~accepted:(accepts_commit ~value ~lo ~hi)
        in
        match find_extended_interval boundaries pred with
        | Some (lo, hi) -> Some (value, lo, hi)
        | None -> None
      end
    in
    match List.find_map try_value values with
    | None -> false
    | Some (value, lo, hi) ->
        let improves =
          match (t.phase, t.c, t.h) with
          | Prepare_phase, _, _ -> true
          | Confirm_phase, Some c0, Some h0 -> c0.counter <> lo || h0.counter <> hi
          | _ -> true
        in
        if not improves then false
        else begin
          let c = { counter = lo; value } and h = { counter = hi; value } in
          t.c <- Some c;
          t.h <- Some h;
          t.value_override <- Some value;
          if t.phase = Prepare_phase then begin
            t.phase <- Confirm_phase;
            t.driver.Driver.hooks.Driver.on_phase_change ~slot:t.slot ~phase:"confirm";
            t.p_prime <- None
          end;
          let _ = set_prepared t h in
          (match t.b with
          | Some b when Ballot.less_and_compatible h b -> ()
          | _ -> bump_to_ballot t { counter = max hi (match t.b with Some b -> b.counter | None -> 0); value });
          sign_and_emit t;
          true
        end
  end

let attempt_confirm_commit t =
  if t.phase <> Confirm_phase then false
  else
    match (t.c, t.h) with
    | Some c0, Some _ ->
        let value = c0.value in
        let boundaries = commit_boundaries t value in
        let pred ~lo ~hi =
          Federation.federated_ratify ~local_qset:(t.get_qset ()) t.latest
            (accepts_commit ~value ~lo ~hi)
        in
        (match find_extended_interval boundaries pred with
        | None -> false
        | Some (lo, hi) ->
            t.c <- Some { counter = lo; value };
            t.h <- Some { counter = hi; value };
            t.phase <- Externalize_phase;
            t.driver.Driver.hooks.Driver.on_phase_change ~slot:t.slot ~phase:"externalize";
            stop_timer t;
            sign_and_emit t;
            t.externalized <- Some value;
            t.driver.Driver.value_externalized ~slot:t.slot value;
            true)
    | _ -> false

(* Jump forward when a v-blocking set is strictly ahead (§3.2.4). *)
let attempt_bump t =
  if t.phase = Externalize_phase then false
  else
    match t.b with
    | None -> false
    | Some b ->
        let counters =
          NM.fold
            (fun _ st acc ->
              match statement_ballot_counter st with
              | Some n when n > b.counter && not (List.mem n acc) -> n :: acc
              | _ -> acc)
            t.latest []
          |> List.sort Int.compare
        in
        let ahead_of n st =
          match statement_ballot_counter st with Some m -> m > n | None -> false
        in
        if
          counters <> []
          && Federation.is_v_blocking_set ~local_qset:(t.get_qset ()) t.latest (ahead_of b.counter)
        then begin
          (* Lowest counter such that the set strictly ahead of it is no
             longer v-blocking. *)
          let target =
            List.find
              (fun n ->
                not (Federation.is_v_blocking_set ~local_qset:(t.get_qset ()) t.latest (ahead_of n)))
              counters
          in
          !abandon_hook t target;
          true
        end
        else false

(* ---- driving ---- *)

let rec advance_slot t =
  t.message_level <- t.message_level + 1;
  if t.message_level < 50 then begin
    let did = ref false in
    did := attempt_accept_prepared t || !did;
    did := attempt_confirm_prepared t || !did;
    did := attempt_accept_commit t || !did;
    did := attempt_confirm_commit t || !did;
    if t.message_level = 1 then begin
      let bumped = ref (attempt_bump t) in
      while !bumped do
        bumped := attempt_bump t
      done;
      check_heard_from_quorum t
    end
  end;
  t.message_level <- t.message_level - 1

and bump_state t ~value ~counter =
  if t.phase = Prepare_phase || t.phase = Confirm_phase then begin
    let value = match t.value_override with Some v -> v | None -> value in
    let new_b =
      match t.h with
      | Some h -> { counter; value = h.value }
      | None -> { counter; value }
    in
    bump_to_ballot t new_b;
    sign_and_emit t;
    advance_slot t;
    check_heard_from_quorum t
  end

and abandon t n =
  match t.b with
  | None -> ()
  | Some b ->
      let counter = if n = 0 then b.counter + 1 else n in
      let value =
        match t.value_override with
        | Some v -> v
        | None -> (
            match t.nomination_composite with Some v -> v | None -> b.value)
      in
      bump_state t ~value ~counter

let () = abandon_hook := abandon

let bump t ~value ~force =
  if t.phase <> Prepare_phase && t.phase <> Confirm_phase then false
  else if (not force) && t.b <> None then false
  else begin
    let counter = match t.b with Some b -> max 1 b.counter | None -> 1 in
    bump_state t ~value ~counter;
    true
  end

(* ---- incoming statements ---- *)

let statement_sane st =
  match st.pledge with
  | Nominate _ -> false
  | Prepare p ->
      let ok_pp =
        match (p.prepared, p.prepared_prime) with
        | _, None -> true
        | None, Some _ -> false
        | Some pr, Some pp ->
            Ballot.compare pp pr < 0 && not (Ballot.compatible pp pr)
      in
      ok_pp
      && p.ballot.counter >= 1
      && (p.n_h = 0 || (match p.prepared with Some pr -> p.n_h <= pr.counter | None -> false))
      && (p.n_c = 0 || (p.n_h <> 0 && p.n_c <= p.n_h && p.n_h <= p.ballot.counter))
  | Confirm c ->
      c.ballot.counter >= 1
      && c.n_h <= c.ballot.counter
      && c.n_commit <= c.n_h
      && c.n_commit >= 1
      && c.n_prepared >= c.n_h
  | Externalize e -> e.commit.counter >= 1 && e.n_h >= e.commit.counter

(* Is [b] a strictly newer ballot-protocol statement than [a]? *)
let newer_statement a b =
  let rank st =
    match st.pledge with
    | Prepare _ -> 0
    | Confirm _ -> 1
    | Externalize _ -> 2
    | Nominate _ -> -1
  in
  let ra = rank a and rb = rank b in
  if ra <> rb then rb > ra
  else
    match (a.pledge, b.pledge) with
    | Prepare pa, Prepare pb ->
        let cmp_opt x y =
          match (x, y) with
          | None, None -> 0
          | None, Some _ -> -1
          | Some _, None -> 1
          | Some bx, Some by -> Ballot.compare bx by
        in
        let c = Ballot.compare pa.ballot pb.ballot in
        if c <> 0 then c < 0
        else
          let c = cmp_opt pa.prepared pb.prepared in
          if c <> 0 then c < 0
          else
            let c = cmp_opt pa.prepared_prime pb.prepared_prime in
            if c <> 0 then c < 0 else pa.n_h < pb.n_h || (pa.n_h = pb.n_h && pa.n_c < pb.n_c)
    | Confirm ca, Confirm cb ->
        let c = Ballot.compare ca.ballot cb.ballot in
        if c <> 0 then c < 0
        else if ca.n_prepared <> cb.n_prepared then ca.n_prepared < cb.n_prepared
        else ca.n_h < cb.n_h || (ca.n_h = cb.n_h && ca.n_commit < cb.n_commit)
    | Externalize _, Externalize _ -> false
    | _ -> false

let process_envelope t (env : envelope) =
  let st = env.statement in
  if not (statement_sane st) then `Invalid
  else begin
    let fresh =
      match NM.find_opt st.node_id t.latest with
      | None -> true
      | Some old ->
          newer_statement old st
          (* same pledge but reconfigured slices: record the new quorum set *)
          || (old.pledge = st.pledge && old.quorum_set <> st.quorum_set)
    in
    if not fresh then `Stale
    else begin
      t.latest <- NM.add st.node_id st t.latest;
      t.latest_envs <- NM.add st.node_id env t.latest_envs;
      if t.externalized = None then advance_slot t
      else begin
        (* Already externalized: nothing to advance, but keep recording so
           stragglers' quorum checks see us. *)
        ()
      end;
      `Processed
    end
  end

let reevaluate t =
  if t.externalized = None then begin
    (* re-announce our current ballot state so peers learn the new quorum
       set (the statement embeds it, so sign_and_emit sees a change) *)
    sign_and_emit t;
    advance_slot t;
    check_heard_from_quorum t
  end
