(** One consensus slot: a nomination protocol instance feeding a ballot
    protocol instance (§3.2).  In Stellar each slot decides one ledger. *)

type t

val create :
  index:int ->
  local_id:Types.node_id ->
  get_qset:(unit -> Quorum_set.t) ->
  driver:Driver.t ->
  t

val index : t -> int

val nominate : t -> value:Types.value -> prev:Types.value -> unit

val process_envelope : t -> Types.envelope -> [ `Processed | `Stale | `Invalid ]
(** Verifies the signature, checks statement sanity, and runs the relevant
    sub-protocol. *)

val phase : t -> Ballot.phase
val externalized_value : t -> Types.value option
val ballot_counter : t -> int
val nomination_round : t -> int
val heard_from_quorum : t -> bool

val latest_statements : t -> Types.statement list
(** Latest statements from all peers (nomination and ballot), e.g. for
    re-flooding to stragglers. *)

val reevaluate : t -> unit
(** Re-run both sub-protocols against the current quorum set. *)

val latest_envelopes : t -> Types.envelope list
(** Signed envelopes (ballot protocol first), for helping stragglers. *)
