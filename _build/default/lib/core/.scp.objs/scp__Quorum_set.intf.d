lib/core/quorum_set.mli: Format
