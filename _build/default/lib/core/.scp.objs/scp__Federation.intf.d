lib/core/federation.mli: Map Quorum_set Types
