lib/core/protocol.mli: Ballot Driver Quorum_set Types
