lib/core/nomination.mli: Driver Quorum_set Types
