lib/core/leader.ml: Buffer Char Int32 Int64 List Quorum_set Stellar_crypto String
