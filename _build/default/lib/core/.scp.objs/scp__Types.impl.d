lib/core/types.ml: Buffer Format Int Int32 Int64 List Quorum_set Stellar_crypto String
