lib/core/slot.ml: Ballot Driver Nomination Quorum_set String Types
