lib/core/ballot.ml: Ballot Driver Federation Int List Option Quorum_set String Types
