lib/core/ballot.mli: Driver Quorum_set Types
