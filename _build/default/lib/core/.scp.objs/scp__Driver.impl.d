lib/core/driver.ml: Types
