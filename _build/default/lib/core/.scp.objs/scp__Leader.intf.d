lib/core/leader.mli: Quorum_set Types
