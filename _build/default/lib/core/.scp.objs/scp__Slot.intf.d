lib/core/slot.mli: Ballot Driver Quorum_set Types
