lib/core/types.mli: Format Quorum_set
