lib/core/federation.ml: Map Option Quorum_set Set String Types
