lib/core/quorum_set.ml: Buffer Float Format Int32 List Stellar_crypto String
