lib/core/driver.mli: Types
