lib/core/nomination.ml: Driver Federation Leader List Option Quorum_set Set String Types
