lib/core/protocol.ml: Driver Hashtbl Int List Option Quorum_set Slot Types
