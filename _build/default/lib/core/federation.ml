module Node_map = Map.Make (String)

type statements = Types.statement Node_map.t

(* Greatest fixpoint: start from all nodes satisfying [pred] and repeatedly
   remove nodes whose quorum set has no slice within the current set.  The
   result is the largest candidate quorum inside the predicate set. *)
let quorum_fixpoint statements pred =
  let module S = Set.Make (String) in
  let initial =
    Node_map.fold
      (fun node st acc -> if pred st then S.add node acc else acc)
      statements S.empty
  in
  let rec shrink set =
    let keep node =
      let st = Node_map.find node statements in
      Quorum_set.is_quorum_slice st.Types.quorum_set (fun v -> S.mem v set)
    in
    let set' = S.filter keep set in
    if S.cardinal set' = S.cardinal set then set else shrink set'
  in
  shrink initial

let find_quorum ~local_qset statements pred =
  let module S = Set.Make (String) in
  let set = quorum_fixpoint statements pred in
  if Quorum_set.is_quorum_slice local_qset (fun v -> S.mem v set) then
    Some (S.elements set)
  else None

let is_quorum ~local_qset statements pred =
  Option.is_some (find_quorum ~local_qset statements pred)

let is_v_blocking_set ~local_qset statements pred =
  let in_set v =
    match Node_map.find_opt v statements with Some st -> pred st | None -> false
  in
  Quorum_set.is_v_blocking local_qset in_set

let federated_accept ~local_qset statements ~voted ~accepted =
  is_v_blocking_set ~local_qset statements accepted
  || is_quorum ~local_qset statements (fun st -> voted st || accepted st)

let federated_ratify ~local_qset statements pred =
  is_quorum ~local_qset statements pred
