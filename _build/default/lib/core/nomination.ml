module VS = Set.Make (String)
module SS = Set.Make (String)
module NM = Federation.Node_map

type t = {
  slot : int;
  local_id : Types.node_id;
  get_qset : unit -> Quorum_set.t;
  driver : Driver.t;
  on_candidates : Types.value -> unit;
  mutable round : int;
  mutable votes : VS.t;
  mutable accepted : VS.t;
  mutable candidates : VS.t;
  mutable latest : Federation.statements;
  mutable latest_envs : Types.envelope NM.t;
  mutable leaders : SS.t;
  mutable started : bool;
  mutable stopped : bool;
  mutable previous_value : Types.value;
  mutable nomination_value : Types.value;
  mutable timer_cancel : (unit -> unit) option;
  mutable last_emitted : Types.statement option;
  mutable latest_composite : Types.value option;
}

let create ~slot ~local_id ~get_qset ~driver ~on_candidates =
  {
    slot;
    local_id;
    get_qset;
    driver;
    on_candidates;
    round = 0;
    votes = VS.empty;
    accepted = VS.empty;
    candidates = VS.empty;
    latest = NM.empty;
    latest_envs = NM.empty;
    leaders = SS.empty;
    started = false;
    stopped = false;
    previous_value = "";
    nomination_value = "";
    timer_cancel = None;
    last_emitted = None;
    latest_composite = None;
  }

let started t = t.started
let round t = t.round
let leaders t = SS.elements t.leaders
let candidates t = VS.elements t.candidates
let latest_composite t = t.latest_composite
let latest_statements t = NM.fold (fun _ st acc -> st :: acc) t.latest []
let latest_envelopes t = NM.fold (fun _ env acc -> env :: acc) t.latest_envs []

let stop t =
  t.stopped <- true;
  Option.iter (fun cancel -> cancel ()) t.timer_cancel;
  t.timer_cancel <- None

(* ---- statement predicates ---- *)

let nom_of st = match st.Types.pledge with Types.Nominate n -> Some n | _ -> None

let votes_value v st =
  match nom_of st with
  | Some n -> List.exists (String.equal v) n.votes
  | None -> false

let accepts_value v st =
  match nom_of st with
  | Some n -> List.exists (String.equal v) n.accepted
  | None -> false

(* A value a leader is proposing, to echo: the leader's accepted values are
   preferred over plain votes; among those, pick by hash so all followers
   pick the same one deterministically. *)
let new_value_from_leader t leader_st =
  match nom_of leader_st with
  | None -> None
  | Some n ->
      let pool = if n.accepted <> [] then n.accepted else n.votes in
      let valid v =
        (not (VS.mem v t.votes))
        && t.driver.Driver.validate_value ~slot:t.slot v = Driver.Valid
      in
      let scored =
        List.filter_map
          (fun v ->
            if valid v then
              Some (Leader.hash_fraction ~slot:t.slot ~prev:t.previous_value ~tag:3 ~round:t.round v, v)
            else None)
          pool
      in
      match List.sort compare scored with [] -> None | (_, v) :: _ -> Some v

(* ---- emitting our own statement ---- *)

let current_statement t =
  Types.
    {
      node_id = t.local_id;
      slot = t.slot;
      quorum_set = t.get_qset ();
      pledge = Nominate { votes = VS.elements t.votes; accepted = VS.elements t.accepted };
    }

let record_self t =
  let st = current_statement t in
  t.latest <- NM.add t.local_id st t.latest

let emit_if_changed ?(force = false) t =
  let st = current_statement t in
  let changed =
    match t.last_emitted with
    | None -> not (VS.is_empty t.votes) || not (VS.is_empty t.accepted)
    | Some prev -> force || prev <> st
  in
  if changed && t.started && not t.stopped then begin
    t.last_emitted <- Some st;
    let signature = t.driver.Driver.sign (Types.statement_bytes st) in
    let env = { Types.statement = st; signature } in
    t.latest_envs <- NM.add t.local_id env t.latest_envs;
    t.driver.Driver.emit_envelope env
  end

(* ---- the federated-voting fixpoint ---- *)

let all_seen_values t =
  NM.fold
    (fun _ st acc ->
      match nom_of st with
      | None -> acc
      | Some n ->
          let acc = List.fold_left (fun a v -> VS.add v a) acc n.votes in
          List.fold_left (fun a v -> VS.add v a) acc n.accepted)
    t.latest VS.empty

let advance t =
  if t.started then begin
    record_self t;
    let progress = ref true in
    let new_candidates = ref false in
    while !progress do
      progress := false;
      let seen = all_seen_values t in
      VS.iter
        (fun v ->
          if not (VS.mem v t.accepted) then
            if
              Federation.federated_accept ~local_qset:(t.get_qset ()) t.latest
                ~voted:(votes_value v) ~accepted:(accepts_value v)
              && t.driver.Driver.validate_value ~slot:t.slot v = Driver.Valid
            then begin
              t.votes <- VS.add v t.votes;
              t.accepted <- VS.add v t.accepted;
              record_self t;
              progress := true
            end)
        seen;
      VS.iter
        (fun v ->
          if not (VS.mem v t.candidates) then
            if Federation.federated_ratify ~local_qset:(t.get_qset ()) t.latest (accepts_value v)
            then begin
              t.candidates <- VS.add v t.candidates;
              new_candidates := true;
              progress := true
            end)
        t.accepted
    done;
    emit_if_changed t;
    if !new_candidates then begin
      match t.driver.Driver.combine_candidates ~slot:t.slot (VS.elements t.candidates) with
      | Some composite ->
          t.latest_composite <- Some composite;
          t.on_candidates composite
      | None -> ()
    end
  end

(* ---- rounds ---- *)

let rec trigger_round t ~timedout =
  if (not t.stopped) && ((not timedout) || t.started) then begin
    t.started <- true;
    t.round <- t.round + 1;
    t.driver.Driver.hooks.Driver.on_nomination_round ~slot:t.slot ~round:t.round;
    if timedout then t.driver.Driver.hooks.Driver.on_timeout ~slot:t.slot ~kind:`Nomination;
    let leader =
      Leader.round_leader ~qset:(t.get_qset ()) ~self:t.local_id ~slot:t.slot
        ~prev:t.previous_value ~round:t.round
    in
    t.leaders <- SS.add leader t.leaders;
    (* Introduce or echo votes, but only while nothing is confirmed
       nominated: confirming a candidate ends new voting (§3.2.2). *)
    if VS.is_empty t.candidates then
      SS.iter
        (fun l ->
          if String.equal l t.local_id then begin
            if
              (not (VS.mem t.nomination_value t.votes))
              && t.driver.Driver.validate_value ~slot:t.slot t.nomination_value
                 = Driver.Valid
            then t.votes <- VS.add t.nomination_value t.votes
          end
          else
            match NM.find_opt l t.latest with
            | Some st -> (
                match new_value_from_leader t st with
                | Some v -> t.votes <- VS.add v t.votes
                | None -> ())
            | None -> ())
        t.leaders;
    record_self t;
    advance t;
    emit_if_changed ~force:timedout t;
    (* Re-arm the round timer with the growing timeout. *)
    Option.iter (fun cancel -> cancel ()) t.timer_cancel;
    let delay = t.driver.Driver.nomination_timeout ~round:t.round in
    t.timer_cancel <-
      Some (t.driver.Driver.schedule ~delay (fun () -> trigger_round t ~timedout:true))
  end

let nominate t ~value ~prev =
  t.nomination_value <- value;
  t.previous_value <- prev;
  trigger_round t ~timedout:false

(* ---- incoming statements ---- *)

let sorted_unique l =
  let s = List.sort String.compare l in
  let rec uniq = function
    | a :: b :: _ when String.equal a b -> false
    | _ :: rest -> uniq rest
    | [] -> true
  in
  uniq s && s = l

let is_newer ~old_st ~old_n ~new_st ~new_n =
  let subset a b = List.for_all (fun v -> List.exists (String.equal v) b) a in
  let open Types in
  subset old_n.votes new_n.votes
  && subset old_n.accepted new_n.accepted
  && (List.length new_n.votes > List.length old_n.votes
     || List.length new_n.accepted > List.length old_n.accepted
     (* a reconfigured quorum set alone also counts: peers must learn the
        sender's new slices for quorum discovery (§3.1.1) *)
     || old_st.quorum_set <> new_st.quorum_set)

let process_envelope t (env : Types.envelope) =
  let st = env.Types.statement in
  match nom_of st with
  | None -> `Invalid
  | Some n ->
      if not (sorted_unique n.votes && sorted_unique n.accepted) then `Invalid
      else if n.votes = [] && n.accepted = [] then `Invalid
      else begin
        let fresh =
          match NM.find_opt st.Types.node_id t.latest with
          | None -> true
          | Some old -> (
              match nom_of old with
              | Some old_n -> is_newer ~old_st:old ~old_n ~new_st:st ~new_n:n
              | None -> true)
        in
        if not fresh then `Stale
        else begin
          t.latest <- NM.add st.Types.node_id st t.latest;
          t.latest_envs <- NM.add st.Types.node_id env t.latest_envs;
          if t.started && not t.stopped then begin
            (* Echo a leader's proposal as soon as it arrives. *)
            (if VS.is_empty t.candidates && SS.mem st.Types.node_id t.leaders then
               match new_value_from_leader t st with
               | Some v ->
                   t.votes <- VS.add v t.votes;
                   record_self t
               | None -> ());
            advance t
          end;
          `Processed
        end
      end

let reevaluate t = if t.started && not t.stopped then advance t
