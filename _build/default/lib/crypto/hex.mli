(** Hexadecimal encoding of byte strings. *)

val encode : string -> string
(** Lowercase hex of every byte. *)

val decode : string -> string
(** Inverse of {!encode}. @raise Invalid_argument on malformed input. *)
