let name = "ed25519"

type secret = string

(* ---- Field arithmetic modulo p = 2^255 - 19 ---- *)

let p = Nat.sub (Nat.shift_left Nat.one 255) (Nat.of_int 19)

module Fe = struct
  let reduce a = Nat.rem a p
  let add a b = reduce (Nat.add a b)
  let sub a b = reduce (Nat.add a (Nat.sub p (reduce b)))
  let mul a b = reduce (Nat.mul a b)
  let pow a e = Nat.modpow a e p
  let inv a = pow a (Nat.sub p (Nat.of_int 2))
  let equal = Nat.equal
  let is_odd a = Nat.testbit a 0
end

(* Curve constant d = -121665 / 121666 mod p. *)
let d = Fe.mul (Fe.sub Nat.zero (Nat.of_int 121665)) (Fe.inv (Nat.of_int 121666))

(* Group order L = 2^252 + 27742317777372353535851937790883648493. *)
let group_order =
  Nat.add (Nat.shift_left Nat.one 252)
    (Nat.of_hex "14def9dea2f79cd65812631a5cf5d3ed")

(* sqrt(-1) = 2^((p-1)/4) mod p, used in square-root extraction. *)
let sqrt_m1 = Fe.pow (Nat.of_int 2) (Nat.div (Nat.sub p Nat.one) (Nat.of_int 4))

(* ---- Points in extended homogeneous coordinates (X, Y, Z, T),
        with x = X/Z, y = Y/Z, x*y = T/Z. ---- *)

type point = { x : Nat.t; y : Nat.t; z : Nat.t; t : Nat.t }

let identity = { x = Nat.zero; y = Nat.one; z = Nat.one; t = Nat.zero }

let point_add p1 p2 =
  let open Fe in
  let a = mul (sub p1.y p1.x) (sub p2.y p2.x) in
  let b = mul (add p1.y p1.x) (add p2.y p2.x) in
  let c = mul p1.t (mul (add d d) p2.t) in
  let dd = mul p1.z (add p2.z p2.z) in
  let e = sub b a in
  let f = sub dd c in
  let g = add dd c in
  let h = add b a in
  { x = mul e f; y = mul g h; z = mul f g; t = mul e h }

let point_double p1 =
  let open Fe in
  let a = mul p1.x p1.x in
  let b = mul p1.y p1.y in
  let c =
    let z2 = mul p1.z p1.z in
    add z2 z2
  in
  let h = add a b in
  let e =
    let xy = add p1.x p1.y in
    sub h (mul xy xy)
  in
  let g = sub a b in
  let f = add c g in
  { x = mul e f; y = mul g h; z = mul f g; t = mul e h }

let scalar_mult s pt =
  let r = ref identity in
  for i = Nat.bit_length s - 1 downto 0 do
    r := point_double !r;
    if Nat.testbit s i then r := point_add !r pt
  done;
  !r

let point_equal p1 p2 =
  (* x1/z1 = x2/z2 and y1/z1 = y2/z2 *)
  Fe.equal (Fe.mul p1.x p2.z) (Fe.mul p2.x p1.z)
  && Fe.equal (Fe.mul p1.y p2.z) (Fe.mul p2.y p1.z)

(* Recover the x-coordinate from y and a sign bit (RFC 8032, 5.1.3). *)
let recover_x y sign =
  if Nat.compare y p >= 0 then None
  else begin
    let open Fe in
    let y2 = mul y y in
    let x2 = mul (sub y2 Nat.one) (inv (add (mul d y2) Nat.one)) in
    if Nat.is_zero x2 then (if sign then None else Some Nat.zero)
    else begin
      let x = pow x2 (Nat.div (Nat.add p (Nat.of_int 3)) (Nat.of_int 8)) in
      let x = if equal (mul x x) x2 then x else mul x sqrt_m1 in
      if not (equal (mul x x) x2) then None
      else begin
        let x = if is_odd x <> sign then Nat.sub p x else x in
        if Nat.is_zero x && sign then None else Some x
      end
    end
  end

let encode_point pt =
  let zinv = Fe.inv pt.z in
  let x = Fe.mul pt.x zinv in
  let y = Fe.mul pt.y zinv in
  let bytes = Bytes.of_string (Nat.to_bytes_le y ~len:32) in
  if Fe.is_odd x then
    Bytes.set bytes 31 (Char.chr (Char.code (Bytes.get bytes 31) lor 0x80));
  Bytes.to_string bytes

let decode_point s =
  if String.length s <> 32 then None
  else begin
    let sign = Char.code s.[31] land 0x80 <> 0 in
    let y_bytes = Bytes.of_string s in
    Bytes.set y_bytes 31 (Char.chr (Char.code s.[31] land 0x7F));
    let y = Nat.of_bytes_le (Bytes.to_string y_bytes) in
    match recover_x y sign with
    | None -> None
    | Some x -> Some { x; y; z = Nat.one; t = Fe.mul x y }
  end

(* Base point: y = 4/5 mod p, even x. *)
let base_point =
  let y = Fe.mul (Nat.of_int 4) (Fe.inv (Nat.of_int 5)) in
  match recover_x y false with
  | Some x -> { x; y; z = Nat.one; t = Fe.mul x y }
  | None -> assert false

(* ---- EdDSA ---- *)

let clamp h =
  let b = Bytes.of_string (String.sub h 0 32) in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land 0xF8));
  Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) land 0x7F lor 0x40));
  Nat.of_bytes_le (Bytes.to_string b)

let expand seed =
  if String.length seed <> 32 then invalid_arg "Ed25519: seed must be 32 bytes";
  let h = Sha512.digest seed in
  (clamp h, String.sub h 32 32)

let public_of_secret seed =
  let a, _prefix = expand seed in
  encode_point (scalar_mult a base_point)

let keypair ~seed = (seed, public_of_secret seed)

let reduce_scalar h = Nat.rem (Nat.of_bytes_le h) group_order

let sign seed msg =
  let a, prefix = expand seed in
  let public = encode_point (scalar_mult a base_point) in
  let r = reduce_scalar (Sha512.digest_list [ prefix; msg ]) in
  let r_enc = encode_point (scalar_mult r base_point) in
  let k = reduce_scalar (Sha512.digest_list [ r_enc; public; msg ]) in
  let s = Nat.rem (Nat.add r (Nat.mul k a)) group_order in
  r_enc ^ Nat.to_bytes_le s ~len:32

let verify ~public ~msg ~signature =
  if String.length signature <> 64 then false
  else
    match (decode_point public, decode_point (String.sub signature 0 32)) with
    | None, _ | _, None -> false
    | Some a, Some r ->
        let s = Nat.of_bytes_le (String.sub signature 32 32) in
        if Nat.compare s group_order >= 0 then false
        else begin
          let k =
            reduce_scalar
              (Sha512.digest_list [ String.sub signature 0 32; public; msg ])
          in
          let lhs = scalar_mult s base_point in
          let rhs = point_add r (scalar_mult k a) in
          point_equal lhs rhs
        end
