(** SHA-256 (FIPS 180-4), implemented from scratch for the sealed build
    environment.  Digests are 32-byte binary strings. *)

type ctx
(** Incremental hashing context (mutable). *)

val init : unit -> ctx
val update : ctx -> string -> unit
val final : ctx -> string
(** [final ctx] returns the 32-byte digest.  The context must not be used
    afterwards. *)

val digest : string -> string
(** One-shot hash. *)

val digest_list : string list -> string
(** Hash of the concatenation, without materializing it. *)

val hex : string -> string
(** [hex msg] is the lowercase hex digest of [msg]. *)

val digest_size : int
(** 32. *)
