(** Fast simulated signatures for large in-process network simulations.

    The scheme is NOT a real public-key signature: [sign] is an
    HMAC-SHA256 under the secret seed, and [verify] looks the seed up in a
    process-global registry populated by [keypair].  Inside a single-process
    simulation this preserves exactly what the protocol relies on —
    unforgeability by other simulated nodes that only see public keys and
    signed messages through the simulator — at a tiny fraction of Ed25519's
    cost.  Signature and key sizes match Ed25519 (64 and 32 bytes) so that
    measured message sizes are faithful. *)

include Sig_intf.SCHEME with type secret = string

val reset : unit -> unit
(** Clear the key registry (between independent simulations/tests). *)
