(** Common interface implemented by the real ({!Ed25519}) and simulated
    ({!Sim_sig}) signature schemes, so that validators can be instantiated
    with either. *)

module type SCHEME = sig
  val name : string

  type secret

  val keypair : seed:string -> secret * string
  (** [keypair ~seed] derives a deterministic key pair from a 32-byte seed.
      The public key is a 32-byte binary string. *)

  val sign : secret -> string -> string
  (** Detached signature over a message. *)

  val verify : public:string -> msg:string -> signature:string -> bool
end
