(* Little-endian limbs in base 2^26.  The base is chosen so that a two-limb
   value (2^52) and the products appearing in Knuth's division algorithm fit
   comfortably in OCaml's 63-bit native int. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array
(* Invariant: no leading zero limbs; zero is [||]. *)

let zero = [||]
let is_zero n = Array.length n = 0

(* Strip leading zero limbs of [a], viewing only the first [len] limbs. *)
let normalize a len =
  let len = ref (min len (Array.length a)) in
  while !len > 0 && a.(!len - 1) = 0 do
    decr len
  done;
  Array.sub a 0 !len

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n land mask) :: limbs (n lsr limb_bits) in
  Array.of_list (limbs n)

let one = of_int 1
let two = of_int 2

let to_int n =
  let r = ref 0 in
  for i = Array.length n - 1 downto 0 do
    if !r > (max_int - n.(i)) lsr limb_bits then invalid_arg "Nat.to_int: overflow";
    r := (!r lsl limb_bits) lor n.(i)
  done;
  !r

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  normalize r lr

let sub a b =
  let la = Array.length a and lb = Array.length b in
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r la

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let p = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- p land mask;
        carry := p lsr limb_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize r (la + lb)
  end

let bit_length n =
  let l = Array.length n in
  if l = 0 then 0
  else
    let top = n.(l - 1) in
    let rec width k = if top lsr k = 0 then k else width (k + 1) in
    ((l - 1) * limb_bits) + width 0

let testbit n i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length n && (n.(limb) lsr off) land 1 = 1

let shift_left n s =
  if is_zero n || s = 0 then n
  else begin
    let limbs = s / limb_bits and bits = s mod limb_bits in
    let la = Array.length n in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = n.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize r (la + limbs + 1)
  end

let shift_right n s =
  if is_zero n || s = 0 then n
  else begin
    let limbs = s / limb_bits and bits = s mod limb_bits in
    let la = Array.length n in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = n.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < la then (n.(i + limbs + 1) lsl (limb_bits - bits)) land mask else 0 in
        r.(i) <- if bits = 0 then n.(i + limbs) else lo lor hi
      done;
      normalize r lr
    end
  end

(* Division by a single limb. *)
let divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q la, of_int !r)

(* Knuth TAOCP vol. 2, algorithm 4.3.1 D. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then divmod_limb a b.(0)
  else begin
    (* Normalize: shift so that the top limb of the divisor has its high bit
       set, which bounds the per-digit quotient estimate error by 2. *)
    let shift =
      let top = b.(Array.length b - 1) in
      let rec go k = if top lsl k land (base lsr 1) <> 0 then k else go (k + 1) in
      go 0
    in
    let v = shift_left b shift in
    let u0 = shift_left a shift in
    let n = Array.length v in
    let m = Array.length u0 - n in
    let u = Array.make (Array.length u0 + 1) 0 in
    Array.blit u0 0 u 0 (Array.length u0);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) and vnext = v.(n - 2) in
    for j = m downto 0 do
      let num = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
      let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
      let continue = ref true in
      while !continue do
        if !qhat >= base || !qhat * vnext > (!rhat lsl limb_bits) lor u.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then continue := false
        end else continue := false
      done;
      (* Multiply and subtract. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = u.(i + j) - (p land mask) - !borrow in
        if d < 0 then begin
          u.(i + j) <- d + base;
          borrow := 1
        end else begin
          u.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* Estimate was one too large: add the divisor back. *)
        u.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !c in
          u.(i + j) <- s land mask;
          c := s lsr limb_bits
        done;
        u.(j + n) <- (u.(j + n) + !c) land mask
      end else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = shift_right (normalize u n) shift in
    (normalize q (m + 1), r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let modpow b e m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let result = ref one in
    let b = ref (rem b m) in
    for i = 0 to bit_length e - 1 do
      if testbit e i then result := rem (mul !result !b) m;
      b := rem (mul !b !b) m
    done;
    !result
  end

(* Newton iteration with a final floor adjustment; [power] is 2 or 3. *)
let iroot power n =
  if is_zero n then zero
  else begin
    let pow_p x = if power = 2 then mul x x else mul x (mul x x) in
    let pm1 = of_int (power - 1) in
    let p = of_int power in
    let x = ref (shift_left one (bit_length n / power + 1)) in
    let finished = ref false in
    while not !finished do
      (* x' = ((p-1) * x + n / x^(p-1)) / p *)
      let xp = if power = 2 then !x else mul !x !x in
      let x' = div (add (mul pm1 !x) (div n xp)) p in
      if compare x' !x >= 0 then finished := true else x := x'
    done;
    while compare (pow_p !x) n > 0 do
      x := sub !x one
    done;
    while compare (pow_p (add !x one)) n <= 0 do
      x := add !x one
    done;
    !x
  end

let isqrt n = iroot 2 n
let icbrt n = iroot 3 n

let of_bytes_be s =
  let r = ref zero in
  String.iter (fun c -> r := add (shift_left !r 8) (of_int (Char.code c))) s;
  !r

let divmod_limb_byte v =
  if is_zero v then (zero, 0)
  else
    let q, r = divmod_limb v 256 in
    (q, to_int r)

let to_bytes_be n ~len =
  if bit_length n > len * 8 then invalid_arg "Nat.to_bytes_be: does not fit";
  let b = Bytes.make len '\000' in
  let v = ref n in
  for i = len - 1 downto 0 do
    let q, r = divmod_limb_byte !v in
    Bytes.set b i (Char.chr r);
    v := q
  done;
  Bytes.to_string b

let of_bytes_le s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rev = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set rev i (Bytes.get b (n - 1 - i))
  done;
  of_bytes_be (Bytes.to_string rev)

let to_bytes_le n ~len =
  let s = to_bytes_be n ~len in
  String.init len (fun i -> s.[len - 1 - i])

let of_hex s =
  let s = if String.length s mod 2 = 1 then "0" ^ s else s in
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Nat.of_hex"
  in
  let bytes =
    String.init (String.length s / 2) (fun i ->
        Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))
  in
  of_bytes_be bytes

let to_hex n =
  let len = max 1 ((bit_length n + 7) / 8) in
  let s = to_bytes_be n ~len in
  let buf = Buffer.create (2 * len) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let to_string n =
  if is_zero n then "0"
  else begin
    let buf = Buffer.create 32 in
    let v = ref n in
    while not (is_zero !v) do
      let q, r = divmod_limb !v 10 in
      Buffer.add_char buf (Char.chr (Char.code '0' + to_int r));
      v := q
    done;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let pp fmt n = Format.pp_print_string fmt (to_string n)
