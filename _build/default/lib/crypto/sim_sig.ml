let name = "sim"

type secret = string

let registry : (string, string) Hashtbl.t = Hashtbl.create 64
let reset () = Hashtbl.reset registry

let public_of_seed seed = Sha256.digest_list [ "sim-sig-public:"; seed ]

let keypair ~seed =
  if String.length seed <> 32 then invalid_arg "Sim_sig: seed must be 32 bytes";
  let public = public_of_seed seed in
  Hashtbl.replace registry public seed;
  (seed, public)

let raw_sign seed msg = Hmac.sha256 ~key:seed msg

(* Pad to 64 bytes so wire sizes match Ed25519. *)
let sign seed msg = raw_sign seed msg ^ String.make 32 '\000'

let verify ~public ~msg ~signature =
  String.length signature = 64
  &&
  match Hashtbl.find_opt registry public with
  | None -> false
  | Some seed -> String.equal (String.sub signature 0 32) (raw_sign seed msg)
