(* Word arithmetic is done in native ints masked to 32 bits, which is both
   simpler and faster than boxed [Int32] on a 64-bit host. *)

let digest_size = 32
let mask32 = 0xFFFFFFFF
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

type ctx = {
  h : int array; (* 8 words of chaining state *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* bytes processed so far *)
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h = Array.copy Sha2_constants.sha256_h;
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
  }

let k = Sha2_constants.sha256_k

(* Compress one 64-byte block starting at [off] in [block]. *)
let compress ctx block off =
  let w = ctx.w in
  for t = 0 to 15 do
    let i = off + (4 * t) in
    w.(t) <-
      (Char.code (Bytes.get block i) lsl 24)
      lor (Char.code (Bytes.get block (i + 1)) lsl 16)
      lor (Char.code (Bytes.get block (i + 2)) lsl 8)
      lor Char.code (Bytes.get block (i + 3))
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
    let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask32
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(t) + w.(t)) land mask32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let update ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  (* Top up a partially filled buffer first. *)
  if ctx.buf_len > 0 then begin
    let need = 64 - ctx.buf_len in
    let take = min need len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  let block = Bytes.create 64 in
  while len - !pos >= 64 do
    Bytes.blit_string s !pos block 0 64;
    compress ctx block 0;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let final ctx =
  let bits = ctx.total * 8 in
  update ctx "\x80";
  (* Pad with zeros until 8 bytes remain in the block. *)
  let zeros = (64 + 56 - ctx.buf_len) mod 64 in
  update ctx (String.make zeros '\000');
  let len_bytes = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set len_bytes i (Char.chr ((bits lsr (8 * (7 - i))) land 0xFF))
  done;
  update ctx (Bytes.to_string len_bytes);
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xFF))
  done;
  Bytes.to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  final ctx

let digest_list parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  final ctx

let hex s = Hex.encode (digest s)
