(** Arbitrary-precision natural numbers.

    The sealed build environment has no [zarith], so the signature schemes
    and the derivation of SHA-2 round constants are built on this module.
    Numbers are immutable; all operations return fresh values. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative [int]. @raise Invalid_argument on
    negative input. *)

val to_int : t -> int
(** @raise Invalid_argument if the value exceeds [max_int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b]. @raise Invalid_argument if [a < b]. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)] with [0 <= a mod b < b].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val modpow : t -> t -> t -> t
(** [modpow base exp m] is [base{^exp} mod m]. *)

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val testbit : t -> int -> bool
(** [testbit n i] is bit [i] (little-endian) of [n]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val isqrt : t -> t
(** Integer square root: greatest [r] with [r * r <= n]. *)

val icbrt : t -> t
(** Integer cube root: greatest [r] with [r * r * r <= n]. *)

val of_bytes_be : string -> t
val to_bytes_be : t -> len:int -> string
(** [to_bytes_be n ~len] is the big-endian encoding padded to [len] bytes.
    @raise Invalid_argument if [n] does not fit. *)

val of_bytes_le : string -> t
val to_bytes_le : t -> len:int -> string

val of_hex : string -> t
val to_hex : t -> string

val to_string : t -> string
(** Decimal rendering. *)

val pp : Format.formatter -> t -> unit
