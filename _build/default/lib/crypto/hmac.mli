(** HMAC-SHA256 (RFC 2104), used for deterministic key/nonce derivation. *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] is the 32-byte MAC. *)

val hex : key:string -> string -> string
