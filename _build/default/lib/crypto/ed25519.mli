(** Ed25519 (RFC 8032) over edwards25519, built on {!Nat} field arithmetic.
    This is the signature scheme the production Stellar network uses for
    transaction and SCP-envelope signatures.  Matches the RFC 8032 test
    vectors (see the test suite).

    This implementation favours clarity over speed and is not constant-time;
    it is intended for the benchmarks and small networks, while large
    simulations use {!Sim_sig}. *)

include Sig_intf.SCHEME with type secret = string
(** [secret] is the 32-byte seed. *)

val public_of_secret : string -> string
(** [public_of_secret seed] is the 32-byte public key. *)
