(** SHA-512 (FIPS 180-4); needed by the Ed25519 signature scheme.
    Digests are 64-byte binary strings. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val final : ctx -> string

val digest : string -> string
val digest_list : string list -> string
val hex : string -> string

val digest_size : int
(** 64. *)
