(* The SHA-2 round constants are the fractional parts of the square roots
   (initial state) and cube roots (round keys) of the first primes.  Rather
   than transcribe 100+ magic numbers, we derive them with exact integer
   arithmetic; the NIST test vectors in the test suite validate the result. *)

let first_primes n =
  let rec go primes candidate =
    if List.length primes = n then List.rev primes
    else
      let is_prime = List.for_all (fun p -> candidate mod p <> 0) primes in
      if is_prime && candidate > 1 then go (candidate :: primes) (candidate + 1)
      else go primes (candidate + 1)
  in
  go [] 2

(* floor(root(p) * 2^bits) mod 2^bits, i.e. the top [bits] bits of the
   fractional part of the real root. *)
let frac_root ~cube ~bits p =
  let n = Nat.of_int p in
  let scaled =
    if cube then Nat.icbrt (Nat.shift_left n (3 * bits))
    else Nat.isqrt (Nat.shift_left n (2 * bits))
  in
  Nat.rem scaled (Nat.shift_left Nat.one bits)

let nat_to_int64 n =
  let bytes = Nat.to_bytes_be n ~len:8 in
  let r = ref 0L in
  String.iter (fun c -> r := Int64.logor (Int64.shift_left !r 8) (Int64.of_int (Char.code c))) bytes;
  !r

let sha256_h : int array =
  first_primes 8
  |> List.map (fun p -> Nat.to_int (frac_root ~cube:false ~bits:32 p))
  |> Array.of_list

let sha256_k : int array =
  first_primes 64
  |> List.map (fun p -> Nat.to_int (frac_root ~cube:true ~bits:32 p))
  |> Array.of_list

let sha512_h : int64 array =
  first_primes 8
  |> List.map (fun p -> nat_to_int64 (frac_root ~cube:false ~bits:64 p))
  |> Array.of_list

let sha512_k : int64 array =
  first_primes 80
  |> List.map (fun p -> nat_to_int64 (frac_root ~cube:true ~bits:64 p))
  |> Array.of_list
