lib/crypto/sim_sig.ml: Hashtbl Hmac Sha256 String
