lib/crypto/hex.mli:
