lib/crypto/nat.ml: Array Buffer Bytes Char Format Printf Stdlib String
