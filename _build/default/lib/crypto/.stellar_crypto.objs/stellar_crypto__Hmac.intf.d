lib/crypto/hmac.mli:
