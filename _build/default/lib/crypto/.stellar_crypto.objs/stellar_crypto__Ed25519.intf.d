lib/crypto/ed25519.mli: Sig_intf
