lib/crypto/sha2_constants.ml: Array Char Int64 List Nat String
