lib/crypto/sim_sig.mli: Sig_intf
