lib/crypto/ed25519.ml: Bytes Char Nat Sha512 String
