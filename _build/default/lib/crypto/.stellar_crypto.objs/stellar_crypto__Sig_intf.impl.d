lib/crypto/sig_intf.ml:
