let digest_size = 64

let rotr x n = Int64.logor (Int64.shift_right_logical x n) (Int64.shift_left x (64 - n))

type ctx = {
  h : int64 array;
  buf : Bytes.t; (* 128-byte block buffer *)
  mutable buf_len : int;
  mutable total : int;
  w : int64 array;
}

let init () =
  {
    h = Array.copy Sha2_constants.sha512_h;
    buf = Bytes.create 128;
    buf_len = 0;
    total = 0;
    w = Array.make 80 0L;
  }

let k = Sha2_constants.sha512_k

let get64 block i =
  let b j = Int64.of_int (Char.code (Bytes.get block (i + j))) in
  let ( <| ) x s = Int64.shift_left x s in
  Int64.logor (b 0 <| 56)
    (Int64.logor (b 1 <| 48)
       (Int64.logor (b 2 <| 40)
          (Int64.logor (b 3 <| 32)
             (Int64.logor (b 4 <| 24)
                (Int64.logor (b 5 <| 16) (Int64.logor (b 6 <| 8) (b 7)))))))

let compress ctx block =
  let open Int64 in
  let w = ctx.w in
  for t = 0 to 15 do
    w.(t) <- get64 block (8 * t)
  done;
  for t = 16 to 79 do
    let x = w.(t - 15) in
    let s0 = logxor (rotr x 1) (logxor (rotr x 8) (shift_right_logical x 7)) in
    let y = w.(t - 2) in
    let s1 = logxor (rotr y 19) (logxor (rotr y 61) (shift_right_logical y 6)) in
    w.(t) <- add w.(t - 16) (add s0 (add w.(t - 7) s1))
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 79 do
    let s1 = logxor (rotr !e 14) (logxor (rotr !e 18) (rotr !e 41)) in
    let ch = logxor (logand !e !f) (logand (lognot !e) !g) in
    let t1 = add !hh (add s1 (add ch (add k.(t) w.(t)))) in
    let s0 = logxor (rotr !a 28) (logxor (rotr !a 34) (rotr !a 39)) in
    let maj = logxor (logand !a !b) (logxor (logand !a !c) (logand !b !c)) in
    let t2 = add s0 maj in
    hh := !g;
    g := !f;
    f := !e;
    e := add !d t1;
    d := !c;
    c := !b;
    b := !a;
    a := add t1 t2
  done;
  h.(0) <- add h.(0) !a;
  h.(1) <- add h.(1) !b;
  h.(2) <- add h.(2) !c;
  h.(3) <- add h.(3) !d;
  h.(4) <- add h.(4) !e;
  h.(5) <- add h.(5) !f;
  h.(6) <- add h.(6) !g;
  h.(7) <- add h.(7) !hh

let update ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  if ctx.buf_len > 0 then begin
    let take = min (128 - ctx.buf_len) len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 128 then begin
      compress ctx ctx.buf;
      ctx.buf_len <- 0
    end
  end;
  let block = Bytes.create 128 in
  while len - !pos >= 128 do
    Bytes.blit_string s !pos block 0 128;
    compress ctx block;
    pos := !pos + 128
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let final ctx =
  let bits = ctx.total * 8 in
  update ctx "\x80";
  let zeros = (128 + 112 - ctx.buf_len) mod 128 in
  update ctx (String.make zeros '\000');
  (* 128-bit length field; the high 64 bits are always zero here since
     [total] is a native int. *)
  let len_bytes = Bytes.make 16 '\000' in
  for i = 0 to 7 do
    Bytes.set len_bytes (8 + i) (Char.chr ((bits lsr (8 * (7 - i))) land 0xFF))
  done;
  update ctx (Bytes.to_string len_bytes);
  assert (ctx.buf_len = 0);
  let out = Bytes.create 64 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    for j = 0 to 7 do
      Bytes.set out ((8 * i) + j)
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - j))) 0xFFL)))
    done
  done;
  Bytes.to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  final ctx

let digest_list parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  final ctx

let hex s = Hex.encode (digest s)
