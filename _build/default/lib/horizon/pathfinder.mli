(** Payment-path finding — the feature the paper singles out as implemented
    "entirely in horizon" (§5.4): given a destination amount, search the
    order-book graph for conversion paths and estimate the cheapest source
    cost, so clients can construct PathPayment operations with a tight
    [send_max]. *)

type route = {
  send_asset : Stellar_ledger.Asset.t;
  send_amount : int;  (** estimated cost at current books *)
  path : Stellar_ledger.Asset.t list;  (** intermediate assets for the PathPayment *)
  hops : int;
}

val find :
  Stellar_ledger.State.t ->
  source_assets:Stellar_ledger.Asset.t list ->
  dest_asset:Stellar_ledger.Asset.t ->
  dest_amount:int ->
  ?max_hops:int ->
  unit ->
  route list
(** Routes sorted by estimated cost, cheapest first.  [max_hops] defaults to
    5, the PathPayment limit. *)

val estimate_cost :
  Stellar_ledger.State.t ->
  give:Stellar_ledger.Asset.t ->
  get:Stellar_ledger.Asset.t ->
  amount:int ->
  int option
(** Cost of buying [amount] of [get] with [give] at current books, without
    mutating state; [None] if the book is too thin. *)
