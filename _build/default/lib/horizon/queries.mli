(** Read-only query API over a validator's ledger and archive — the rest of
    horizon's role in Fig. 5: clients learn about accounts, books and
    historical transactions here rather than by touching stellar-core. *)

type account_view = {
  id : Stellar_ledger.Asset.account_id;
  native_balance : int;
  seq_num : int;
  sub_entries : int;
  balances : (Stellar_ledger.Asset.t * int * int) list;  (** asset, balance, limit *)
  offer_ids : int list;
  signers : (string * int) list;
  home_domain : string;
}

val account : Stellar_ledger.State.t -> Stellar_ledger.Asset.account_id -> account_view option

type book_level = { price : Stellar_ledger.Price.t; amount : int }

type book_view = { bids : book_level list; asks : book_level list }

val order_book :
  Stellar_ledger.State.t ->
  base:Stellar_ledger.Asset.t ->
  quote:Stellar_ledger.Asset.t ->
  book_view
(** Asks: offers selling [base] for [quote]; bids: the opposite side,
    both aggregated by price level, best first. *)

val transaction :
  Stellar_archive.Archive.t -> string -> (int * Stellar_ledger.Tx.signed) option
(** Historical lookup by hash: "there needs to be some place one can look up
    a transaction from two years ago" (§5.4). *)

val pp_account : Format.formatter -> account_view -> unit
