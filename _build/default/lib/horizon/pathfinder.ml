open Stellar_ledger

type route = {
  send_asset : Asset.t;
  send_amount : int;
  path : Asset.t list;
  hops : int;
}

let estimate_cost state ~give ~get ~amount =
  if Asset.equal give get then Some amount
  else
    match Exchange.cross state ~give_asset:give ~get_asset:get ~want_get:amount () with
    | Ok outcome when outcome.Exchange.got >= amount -> Some outcome.Exchange.paid
    | Ok _ | Error _ -> None

(* Assets with a resting book selling [get]: the possible previous hops. *)
let feeders state ~get =
  State.all_entries state
  |> List.filter_map (fun e ->
         match e with
         | Entry.Offer_entry o when Asset.equal o.Entry.selling get -> Some o.Entry.buying
         | _ -> None)
  |> List.sort_uniq Asset.compare

let find state ~source_assets ~dest_asset ~dest_amount ?(max_hops = 5) () =
  (* Backward breadth-first search from the destination asset; each frontier
     entry knows how much of [asset] must be acquired and the chain of
     intermediate assets already planned after it. *)
  let results = ref [] in
  let record asset need inner hops =
    if List.exists (Asset.equal asset) source_assets then
      results := { send_asset = asset; send_amount = need; path = inner; hops } :: !results
  in
  let rec explore frontier hops =
    if hops < max_hops then begin
      let next =
        List.concat_map
          (fun (asset, need, inner, seen) ->
            List.filter_map
              (fun prev ->
                if List.exists (Asset.equal prev) seen then None
                else
                  match estimate_cost state ~give:prev ~get:asset ~amount:need with
                  | Some cost ->
                      let inner' = if Asset.equal asset dest_asset then inner else asset :: inner in
                      record prev cost inner' (hops + 1);
                      Some (prev, cost, inner', prev :: seen)
                  | None -> None)
              (feeders state ~get:asset))
          frontier
      in
      if next <> [] then explore next (hops + 1)
    end
  in
  (* direct delivery (same asset, no conversion) *)
  record dest_asset dest_amount [] 0;
  explore [ (dest_asset, dest_amount, [], [ dest_asset ]) ] 0;
  List.sort
    (fun a b ->
      let c = Int.compare a.send_amount b.send_amount in
      if c <> 0 then c else Int.compare a.hops b.hops)
    !results
