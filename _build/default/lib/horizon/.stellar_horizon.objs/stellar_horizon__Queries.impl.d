lib/horizon/queries.ml: Asset Entry Format List Price State Stellar_archive Stellar_crypto Stellar_ledger String
