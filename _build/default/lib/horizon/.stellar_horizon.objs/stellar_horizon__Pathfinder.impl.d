lib/horizon/pathfinder.ml: Asset Entry Exchange Int List State Stellar_ledger
