lib/horizon/queries.mli: Format Stellar_archive Stellar_ledger
