lib/horizon/pathfinder.mli: Stellar_ledger
