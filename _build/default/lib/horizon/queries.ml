open Stellar_ledger

type account_view = {
  id : Asset.account_id;
  native_balance : int;
  seq_num : int;
  sub_entries : int;
  balances : (Asset.t * int * int) list;
  offer_ids : int list;
  signers : (string * int) list;
  home_domain : string;
}

let account state id =
  match State.account state id with
  | None -> None
  | Some a ->
      Some
        {
          id;
          native_balance = a.Entry.balance;
          seq_num = a.Entry.seq_num;
          sub_entries = a.Entry.num_sub_entries;
          balances =
            State.trustlines_of state id
            |> List.map (fun tl -> (tl.Entry.asset, tl.Entry.tl_balance, tl.Entry.limit));
          offer_ids = State.offers_of state id |> List.map (fun o -> o.Entry.offer_id);
          signers = List.map (fun s -> (s.Entry.key, s.Entry.weight)) a.Entry.signers;
          home_domain = a.Entry.home_domain;
        }

type book_level = { price : Price.t; amount : int }

type book_view = { bids : book_level list; asks : book_level list }

let aggregate offers =
  let rec go = function
    | [] -> []
    | (o : Entry.offer) :: rest ->
        let same, others =
          List.partition (fun (x : Entry.offer) -> Price.equal x.Entry.price o.Entry.price) rest
        in
        {
          price = o.Entry.price;
          amount = List.fold_left (fun acc (x : Entry.offer) -> acc + x.Entry.amount) o.Entry.amount same;
        }
        :: go others
  in
  go offers

let order_book state ~base ~quote =
  {
    asks = aggregate (State.best_offers state ~selling:base ~buying:quote);
    bids = aggregate (State.best_offers state ~selling:quote ~buying:base);
  }

let transaction archive hash = Stellar_archive.Archive.find_tx archive hash

let pp_account fmt v =
  Format.fprintf fmt "@[<v>account %s@,  XLM: %a  seq: %d  sub-entries: %d@,%a@]"
    (Stellar_crypto.Hex.encode (String.sub v.id 0 4))
    Asset.pp_amount v.native_balance v.seq_num v.sub_entries
    (Format.pp_print_list (fun f (a, b, _) ->
         Format.fprintf f "  %a: %a" Asset.pp a Asset.pp_amount b))
    v.balances
