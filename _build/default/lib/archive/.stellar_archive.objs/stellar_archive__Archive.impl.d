lib/archive/archive.ml: Apply Hashtbl Header List Option Printf Result State Stellar_bucket Stellar_herder Stellar_ledger String Tx
