lib/archive/archive.mli: Stellar_bucket Stellar_herder Stellar_ledger
