(** Criticality detection (§6.2.2): flag organizations whose worst-case
    misconfiguration would leave the network one step from divergence,
    before it happens. *)

type org = { name : string; validators : Network_config.node_id list }

val check_org : Network_config.t -> org -> Intersection.result
(** Re-run the intersection checker with the org's nodes simulated as
    worst-case misconfigured (modelled as byzantine: they will complete any
    candidate quorum's slices). *)

val critical_orgs : Network_config.t -> org list -> org list
(** Orgs whose misconfiguration alone admits disjoint quorums among the
    remaining nodes.  An empty result means the configuration keeps two
    layers of safety margin. *)
