type org = { name : string; validators : Network_config.node_id list }

let check_org config org = Intersection.check ~byzantine:org.validators config

let critical_orgs config orgs =
  List.filter
    (fun org ->
      match check_org config org with
      | Intersection.Disjoint _ -> true
      | Intersection.Intersecting | Intersection.No_quorum -> false)
    orgs
