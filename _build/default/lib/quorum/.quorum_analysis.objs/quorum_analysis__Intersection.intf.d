lib/quorum/intersection.mli: Network_config
