lib/quorum/criticality.mli: Intersection Network_config
