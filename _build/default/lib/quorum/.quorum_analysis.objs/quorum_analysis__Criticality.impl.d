lib/quorum/criticality.ml: Intersection List Network_config
