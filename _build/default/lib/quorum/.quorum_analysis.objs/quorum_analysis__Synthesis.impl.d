lib/quorum/synthesis.ml: Format List Network_config Printf Scp
