lib/quorum/intersection.ml: List Network_config Scp Set String
