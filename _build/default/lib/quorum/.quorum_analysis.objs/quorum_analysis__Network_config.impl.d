lib/quorum/network_config.ml: List Map Scp Set String
