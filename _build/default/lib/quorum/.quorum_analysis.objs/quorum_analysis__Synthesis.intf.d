lib/quorum/synthesis.mli: Format Network_config Scp
