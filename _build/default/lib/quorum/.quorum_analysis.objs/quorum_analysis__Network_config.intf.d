lib/quorum/network_config.mli: Scp
