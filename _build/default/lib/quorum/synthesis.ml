type quality = Critical | High | Medium | Low

type org = {
  name : string;
  quality : quality;
  validators : Network_config.node_id list;
  has_archive : bool;
}

let org ?(quality = Medium) ?(has_archive = true) ~name validators =
  { name; quality; validators; has_archive }

let org_threshold n = Scp.Quorum_set.percent_threshold 51 n

(* One 51%-threshold inner set per organization. *)
let org_set o =
  if o.validators = [] then invalid_arg "Synthesis: org with no validators";
  Scp.Quorum_set.make ~threshold:(org_threshold (List.length o.validators)) o.validators

let group_set ~pct entries_orgs inner =
  let inner_sets = List.map org_set entries_orgs @ inner in
  let n = List.length inner_sets in
  Scp.Quorum_set.make ~threshold:(Scp.Quorum_set.percent_threshold pct n) ~inner:inner_sets []

let quorum_set orgs =
  if orgs = [] then invalid_arg "Synthesis.quorum_set: no orgs";
  List.iter
    (fun o ->
      if (o.quality = Critical || o.quality = High) && not o.has_archive then
        invalid_arg
          (Printf.sprintf "Synthesis: org %s is high-quality but publishes no archive" o.name))
    orgs;
  let by q = List.filter (fun o -> o.quality = q) orgs in
  let low = by Low and medium = by Medium and high = by High and critical = by Critical in
  (* Build bottom-up: each tier's group becomes one entry of the tier
     above (Fig. 6). *)
  let lift pct tier below =
    match (tier, below) with
    | [], None -> None
    | [], (Some _ as b) -> b
    | orgs, None -> Some (group_set ~pct orgs [])
    | orgs, Some b -> Some (group_set ~pct orgs [ b ])
  in
  let g = lift 67 low None in
  let g = lift 67 medium g in
  let g = lift 67 high g in
  let g = lift 100 critical g in
  match g with Some q -> q | None -> invalid_arg "Synthesis.quorum_set: no orgs"

let network_config orgs =
  let q = quorum_set orgs in
  Network_config.of_assoc
    (List.concat_map (fun o -> List.map (fun v -> (v, q)) o.validators) orgs)

let pp_quality fmt q =
  Format.pp_print_string fmt
    (match q with Critical -> "critical" | High -> "high" | Medium -> "medium" | Low -> "low")
