(** A network's collective configuration: the quorum set declared by every
    node in a validator's transitive closure (§6.2), as gathered by the
    misconfiguration detector. *)

type node_id = Scp.Quorum_set.node_id

type t

val of_assoc : (node_id * Scp.Quorum_set.t) list -> t
val nodes : t -> node_id list
val size : t -> int
val qset : t -> node_id -> Scp.Quorum_set.t option
val override : t -> node_id -> Scp.Quorum_set.t -> t

val transitive_closure : t -> node_id -> node_id list
(** Nodes reachable from a starting node through quorum-set references. *)

val is_quorum : t -> node_id list -> bool
(** Is the given set a quorum: non-empty and containing a slice of every
    member?  Nodes without a known quorum set cannot be part of a quorum. *)

val greatest_quorum : t -> node_id list -> node_id list
(** The largest quorum contained in the given set ([\[\]] if none): the
    fixpoint of discarding unsatisfied members. *)
