module S = Set.Make (String)

type result =
  | Intersecting
  | Disjoint of Network_config.node_id list * Network_config.node_id list
  | No_quorum

let explored = ref 0
let stats () = !explored

(* Quorum predicates "modulo" a byzantine set: byzantine nodes complete
   anyone's slice for free but never count as quorum members themselves. *)
let slice_ok config byz set n =
  match Network_config.qset config n with
  | Some q -> Scp.Quorum_set.is_quorum_slice q (fun v -> S.mem v set || S.mem v byz)
  | None -> false

let greatest_quorum config byz set =
  let rec shrink set =
    let set' = S.filter (slice_ok config byz set) set in
    if S.cardinal set' = S.cardinal set then set else shrink set'
  in
  shrink set

let is_quorum config byz set = (not (S.is_empty set)) && S.equal (greatest_quorum config byz set) set

(* Two disjoint quorums exist iff some quorum's complement still contains a
   quorum.  The search fixes one node [v0] per outer round and enumerates
   only quorums containing [v0] (pairs avoiding [v0] entirely are found in a
   later round on the reduced universe, as in stellar-core's checker), with
   two prunes: a branch dies when its committed nodes can no longer be
   completed into a quorum, or when the complement of the committed nodes
   can no longer contain the partner quorum. *)
let check ?(byzantine = []) config =
  explored := 0;
  let byz = S.of_list byzantine in
  let all = S.diff (S.of_list (Network_config.nodes config)) byz in
  if S.is_empty (greatest_quorum config byz all) then No_quorum
  else begin
    let exception Found of S.t * S.t in
    let rec outer universe =
      let top = greatest_quorum config byz universe in
      if S.is_empty top then ()
      else begin
        let v0 = S.min_elt top in
        let rec bb in_set out_set =
          incr explored;
          let avail = S.diff top out_set in
          let gq = greatest_quorum config byz avail in
          if not (S.subset in_set gq) then ()
          else begin
            (* the partner quorum must avoid every committed node *)
            let partner = greatest_quorum config byz (S.diff top in_set) in
            if S.is_empty partner then ()
            else if is_quorum config byz in_set then raise (Found (in_set, partner))
            else begin
              let candidates = S.diff gq in_set in
              if not (S.is_empty candidates) then begin
                (* branch on a node referenced by the committed set's quorum
                   sets; they must eventually be satisfied from within *)
                let referenced =
                  S.fold
                    (fun n acc ->
                      match Network_config.qset config n with
                      | Some q ->
                          List.fold_left
                            (fun acc v -> if S.mem v candidates then S.add v acc else acc)
                            acc
                            (Scp.Quorum_set.all_validators q)
                      | None -> acc)
                    in_set S.empty
                in
                let pick =
                  match S.min_elt_opt referenced with
                  | Some v -> v
                  | None -> S.min_elt candidates
                in
                bb (S.add pick in_set) out_set;
                bb in_set (S.add pick out_set)
              end
            end
          end
        in
        bb (S.singleton v0) S.empty;
        outer (S.remove v0 universe)
      end
    in
    try
      outer all;
      Intersecting
    with Found (a, b) -> Disjoint (S.elements a, S.elements b)
  end
