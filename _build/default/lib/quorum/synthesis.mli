(** Quality-tier configuration synthesis (§6.1, Fig. 6).

    Instead of hand-writing nested quorum sets — which §6 reports was easy
    to get dangerously wrong — operators label each organization with a
    quality tier; the synthesizer builds the nested quorum set: every
    organization becomes a 51%-threshold inner set of its validators,
    organizations are grouped by quality (67% threshold, 100% for the
    critical group), and each group appears as a single entry in the
    next-higher-quality group. *)

type quality = Critical | High | Medium | Low

type org = {
  name : string;
  quality : quality;
  validators : Network_config.node_id list;
  has_archive : bool;  (** orgs at [High] and above must publish archives *)
}

val org :
  ?quality:quality -> ?has_archive:bool -> name:string -> Network_config.node_id list -> org

val quorum_set : org list -> Scp.Quorum_set.t
(** The synthesized quorum set shared by every validator.
    @raise Invalid_argument if no org is given or archive requirements are
    violated. *)

val network_config : org list -> Network_config.t
(** The collective configuration in which every listed validator declares
    the synthesized quorum set — input to {!Intersection.check}. *)

val org_threshold : int -> int
(** 51% of n, stellar-core rounding. *)

val pp_quality : Format.formatter -> quality -> unit
