type node_id = Scp.Quorum_set.node_id

module M = Map.Make (String)
module S = Set.Make (String)

type t = Scp.Quorum_set.t M.t

let of_assoc l = M.of_seq (List.to_seq l)
let nodes t = List.map fst (M.bindings t)
let size t = M.cardinal t
let qset t n = M.find_opt n t
let override t n q = M.add n q t

let transitive_closure t start =
  let rec go visited = function
    | [] -> visited
    | n :: rest ->
        if S.mem n visited then go visited rest
        else
          let visited = S.add n visited in
          let next =
            match M.find_opt n t with
            | Some q -> Scp.Quorum_set.all_validators q
            | None -> []
          in
          go visited (next @ rest)
  in
  S.elements (go S.empty [ start ])

let is_quorum t set =
  set <> []
  && List.for_all
       (fun n ->
         match M.find_opt n t with
         | Some q -> Scp.Quorum_set.is_quorum_slice q (fun v -> List.mem v set)
         | None -> false)
       set

let greatest_quorum t set =
  let rec shrink set =
    let in_set = S.of_list set in
    let keep n =
      match M.find_opt n t with
      | Some q -> Scp.Quorum_set.is_quorum_slice q (fun v -> S.mem v in_set)
      | None -> false
    in
    let set' = List.filter keep set in
    if List.length set' = List.length set then set else shrink set'
  in
  shrink set
