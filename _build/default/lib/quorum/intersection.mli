(** Quorum-intersection checking (§6.2.1).

    Deciding whether a configuration admits two disjoint quorums is
    co-NP-hard (Lachowski 2019); this checker uses the pruning that makes
    typical instances fast: every quorum lives inside the greatest quorum of
    the node universe, minimal quorums induce strongly-connected subgraphs,
    and a branch-and-bound over candidate quorums prunes any branch whose
    available nodes no longer contain a quorum.

    The optional [byzantine] set models nodes under adversary control (or
    worst-case misconfiguration, §6.2.2): they are assumed to help complete
    anyone's slices, so a set [S] of honest nodes counts as a quorum when
    every member has a slice inside [S ∪ byzantine]. *)

type result =
  | Intersecting  (** every two quorums share at least one honest node *)
  | Disjoint of Network_config.node_id list * Network_config.node_id list
      (** witness: two quorums with no honest node in common *)
  | No_quorum  (** the configuration contains no quorum at all *)

val check : ?byzantine:Network_config.node_id list -> Network_config.t -> result

val stats : unit -> int
(** Branch-and-bound nodes explored by the last {!check} (for the §6.2.1
    performance experiment). *)
