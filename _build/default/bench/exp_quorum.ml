(* tab-qic: quorum-intersection checking performance (§6.2.1).

   Paper: the transitive closures seen in production are 20-30 nodes and
   check "in a matter of seconds on a single CPU" with Lachowski's
   heuristics, despite the problem being co-NP-hard. *)

let run () =
  Common.section "tab-qic: quorum intersection & criticality check cost"
    "§6.2.1: 20-30 node closures check in seconds on one CPU";
  let org_counts = if !Common.full then [ 5; 7; 9; 11 ] else [ 5; 7; 9 ] in
  Common.row "%6s | %6s | %12s | %12s | %14s | %10s@." "orgs" "nodes" "result"
    "check (s)" "bb explored" "crit (s)";
  Common.row "-------+--------+--------------+--------------+----------------+-----------@.";
  List.iter
    (fun n_orgs ->
      let orgs =
        List.init n_orgs (fun oi ->
            Quorum_analysis.Synthesis.org
              ~quality:
                (if oi < (n_orgs + 1) / 2 then Quorum_analysis.Synthesis.Critical
                 else Quorum_analysis.Synthesis.High)
              ~name:(Printf.sprintf "org-%d" oi)
              (List.init 3 (fun vi ->
                   Stellar_crypto.Sha256.digest (Printf.sprintf "qic-%d-%d" oi vi))))
      in
      let config = Quorum_analysis.Synthesis.network_config orgs in
      let result, dt = Common.time (fun () -> Quorum_analysis.Intersection.check config) in
      let explored = Quorum_analysis.Intersection.stats () in
      let crit_orgs =
        List.map
          (fun o ->
            {
              Quorum_analysis.Criticality.name = o.Quorum_analysis.Synthesis.name;
              validators = o.Quorum_analysis.Synthesis.validators;
            })
          orgs
      in
      let crit, crit_dt =
        Common.time (fun () -> Quorum_analysis.Criticality.critical_orgs config crit_orgs)
      in
      Common.row "%6d | %6d | %12s | %12.3f | %14d | %10.3f@." n_orgs
        (Quorum_analysis.Network_config.size config)
        (match result with
        | Quorum_analysis.Intersection.Intersecting -> "intersects"
        | Quorum_analysis.Intersection.Disjoint _ -> "DISJOINT"
        | Quorum_analysis.Intersection.No_quorum -> "no quorum")
        dt explored crit_dt;
      ignore crit)
    org_counts;
  Common.row "shape check: seconds, not hours, at production closure sizes@."
