(* tab-messages: SCP message counts and consensus latency on a
   production-shaped network (§7.2).

   Paper: ~7 logical SCP messages per ledger (vote/accept nominate, accept/
   confirm prepare, accept/confirm commit + externalize, with the last two
   combined), 1.3 msgs/s emitted, consensus mean 1061 ms / p99 2252 ms,
   ledger update mean 46 ms / p99 142 ms. *)

let run () =
  Common.section "tab-messages: messages per ledger & production latencies"
    "§7.2: 6-7 logical msgs/ledger; consensus 1061ms mean, 2252ms p99";
  let duration = if !Common.full then 3600.0 else 400.0 in
  let spec, _ = Stellar_node.Topology.tiered ~leaves:5 () in
  let r =
    Common.run_scenario ~spec ~accounts:500 ~rate:4.5 ~duration
      ~latency:Stellar_sim.Latency.wide_area ()
  in
  let open Stellar_node in
  Common.row "ledgers closed         : %d over %.0f virtual seconds@." r.Scenario.ledgers_closed duration;
  Common.row "SCP envelopes/ledger   : %.1f   (paper: 6-7)@." r.Scenario.envelopes_per_ledger;
  Common.row "msgs/s emitted (node 0): %.1f   (paper: 1.3 logical + flooding)@."
    (r.Scenario.envelopes_per_ledger /. r.Scenario.close_interval.Metrics.mean);
  Common.row "consensus latency      : mean %.0fms p99 %.0fms (paper: 1061 / 2252)@."
    (Common.ms (r.Scenario.nomination.Metrics.mean +. r.Scenario.balloting.Metrics.mean))
    (Common.ms (r.Scenario.nomination.Metrics.p99 +. r.Scenario.balloting.Metrics.p99));
  Common.row "ledger update          : mean %.1fms p99 %.1fms (paper: 46 / 142 with SQL)@."
    (Common.ms r.Scenario.apply.Metrics.mean)
    (Common.ms r.Scenario.apply.Metrics.p99);
  Common.row "close interval         : %.2fs (target 5s)@." r.Scenario.close_interval.Metrics.mean;
  Common.row "diverged               : %b@." r.Scenario.diverged;
  Common.row "shape check            : msgs/ledger independent of load; latency << 5s target@."
