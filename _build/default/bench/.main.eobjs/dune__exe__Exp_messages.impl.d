bench/exp_messages.ml: Common Metrics Scenario Stellar_node Stellar_sim
