bench/exp_close.ml: Common List Metrics Scenario Stellar_node
