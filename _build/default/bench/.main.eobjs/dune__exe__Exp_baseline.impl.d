bench/exp_baseline.ml: Baseline_pbft Common Hashtbl List Metrics Printf Scenario Stellar_node Stellar_sim
