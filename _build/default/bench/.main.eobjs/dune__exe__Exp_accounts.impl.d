bench/exp_accounts.ml: Common List Metrics Scenario Stellar_node
