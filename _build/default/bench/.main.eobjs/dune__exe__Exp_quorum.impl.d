bench/exp_quorum.ml: Common List Printf Quorum_analysis Stellar_crypto
