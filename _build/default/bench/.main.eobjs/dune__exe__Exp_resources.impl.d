bench/exp_resources.ml: Common Gc List Metrics Scenario Stellar_node Stellar_sim Sys
