bench/exp_validators.ml: Common List Metrics Scenario Stellar_node
