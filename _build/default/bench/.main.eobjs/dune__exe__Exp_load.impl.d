bench/exp_load.ml: Common List Metrics Scenario Stellar_node
