bench/exp_topology.ml: Common Fun List Quorum_analysis Stellar_node
