bench/main.mli:
