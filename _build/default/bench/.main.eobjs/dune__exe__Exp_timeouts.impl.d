bench/exp_timeouts.ml: Common Metrics Scenario Stellar_node Stellar_sim
