bench/main.ml: Arg Common Exp_accounts Exp_baseline Exp_close Exp_load Exp_messages Exp_quorum Exp_resources Exp_timeouts Exp_topology Exp_validators Format List Micro Unix
