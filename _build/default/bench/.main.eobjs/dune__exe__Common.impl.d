bench/common.ml: Format Stellar_node Stellar_sim Unix
