(* fig7-topology: the production network's shape (Fig. 7, §7.2).
   The paper reports 126 active nodes, 66 participating in consensus, and a
   core of 17 de-facto tier-one validators run by 5 organizations. *)

let run () =
  Common.section "fig7-topology: quorum-slice map of a production-shaped network"
    "Fig. 7: 126 nodes, 66 validators, 17 tier-1 across 5 orgs";
  let leaves = if !Common.full then 99 else 30 in
  let spec, orgs = Stellar_node.Topology.tiered ~leaves () in
  let validators =
    List.length (List.filter spec.Stellar_node.Topology.is_validator
                   (List.init spec.Stellar_node.Topology.n_nodes Fun.id))
  in
  let tier1 =
    List.filter
      (fun o -> o.Quorum_analysis.Synthesis.quality = Quorum_analysis.Synthesis.Critical)
      orgs
  in
  let tier1_validators =
    List.fold_left
      (fun acc o -> acc + List.length o.Quorum_analysis.Synthesis.validators)
      0 tier1
  in
  let edges =
    List.fold_left
      (fun acc i -> acc + List.length (spec.Stellar_node.Topology.peers_of i))
      0
      (List.init spec.Stellar_node.Topology.n_nodes Fun.id)
  in
  (* bidirectional trust edges: both nodes reference each other's org *)
  Common.row "nodes total            : %d (paper: 126)@." spec.Stellar_node.Topology.n_nodes;
  Common.row "consensus validators   : %d (paper: 66)@." validators;
  Common.row "tier-1 validators      : %d across %d orgs (paper: 17 across 5)@."
    tier1_validators (List.length tier1);
  Common.row "overlay links          : %d directed@." edges;
  let config = Stellar_node.Topology.network_config spec in
  let result, dt = Common.time (fun () -> Quorum_analysis.Intersection.check config) in
  Common.row "quorum intersection    : %s (checked in %.2fs)@."
    (match result with
    | Quorum_analysis.Intersection.Intersecting -> "holds"
    | Quorum_analysis.Intersection.Disjoint _ -> "VIOLATED"
    | Quorum_analysis.Intersection.No_quorum -> "no quorum")
    dt;
  Common.row "shape check            : tiered core + leaf watchers, as in Fig. 7@."
