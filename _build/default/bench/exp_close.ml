(* tab-close: end-to-end close rate (§7.3 "Close rate").

   Paper: average ledger close times of 5.03 s, 5.10 s and 5.15 s as
   account entries, transaction rate, and node count increase — always near
   the 5-second target, without dropping transactions. *)

let run () =
  Common.section "tab-close: average ledger close time under stress"
    "§7.3: 5.03s / 5.10s / 5.15s as accounts, rate, nodes increase";
  let heavy_accounts = if !Common.full then 1_000_000 else 100_000 in
  let heavy_rate = if !Common.full then 350.0 else 200.0 in
  let heavy_n = if !Common.full then 43 else 19 in
  let cases =
    [
      ("many accounts", (fun () -> Common.run_scenario ~spec_n:4 ~accounts:heavy_accounts ~rate:20.0 ~duration:60.0 ()));
      ("high tx rate", (fun () -> Common.run_scenario ~spec_n:4 ~accounts:10_000 ~rate:heavy_rate ~duration:60.0 ()));
      ("many validators", (fun () -> Common.run_scenario ~spec_n:heavy_n ~accounts:2_000 ~rate:20.0 ~duration:60.0 ()));
    ]
  in
  Common.row "%-16s | %10s | %12s | %10s@." "stressor" "close(s)" "dropped txs" "diverged";
  Common.row "-----------------+------------+--------------+----------@.";
  List.iter
    (fun (name, f) ->
      let r = f () in
      let open Stellar_node in
      Common.row "%-16s | %10.2f | %12d | %10b@." name
        r.Scenario.close_interval.Metrics.mean
        (r.Scenario.txs_submitted - r.Scenario.txs_applied)
        r.Scenario.diverged)
    cases;
  Common.row "shape check: close time slightly above 5s in all three columns, no drops@."
