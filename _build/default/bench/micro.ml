(* abl-crypto: Bechamel micro-benchmarks of the substrate design choices —
   real Ed25519 vs the simulated scheme, hashing, order-book crossing,
   transaction application and bucket merging. *)

open Bechamel

let make_tests () =
  let open Stellar_crypto in
  Sim_sig.reset ();
  let data64 = String.make 64 'x' in
  let data8k = String.make 8192 'x' in
  let ed_sk, ed_pk = Ed25519.keypair ~seed:(Sha256.digest "bench-ed") in
  let ed_sig = Ed25519.sign ed_sk data64 in
  let sim_sk, sim_pk = Sim_sig.keypair ~seed:(Sha256.digest "bench-sim") in
  let sim_sig = Sim_sig.sign sim_sk data64 in
  let a = Nat.of_bytes_be (Sha256.digest "a" ^ Sha256.digest "b") in
  let b = Nat.of_bytes_be (Sha256.digest "c" ^ Sha256.digest "d") in

  (* ledger fixtures *)
  let open Stellar_ledger in
  let scheme = (module Sim_sig : Sig_intf.SCHEME with type secret = string) in
  let genesis, accounts = Stellar_node.Genesis.make ~n_accounts:10_000 () in
  let state = State.set_header genesis ~ledger_seq:2 ~close_time:1000 in
  let src = accounts.(0) and dst = accounts.(1) in
  let payment =
    let tx =
      Tx.make ~source:src.Stellar_node.Genesis.public ~seq_num:1
        [
          Tx.op
            (Tx.Payment
               { destination = dst.Stellar_node.Genesis.public; asset = Asset.native; amount = 100 });
        ]
    in
    Tx.sign tx ~secret:src.Stellar_node.Genesis.secret
      ~public:src.Stellar_node.Genesis.public ~scheme
  in
  (* a book with 100 resting offers to cross *)
  let usd = Asset.credit ~code:"USD" ~issuer:src.Stellar_node.Genesis.public in
  let book_state =
    let s = ref state in
    for i = 1 to 100 do
      let st, id = State.next_offer_id !s in
      s :=
        State.put_offer st
          {
            Entry.offer_id = id;
            seller = src.Stellar_node.Genesis.public;
            selling = usd;
            buying = Asset.native;
            amount = 1_000;
            price = Price.make ~n:(100 + i) ~d:100;
            passive = false;
          }
    done;
    !s
  in
  let bucket_items n tag =
    List.init n (fun i ->
        let acct =
          Entry.new_account
            ~id:(Sha256.digest (Printf.sprintf "%s-%d" tag i))
            ~balance:i ~seq_num:0
        in
        { Stellar_bucket.Bucket.key = Entry.Account_key acct.Entry.id;
          entry = Some (Entry.Account_entry acct) })
  in
  let bucket_a = Stellar_bucket.Bucket.of_items (bucket_items 10_000 "a") in
  let bucket_b = Stellar_bucket.Bucket.of_items (bucket_items 10_000 "b") in
  let qset =
    Scp.Quorum_set.majority (List.init 19 (fun i -> Sha256.digest (Printf.sprintf "v%d" i)))
  in
  let members = Scp.Quorum_set.all_validators qset in
  let in_set v = List.mem v (List.filteri (fun i _ -> i < 10) members) in
  [
    Test.make ~name:"sha256/64B" (Staged.stage (fun () -> ignore (Sha256.digest data64)));
    Test.make ~name:"sha256/8KiB" (Staged.stage (fun () -> ignore (Sha256.digest data8k)));
    Test.make ~name:"sha512/8KiB" (Staged.stage (fun () -> ignore (Sha512.digest data8k)));
    Test.make ~name:"hmac-sha256/64B"
      (Staged.stage (fun () -> ignore (Hmac.sha256 ~key:"k" data64)));
    Test.make ~name:"ed25519/sign" (Staged.stage (fun () -> ignore (Ed25519.sign ed_sk data64)));
    Test.make ~name:"ed25519/verify"
      (Staged.stage (fun () ->
           ignore (Ed25519.verify ~public:ed_pk ~msg:data64 ~signature:ed_sig)));
    Test.make ~name:"sim-sig/sign" (Staged.stage (fun () -> ignore (Sim_sig.sign sim_sk data64)));
    Test.make ~name:"sim-sig/verify"
      (Staged.stage (fun () ->
           ignore (Sim_sig.verify ~public:sim_pk ~msg:data64 ~signature:sim_sig)));
    Test.make ~name:"nat/mul-512bit" (Staged.stage (fun () -> ignore (Nat.mul a b)));
    Test.make ~name:"nat/divmod-512bit" (Staged.stage (fun () -> ignore (Nat.divmod (Nat.mul a b) b)));
    Test.make ~name:"ledger/apply-payment"
      (Staged.stage (fun () -> ignore (Apply.apply_tx Apply.sim_ctx state payment)));
    Test.make ~name:"ledger/cross-100-offers"
      (Staged.stage (fun () ->
           ignore
             (Exchange.cross book_state ~give_asset:Asset.native ~get_asset:usd
                ~want_get:50_000 ())));
    Test.make ~name:"bucket/merge-2x10k"
      (Staged.stage (fun () ->
           ignore
             (Stellar_bucket.Bucket.merge ~newer:bucket_a ~older:bucket_b
                ~keep_tombstones:true)));
    Test.make ~name:"scp/quorum-slice-19"
      (Staged.stage (fun () -> ignore (Scp.Quorum_set.is_quorum_slice qset in_set)));
    Test.make ~name:"scp/v-blocking-19"
      (Staged.stage (fun () -> ignore (Scp.Quorum_set.is_v_blocking qset in_set)));
  ]

let run () =
  Common.section "abl-crypto: substrate micro-benchmarks (Bechamel)"
    "design-choice ablations: real vs simulated crypto, core data paths";
  let tests = make_tests () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ~kde:None ()
  in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Common.row "%-28s | %14s@." "operation" "time/op";
  Common.row "-----------------------------+----------------@.";
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with Some [ x ] -> x | _ -> Float.nan
      in
      let pretty =
        if ns >= 1_000_000.0 then Printf.sprintf "%.2f ms" (ns /. 1_000_000.0)
        else if ns >= 1_000.0 then Printf.sprintf "%.2f us" (ns /. 1_000.0)
        else Printf.sprintf "%.0f ns" ns
      in
      Common.row "%-28s | %14s@." name pretty)
    rows;
  Common.row "note: sim-sig trades ~3 orders of magnitude vs ed25519, motivating@.";
  Common.row "the registry-based scheme for large in-process simulations.@."
