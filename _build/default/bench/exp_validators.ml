(* fig11-validators: latency as the validator count grows (Fig. 11).

   Paper (100k accounts, 100 tx/s, 4..43 validators, everyone in everyone's
   slices — the worst case for SCP): balloting grows with n, nomination
   grows slowly, ledger update stays flat. *)

let run () =
  Common.section "fig11-validators: latency vs number of validators"
    "Fig. 11: balloting grows with n; ledger update independent of n";
  let ns = if !Common.full then [ 4; 10; 19; 28; 37; 43 ] else [ 4; 7; 13; 19; 28 ] in
  let rate = if !Common.full then 100.0 else 20.0 in
  Common.row "%10s | %14s | %14s | %14s | %10s@." "validators" "nomination(ms)"
    "balloting(ms)" "apply(ms)" "close(s)";
  Common.row "-----------+----------------+----------------+----------------+-----------@.";
  List.iter
    (fun n ->
      let r = Common.run_scenario ~spec_n:n ~accounts:2_000 ~rate ~duration:45.0 () in
      let open Stellar_node in
      Common.row "%10d | %14.1f | %14.1f | %14.2f | %10.2f@." n
        (Common.ms r.Scenario.nomination.Metrics.mean)
        (Common.ms r.Scenario.balloting.Metrics.mean)
        (Common.ms r.Scenario.apply.Metrics.mean)
        r.Scenario.close_interval.Metrics.mean)
    ns;
  Common.row "shape check: balloting column grows with n, apply column flat@."
