(* fig10-load: latency as the transaction rate grows (Fig. 10).

   Paper (100k accounts, 4 validators, 100..350 tx/s): consensus latency
   grows slowly; ledger update dominates growth as the transaction set gets
   bigger (~507 tx/ledger at 100 tx/s). *)

let run () =
  Common.section "fig10-load: latency vs transactions per second"
    "Fig. 10: apply time grows with load, consensus nearly flat; ~507 tx/ledger @ 100tx/s";
  let accounts = if !Common.full then 100_000 else 10_000 in
  let rates =
    if !Common.full then [ 100.0; 150.0; 200.0; 250.0; 300.0; 350.0 ]
    else [ 50.0; 100.0; 200.0; 350.0 ]
  in
  Common.row "%8s | %10s | %14s | %14s | %12s | %9s@." "tx/s" "tx/ledger"
    "consensus(ms)" "apply(ms)" "applied/sub" "close(s)";
  Common.row "---------+------------+----------------+----------------+--------------+----------@.";
  List.iter
    (fun rate ->
      let r = Common.run_scenario ~spec_n:4 ~accounts ~rate ~duration:60.0 () in
      let open Stellar_node in
      Common.row "%8.0f | %10.0f | %14.1f | %14.1f | %5d/%-6d | %9.2f@." rate
        r.Scenario.txs_per_ledger.Metrics.mean
        (Common.ms (r.Scenario.nomination.Metrics.mean +. r.Scenario.balloting.Metrics.mean))
        (Common.ms r.Scenario.apply.Metrics.mean)
        r.Scenario.txs_applied r.Scenario.txs_submitted
        r.Scenario.close_interval.Metrics.mean)
    rates;
  Common.row "shape check: tx/ledger ~ 5 x rate; apply grows with load; nothing dropped@."
