(* fig9-accounts: latency as the number of ledger accounts grows (Fig. 9).

   Paper (10^5..5x10^7 accounts, 4 validators, 100 tx/s): nomination and
   balloting stay flat; ledger update grows only through bucket merging.
   We sweep a scaled range (the shape, not the absolute x-axis). *)

let run () =
  Common.section "fig9-accounts: latency vs number of accounts"
    "Fig. 9: consensus flat; ledger update grows slowly (bucket merges)";
  let points =
    if !Common.full then [ 1_000; 10_000; 100_000; 1_000_000 ]
    else [ 1_000; 10_000; 100_000 ]
  in
  Common.row "%10s | %14s | %14s | %14s | %10s@." "accounts" "nomination(ms)"
    "balloting(ms)" "apply(ms)" "close(s)";
  Common.row "-----------+----------------+----------------+----------------+-----------@.";
  List.iter
    (fun accounts ->
      let r =
        Common.run_scenario ~spec_n:4 ~accounts ~rate:20.0 ~duration:60.0 ()
      in
      let open Stellar_node in
      Common.row "%10d | %14.1f | %14.1f | %14.2f | %10.2f@." accounts
        (Common.ms r.Scenario.nomination.Metrics.mean)
        (Common.ms r.Scenario.balloting.Metrics.mean)
        (Common.ms r.Scenario.apply.Metrics.mean)
        r.Scenario.close_interval.Metrics.mean)
    points;
  Common.row "shape check: consensus columns flat across 2-3 orders of magnitude@."
