(* abl-baseline: SCP vs a closed-membership PBFT baseline (§2.1, §3.1).

   The paper argues FBA gives open membership at modest extra message cost
   (one extra communication round versus closed protocols, §3.1).  We run
   both protocols on identical simulated networks and compare decision
   latency and messages per decision. *)

let run_pbft ~n ~latency ~decisions =
  let engine = Stellar_sim.Engine.create () in
  let rng = Stellar_sim.Rng.create ~seed:5 in
  let decide_times = Hashtbl.create 16 in
  let proposal_times = Hashtbl.create 16 in
  let cluster =
    Baseline_pbft.Pbft.create ~engine ~rng ~n ~latency
      ~on_decide:(fun ~seq value ->
        if not (Hashtbl.mem decide_times seq) then
          match Hashtbl.find_opt proposal_times value with
          | Some t0 -> Hashtbl.replace decide_times seq (Stellar_sim.Engine.now engine -. t0)
          | None -> ())
      ()
  in
  for i = 1 to decisions do
    ignore
      (Stellar_sim.Engine.schedule engine
         ~delay:(5.0 *. float_of_int i)
         (fun () ->
           let v = Printf.sprintf "block-%d" i in
           Hashtbl.replace proposal_times v (Stellar_sim.Engine.now engine);
           Baseline_pbft.Pbft.propose cluster v))
  done;
  Stellar_sim.Engine.run ~until:(5.0 *. float_of_int (decisions + 3)) engine;
  let lats = Hashtbl.fold (fun _ l acc -> l :: acc) decide_times [] in
  let mean = List.fold_left ( +. ) 0.0 lats /. float_of_int (max 1 (List.length lats)) in
  let msgs = Baseline_pbft.Pbft.message_count cluster in
  (mean, float_of_int msgs /. float_of_int (max 1 (List.length lats)), List.length lats)

let run () =
  Common.section "abl-baseline: SCP vs closed-membership PBFT"
    "§2.1/§3.1: open membership costs one extra communication round";
  let ns = if !Common.full then [ 4; 7; 10; 13; 19 ] else [ 4; 7; 10 ] in
  let latency = Stellar_sim.Latency.wide_area in
  Common.row "%4s | %16s | %16s | %18s | %18s@." "n" "SCP latency(ms)"
    "PBFT latency(ms)" "SCP msgs/decision" "PBFT msgs/decision";
  Common.row "-----+------------------+------------------+--------------------+------------------@.";
  List.iter
    (fun n ->
      let r = Common.run_scenario ~spec_n:n ~accounts:100 ~rate:0.0 ~duration:50.0 ~latency () in
      let open Stellar_node in
      let scp_latency =
        Common.ms (r.Scenario.nomination.Metrics.mean +. r.Scenario.balloting.Metrics.mean)
      in
      let scp_msgs =
        float_of_int
          (List.fold_left (fun acc _ -> acc) 0 [])
      in
      ignore scp_msgs;
      let scp_msgs_per_decision =
        r.Scenario.msgs_per_second_per_node *. float_of_int n
        *. r.Scenario.close_interval.Metrics.mean
      in
      let pbft_lat, pbft_msgs, _ = run_pbft ~n ~latency ~decisions:8 in
      Common.row "%4d | %16.1f | %16.1f | %18.0f | %18.0f@." n scp_latency
        (Common.ms pbft_lat) scp_msgs_per_decision pbft_msgs)
    ns;
  Common.row "shape check: SCP within a small constant of PBFT's latency (extra@.";
  Common.row "confirmation round + nomination), while allowing open membership.@."
