(* fig8-timeouts: nomination and ballot timeouts per ledger (Fig. 8).

   Paper (68 h of production): nomination timeouts p75=0, p99=1, max=4;
   ballot timeouts p75=0, p99=0, max=1.  We reproduce the heavy-tailed
   regime with jittery wide-area links plus rare multi-second spikes. *)

let run () =
  Common.section "fig8-timeouts: timeouts per ledger over a long jittery run"
    "Fig. 8: nomination p75=0 p99=1 max=4; balloting p75=0 p99=0 max=1";
  let duration = if !Common.full then 14400.0 else 900.0 in
  let spec, _ = Stellar_node.Topology.tiered () in
  let latency =
    (* rare spikes long enough to outlast the 1-second round-1 timeout *)
    Stellar_sim.Latency.Jittered
      { base = 0.04; jitter = 0.12; spike_prob = 0.004; spike = 2.5 }
  in
  let r = Common.run_scenario ~spec ~accounts:200 ~rate:2.0 ~duration ~latency () in
  let open Stellar_node in
  let pr name (s : Metrics.summary) paper =
    Common.row "%-10s : p75=%.0f  p99=%.0f  max=%.0f   (paper: %s)@." name s.Metrics.p75
      s.Metrics.p99 s.Metrics.max paper
  in
  Common.row "ledgers observed: %d@." r.Scenario.ledgers_closed;
  pr "nomination" r.Scenario.nomination_timeouts_per_ledger "p75=0 p99=1 max=4";
  pr "balloting" r.Scenario.ballot_timeouts_per_ledger "p75=0 p99=0 max=1";
  Common.row "shape check     : timeouts rare (p75 = 0), nomination noisier than balloting@."
