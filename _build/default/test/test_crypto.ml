open Stellar_crypto

(* ---------- SHA-2 NIST / RFC vectors ---------- *)

let sha_tests =
  let open Alcotest in
  [
    test_case "sha256 empty" `Quick (fun () ->
        check string "digest" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
          (Sha256.hex ""));
    test_case "sha256 abc" `Quick (fun () ->
        check string "digest" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
          (Sha256.hex "abc"));
    test_case "sha256 448-bit NIST vector" `Quick (fun () ->
        check string "digest" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
          (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
    test_case "sha256 million a's" `Slow (fun () ->
        check string "digest" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
          (Sha256.hex (String.make 1_000_000 'a')));
    test_case "sha256 incremental = one-shot" `Quick (fun () ->
        let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
        let ctx = Sha256.init () in
        (* Deliberately odd chunk sizes to cross block boundaries. *)
        let rec feed pos =
          if pos < String.length msg then begin
            let n = min 37 (String.length msg - pos) in
            Sha256.update ctx (String.sub msg pos n);
            feed (pos + n)
          end
        in
        feed 0;
        check string "same" (Hex.encode (Sha256.digest msg)) (Hex.encode (Sha256.final ctx)));
    test_case "sha512 abc" `Quick (fun () ->
        check string "digest"
          "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
          (Sha512.hex "abc"));
    test_case "sha512 empty" `Quick (fun () ->
        check string "digest"
          "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
          (Sha512.hex ""));
    test_case "hmac-sha256 RFC 4231 case 1" `Quick (fun () ->
        check string "mac"
          "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
          (Hmac.hex ~key:(String.make 20 '\x0b') "Hi There"));
    test_case "hmac-sha256 RFC 4231 case 2" `Quick (fun () ->
        check string "mac"
          "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
          (Hmac.hex ~key:"Jefe" "what do ya want for nothing?"));
    test_case "digest_list equals concatenation" `Quick (fun () ->
        check string "equal"
          (Hex.encode (Sha256.digest "foobarbaz"))
          (Hex.encode (Sha256.digest_list [ "foo"; "bar"; "baz" ])));
  ]

(* ---------- Nat bignum properties ---------- *)

let nat_of_int64ish = Nat.of_int

let nat_gen =
  (* Mix of small and multi-limb numbers. *)
  QCheck.Gen.(
    frequency
      [
        (2, map Nat.of_int (int_bound 1000));
        (3, map (fun s -> Nat.of_bytes_be s) (string_size ~gen:char (int_range 1 24)));
        (1, map (fun s -> Nat.of_bytes_be s) (string_size ~gen:char (int_range 25 64)));
      ])

let nat_arb = QCheck.make ~print:Nat.to_string nat_gen

let nat_prop_tests =
  let open QCheck in
  [
    Test.make ~name:"add commutative" ~count:300 (pair nat_arb nat_arb) (fun (x, y) ->
        Nat.equal (Nat.add x y) (Nat.add y x));
    Test.make ~name:"add associative" ~count:300 (triple nat_arb nat_arb nat_arb)
      (fun (x, y, z) -> Nat.equal (Nat.add (Nat.add x y) z) (Nat.add x (Nat.add y z)));
    Test.make ~name:"sub inverts add" ~count:300 (pair nat_arb nat_arb) (fun (x, y) ->
        Nat.equal (Nat.sub (Nat.add x y) y) x);
    Test.make ~name:"mul commutative" ~count:300 (pair nat_arb nat_arb) (fun (x, y) ->
        Nat.equal (Nat.mul x y) (Nat.mul y x));
    Test.make ~name:"mul distributes" ~count:300 (triple nat_arb nat_arb nat_arb)
      (fun (x, y, z) ->
        Nat.equal (Nat.mul x (Nat.add y z)) (Nat.add (Nat.mul x y) (Nat.mul x z)));
    Test.make ~name:"divmod identity" ~count:500 (pair nat_arb nat_arb) (fun (x, y) ->
        assume (not (Nat.is_zero y));
        let q, r = Nat.divmod x y in
        Nat.equal x (Nat.add (Nat.mul q y) r) && Nat.compare r y < 0);
    Test.make ~name:"shift roundtrip" ~count:300 (pair nat_arb (int_bound 100))
      (fun (x, s) -> Nat.equal (Nat.shift_right (Nat.shift_left x s) s) x);
    Test.make ~name:"bytes_be roundtrip" ~count:300 nat_arb (fun x ->
        let len = max 1 ((Nat.bit_length x + 7) / 8) in
        Nat.equal x (Nat.of_bytes_be (Nat.to_bytes_be x ~len)));
    Test.make ~name:"bytes_le roundtrip" ~count:300 nat_arb (fun x ->
        let len = max 1 ((Nat.bit_length x + 7) / 8) in
        Nat.equal x (Nat.of_bytes_le (Nat.to_bytes_le x ~len)));
    Test.make ~name:"hex roundtrip" ~count:300 nat_arb (fun x ->
        Nat.equal x (Nat.of_hex (Nat.to_hex x)));
    Test.make ~name:"isqrt floor" ~count:300 nat_arb (fun x ->
        let r = Nat.isqrt x in
        Nat.compare (Nat.mul r r) x <= 0
        && Nat.compare (Nat.mul (Nat.add r Nat.one) (Nat.add r Nat.one)) x > 0);
    Test.make ~name:"icbrt floor" ~count:300 nat_arb (fun x ->
        let r = Nat.icbrt x in
        let cube n = Nat.mul n (Nat.mul n n) in
        Nat.compare (cube r) x <= 0 && Nat.compare (cube (Nat.add r Nat.one)) x > 0);
    Test.make ~name:"modpow matches naive" ~count:100
      (triple (int_bound 50) (int_bound 10) (int_range 1 50))
      (fun (b, e, m) ->
        let naive =
          let rec go acc n = if n = 0 then acc else go (acc * b mod m) (n - 1) in
          go (1 mod m) e
        in
        Nat.equal
          (Nat.modpow (nat_of_int64ish b) (nat_of_int64ish e) (nat_of_int64ish m))
          (nat_of_int64ish naive));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let nat_unit_tests =
  let open Alcotest in
  [
    test_case "decimal rendering" `Quick (fun () ->
        check string "big" "340282366920938463463374607431768211456"
          (Nat.to_string (Nat.shift_left Nat.one 128));
        check string "zero" "0" (Nat.to_string Nat.zero));
    test_case "sub underflow raises" `Quick (fun () ->
        check_raises "underflow" (Invalid_argument "Nat.sub: negative result") (fun () ->
            ignore (Nat.sub Nat.one Nat.two)));
    test_case "division by zero raises" `Quick (fun () ->
        check_raises "div0" Division_by_zero (fun () -> ignore (Nat.divmod Nat.one Nat.zero)));
    test_case "testbit" `Quick (fun () ->
        let n = Nat.of_int 0b1010 in
        check bool "bit1" true (Nat.testbit n 1);
        check bool "bit0" false (Nat.testbit n 0);
        check bool "bit3" true (Nat.testbit n 3));
  ]

(* ---------- Ed25519 RFC 8032 vectors & properties ---------- *)

let rfc8032_vectors =
  [
    ( "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
      "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
      "",
      "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
    );
    ( "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
      "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
      "72",
      "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
    );
    ( "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
      "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
      "af82",
      "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
    );
  ]

let ed25519_tests =
  let open Alcotest in
  List.mapi
    (fun i (seed, pk, msg, sg) ->
      test_case (Printf.sprintf "RFC 8032 test %d" (i + 1)) `Quick (fun () ->
          let seed = Hex.decode seed and msg = Hex.decode msg in
          let sk, public = Ed25519.keypair ~seed in
          check string "public key" pk (Hex.encode public);
          check string "signature" sg (Hex.encode (Ed25519.sign sk msg));
          check bool "verifies" true
            (Ed25519.verify ~public ~msg ~signature:(Hex.decode sg))))
    rfc8032_vectors
  @ [
      test_case "reject corrupted signature" `Quick (fun () ->
          let seed = Sha256.digest "seed" in
          let sk, public = Ed25519.keypair ~seed in
          let s = Bytes.of_string (Ed25519.sign sk "msg") in
          Bytes.set s 3 (Char.chr (Char.code (Bytes.get s 3) lxor 1));
          check bool "rejected" false
            (Ed25519.verify ~public ~msg:"msg" ~signature:(Bytes.to_string s)));
      test_case "reject wrong message" `Quick (fun () ->
          let seed = Sha256.digest "seed2" in
          let sk, public = Ed25519.keypair ~seed in
          let s = Ed25519.sign sk "msg" in
          check bool "rejected" false (Ed25519.verify ~public ~msg:"msh" ~signature:s));
      test_case "reject wrong key" `Quick (fun () ->
          let sk, _ = Ed25519.keypair ~seed:(Sha256.digest "k1") in
          let _, pk2 = Ed25519.keypair ~seed:(Sha256.digest "k2") in
          let s = Ed25519.sign sk "msg" in
          check bool "rejected" false (Ed25519.verify ~public:pk2 ~msg:"msg" ~signature:s));
      test_case "reject garbage" `Quick (fun () ->
          let _, public = Ed25519.keypair ~seed:(Sha256.digest "k3") in
          check bool "short" false (Ed25519.verify ~public ~msg:"m" ~signature:"xx");
          check bool "zeros" false
            (Ed25519.verify ~public ~msg:"m" ~signature:(String.make 64 '\000')));
    ]

let ed25519_prop_tests =
  let open QCheck in
  [
    Test.make ~name:"sign/verify roundtrip" ~count:10
      (string_of_size (Gen.int_range 0 200))
      (fun msg ->
        let seed = Sha256.digest msg in
        let sk, public = Ed25519.keypair ~seed in
        Ed25519.verify ~public ~msg ~signature:(Ed25519.sign sk msg));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let sim_sig_tests =
  let open Alcotest in
  [
    test_case "roundtrip" `Quick (fun () ->
        Sim_sig.reset ();
        let sk, public = Sim_sig.keypair ~seed:(Sha256.digest "n1") in
        let s = Sim_sig.sign sk "hello" in
        check int "size matches ed25519" 64 (String.length s);
        check bool "verifies" true (Sim_sig.verify ~public ~msg:"hello" ~signature:s);
        check bool "wrong msg" false (Sim_sig.verify ~public ~msg:"hellO" ~signature:s));
    test_case "unknown key rejected" `Quick (fun () ->
        Sim_sig.reset ();
        let sk, _ = Sim_sig.keypair ~seed:(Sha256.digest "n2") in
        Sim_sig.reset ();
        let s = Sim_sig.sign sk "x" in
        check bool "rejected after reset" false
          (Sim_sig.verify ~public:(Sha256.digest "whatever") ~msg:"x" ~signature:s));
  ]

let hex_tests =
  let open Alcotest in
  [
    test_case "roundtrip" `Quick (fun () ->
        let s = String.init 256 Char.chr in
        check string "same" s (Hex.decode (Hex.encode s)));
    test_case "mixed case decode" `Quick (fun () ->
        check string "decoded" "\xAB\xCD" (Hex.decode "AbCd"));
    test_case "invalid raises" `Quick (fun () ->
        check_raises "odd" (Invalid_argument "Hex.decode: odd length") (fun () ->
            ignore (Hex.decode "abc"));
        check_raises "bad digit" (Invalid_argument "Hex.decode: bad digit") (fun () ->
            ignore (Hex.decode "zz")));
  ]

let () =
  Alcotest.run "crypto"
    [
      ("sha2", sha_tests);
      ("hex", hex_tests);
      ("nat-unit", nat_unit_tests);
      ("nat-props", nat_prop_tests);
      ("ed25519", ed25519_tests);
      ("ed25519-props", ed25519_prop_tests);
      ("sim-sig", sim_sig_tests);
    ]
