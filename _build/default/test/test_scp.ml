module Scp_harness = Scp_test_harness.Scp_harness
open Scp

let id c = String.make 32 c
let a = id 'a'
let b = id 'b'
let c = id 'c'
let d = id 'd'
let e5 = id 'e'
let f6 = id 'f'
let g7 = id 'g'

(* ---------- Quorum set unit tests ---------- *)

let qset_tests =
  let open Alcotest in
  [
    test_case "threshold bounds" `Quick (fun () ->
        check_raises "0 threshold" (Invalid_argument "Quorum_set.make: threshold out of range")
          (fun () -> ignore (Quorum_set.make ~threshold:0 [ a ]));
        check_raises "too high" (Invalid_argument "Quorum_set.make: threshold out of range")
          (fun () -> ignore (Quorum_set.make ~threshold:3 [ a; b ])));
    test_case "majority threshold" `Quick (fun () ->
        check int "5 nodes" 3 (Quorum_set.majority [ a; b; c; d; e5 ]).threshold;
        check int "4 nodes" 3 (Quorum_set.majority [ a; b; c; d ]).threshold);
    test_case "percent thresholds match stellar-core" `Quick (fun () ->
        check int "67% of 3" 3 (Quorum_set.percent_threshold 67 3 + 1 - 1 |> fun x -> x);
        check int "67% of 3 is 3" 3 (Quorum_set.percent_threshold 67 3);
        check int "67% of 4" 3 (Quorum_set.percent_threshold 67 4);
        check int "51% of 3" 2 (Quorum_set.percent_threshold 51 3);
        check int "100% of 4" 4 (Quorum_set.percent_threshold 100 4));
    test_case "quorum slice flat" `Quick (fun () ->
        let q = Quorum_set.make ~threshold:2 [ a; b; c ] in
        let in_set l v = List.mem v l in
        check bool "ab is slice" true (Quorum_set.is_quorum_slice q (in_set [ a; b ]));
        check bool "a alone is not" false (Quorum_set.is_quorum_slice q (in_set [ a ]));
        check bool "abc is slice" true (Quorum_set.is_quorum_slice q (in_set [ a; b; c ])));
    test_case "quorum slice nested" `Quick (fun () ->
        (* 2-of { a, 1-of {b, c} } *)
        let inner = Quorum_set.make ~threshold:1 [ b; c ] in
        let q = Quorum_set.make ~threshold:2 ~inner:[ inner ] [ a ] in
        let in_set l v = List.mem v l in
        check bool "a+b" true (Quorum_set.is_quorum_slice q (in_set [ a; b ]));
        check bool "a+c" true (Quorum_set.is_quorum_slice q (in_set [ a; c ]));
        check bool "b+c no a" false (Quorum_set.is_quorum_slice q (in_set [ b; c ])));
    test_case "v-blocking flat" `Quick (fun () ->
        let q = Quorum_set.make ~threshold:2 [ a; b; c ] in
        let in_set l v = List.mem v l in
        (* threshold 2 of 3: any 2 nodes block *)
        check bool "two block" true (Quorum_set.is_v_blocking q (in_set [ a; b ]));
        check bool "one does not" false (Quorum_set.is_v_blocking q (in_set [ a ])));
    test_case "v-blocking 3f+1" `Quick (fun () ->
        let q = Quorum_set.make ~threshold:3 [ a; b; c; d ] in
        let in_set l v = List.mem v l in
        (* 3-of-4: f=1, so f+1=2 nodes block *)
        check bool "2 block" true (Quorum_set.is_v_blocking q (in_set [ c; d ]));
        check bool "1 does not" false (Quorum_set.is_v_blocking q (in_set [ d ])));
    test_case "weight flat" `Quick (fun () ->
        let q = Quorum_set.make ~threshold:2 [ a; b; c ] in
        check (float 1e-9) "k/n" (2.0 /. 3.0) (Quorum_set.weight q a);
        check (float 1e-9) "absent" 0.0 (Quorum_set.weight q d));
    test_case "weight nested multiplies" `Quick (fun () ->
        let inner = Quorum_set.make ~threshold:1 [ b; c ] in
        let q = Quorum_set.make ~threshold:2 ~inner:[ inner ] [ a ] in
        check (float 1e-9) "inner" 0.5 (Quorum_set.weight q b);
        check (float 1e-9) "outer" 1.0 (Quorum_set.weight q a));
    test_case "sanity checks" `Quick (fun () ->
        check bool "dup validators insane" false
          (Quorum_set.is_sane { threshold = 1; validators = [ a; a ]; inner = [] });
        check bool "ok" true (Quorum_set.is_sane (Quorum_set.majority [ a; b; c ])));
    test_case "encode deterministic & distinct" `Quick (fun () ->
        let q1 = Quorum_set.make ~threshold:2 [ a; b; c ] in
        let q2 = Quorum_set.make ~threshold:2 [ a; b; c ] in
        let q3 = Quorum_set.make ~threshold:3 [ a; b; c ] in
        Alcotest.(check bool) "same" true (Quorum_set.encode q1 = Quorum_set.encode q2);
        Alcotest.(check bool) "diff" false (Quorum_set.encode q1 = Quorum_set.encode q3));
  ]

(* ---------- Federation predicate tests (incl. the Fig. 2 cascade) ---------- *)

let mk_statement node qset vote =
  Types.
    {
      node_id = node;
      slot = 1;
      quorum_set = qset;
      pledge = Nominate { votes = [ vote ]; accepted = [] };
    }

let federation_tests =
  let open Alcotest in
  let module NM = Federation.Node_map in
  [
    test_case "quorum requires every member's slice" `Quick (fun () ->
        (* a trusts {a,b}, b trusts {b,c}: {a,b} is not a quorum (b's slice
           needs c), {a,b,c} is, if c trusts itself. *)
        let qa = Quorum_set.make ~threshold:2 [ a; b ] in
        let qb = Quorum_set.make ~threshold:2 [ b; c ] in
        let qc = Quorum_set.singleton c in
        let sts v =
          NM.of_seq
            (List.to_seq
               (List.map
                  (fun (n, q) -> (n, mk_statement n q "x"))
                  (List.filteri (fun i _ -> i < v) [ (a, qa); (b, qb); (c, qc) ])))
        in
        check bool "a+b not quorum" false
          (Federation.is_quorum ~local_qset:qa (sts 2) (fun _ -> true));
        check bool "a+b+c quorum" true
          (Federation.is_quorum ~local_qset:qa (sts 3) (fun _ -> true)));
    test_case "fig2 cascade: v-blocking accept overrules votes" `Quick (fun () ->
        (* Nodes 1-4 in a clique (3-of-4); 5 depends on 1; 6,7 depend on 5.
           When the clique accepts X, node 5 must accept X via its
           1-blocking set {1}, then {5} is 6- and 7-blocking. *)
        let clique = [ a; b; c; d ] in
        let q_clique = Quorum_set.make ~threshold:3 clique in
        let q5 = Quorum_set.make ~threshold:1 [ a ] in
        let q67 = Quorum_set.make ~threshold:1 [ e5 ] in
        ignore q67;
        let accepted_x st =
          match st.Types.pledge with
          | Types.Nominate n -> List.mem "X" n.Types.accepted
          | _ -> false
        in
        let votes_x st =
          match st.Types.pledge with
          | Types.Nominate n -> List.mem "X" n.Types.votes
          | _ -> false
        in
        let accept_st n q =
          Types.
            {
              node_id = n;
              slot = 1;
              quorum_set = q;
              pledge = Nominate { votes = [ "X" ]; accepted = [ "X" ] };
            }
        in
        let sts =
          NM.of_seq
            (List.to_seq (List.map (fun n -> (n, accept_st n q_clique)) clique))
        in
        (* Node 5 voted Y but sees {a} accept X: a is 5-blocking. *)
        check bool "5-blocking accepts X" true
          (Federation.federated_accept ~local_qset:q5 sts ~voted:votes_x
             ~accepted:accepted_x));
    test_case "ratify needs full quorum of accepts" `Quick (fun () ->
        let q = Quorum_set.make ~threshold:3 [ a; b; c; d ] in
        let accept_st n votes accepted =
          Types.
            {
              node_id = n;
              slot = 1;
              quorum_set = q;
              pledge = Nominate { votes; accepted };
            }
        in
        let accepted_x st =
          match st.Types.pledge with
          | Types.Nominate n -> List.mem "X" n.Types.accepted
          | _ -> false
        in
        let sts2 =
          NM.of_seq
            (List.to_seq
               [ (a, accept_st a [ "X" ] [ "X" ]); (b, accept_st b [ "X" ] [ "X" ]) ])
        in
        check bool "2 accepts of 3-of-4: no ratify" false
          (Federation.federated_ratify ~local_qset:q sts2 accepted_x);
        let sts3 =
          NM.add c (accept_st c [ "X" ] [ "X" ]) sts2
        in
        check bool "3 accepts ratify" true
          (Federation.federated_ratify ~local_qset:q sts3 accepted_x));
  ]

(* ---------- End-to-end consensus over the simulator ---------- *)

let all_majority ids _ = Quorum_set.majority (Array.to_list ids)

let e2e_tests =
  let open Alcotest in
  [
    test_case "4 nodes converge on one value" `Quick (fun () ->
        let h = Scp_harness.make ~n:4 ~qset_of:all_majority () in
        Scp_harness.nominate_all h (fun i -> Printf.sprintf "value-%d" i);
        Scp_harness.run h;
        check bool "unanimous" true (Scp_harness.unanimous h));
    test_case "decided value was someone's input" `Quick (fun () ->
        let h = Scp_harness.make ~n:4 ~qset_of:all_majority () in
        Scp_harness.nominate_all h (fun i -> Printf.sprintf "value-%d" i);
        Scp_harness.run h;
        let inputs = List.init 4 (Printf.sprintf "value-%d") in
        Array.iter
          (function
            | Some v -> check bool "valid input" true (List.mem v inputs)
            | None -> fail "no decision")
          (Scp_harness.decisions h));
    test_case "single node self-quorum externalizes" `Quick (fun () ->
        let h =
          Scp_harness.make ~n:1 ~qset_of:(fun ids _ -> Quorum_set.singleton ids.(0)) ()
        in
        Scp_harness.nominate_all h (fun _ -> "solo");
        Scp_harness.run h;
        check bool "decided" true (Scp_harness.unanimous h));
    test_case "7 nodes, wide-area latency" `Quick (fun () ->
        let h =
          Scp_harness.make ~latency:Stellar_sim.Latency.wide_area ~n:7
            ~qset_of:all_majority ()
        in
        Scp_harness.nominate_all h (fun i -> Printf.sprintf "v%d" i);
        Scp_harness.run h;
        check bool "unanimous" true (Scp_harness.unanimous h));
    test_case "tolerates one crashed node (3-of-4)" `Quick (fun () ->
        let h =
          Scp_harness.make ~n:4
            ~qset_of:(fun ids _ -> Quorum_set.make ~threshold:3 (Array.to_list ids))
            ()
        in
        Stellar_sim.Network.set_down h.Scp_harness.network 3 true;
        Scp_harness.nominate_all h (fun i -> Printf.sprintf "value-%d" i);
        Scp_harness.run h;
        check bool "3 live nodes decide" true (Scp_harness.unanimous ~except:[ 3 ] h));
    test_case "blocked without quorum availability" `Quick (fun () ->
        (* 4 nodes requiring unanimity: one crash blocks liveness (but not
           safety — nobody externalizes). *)
        let h =
          Scp_harness.make ~n:4
            ~qset_of:(fun ids _ -> Quorum_set.make ~threshold:4 (Array.to_list ids))
            ()
        in
        Stellar_sim.Network.set_down h.Scp_harness.network 3 true;
        Scp_harness.nominate_all h (fun i -> Printf.sprintf "value-%d" i);
        Scp_harness.run ~until:60.0 h;
        Array.iteri
          (fun i dec -> if i < 3 then check bool "no decision" true (dec = None))
          (Scp_harness.decisions h));
    test_case "safety: no divergence under message loss" `Quick (fun () ->
        let h = Scp_harness.make ~n:5 ~qset_of:all_majority () in
        Stellar_sim.Network.set_loss_rate h.Scp_harness.network 0.10;
        Scp_harness.nominate_all h (fun i -> Printf.sprintf "value-%d" i);
        Scp_harness.run ~until:600.0 h;
        (* With 10% loss and retried ballots everyone should still decide,
           and decisions must agree. *)
        let decided =
          Array.to_list (Scp_harness.decisions h) |> List.filter_map Fun.id
        in
        check bool "agreement" true
          (match decided with
          | [] -> false
          | v :: rest -> List.for_all (String.equal v) rest));
    test_case "disjoint quorums may diverge (intertwined hypothesis)" `Quick
      (fun () ->
        (* Two cliques that don't reference each other: both decide, possibly
           differently — this is the misconfiguration §6 guards against. *)
        let qset_of ids i =
          if i < 3 then Quorum_set.majority [ ids.(0); ids.(1); ids.(2) ]
          else Quorum_set.majority [ ids.(3); ids.(4); ids.(5) ]
        in
        let h = Scp_harness.make ~n:6 ~qset_of () in
        Scp_harness.nominate_all h (fun i -> Printf.sprintf "group-%d" (i / 3));
        Scp_harness.run h;
        let decs = Scp_harness.decisions h in
        Array.iter (fun dec -> check bool "every node decided" true (dec <> None)) decs;
        check (option string) "clique 0 decided its value" (Some "group-0") decs.(0);
        check (option string) "clique 1 decided its value" (Some "group-1") decs.(3));
    test_case "intertwined nodes never diverge across 10 slots" `Quick (fun () ->
        let h = Scp_harness.make ~n:5 ~qset_of:all_majority () in
        for slot = 1 to 10 do
          Scp_harness.nominate_all ~slot h (fun i -> Printf.sprintf "s%d-v%d" slot i)
        done;
        Scp_harness.run ~until:2000.0 h;
        for slot = 1 to 10 do
          Alcotest.(check bool)
            (Printf.sprintf "slot %d unanimous" slot)
            true
            (Scp_harness.unanimous ~slot h)
        done);
    test_case "round-1 leader crash is survived via leader expansion" `Quick (fun () ->
        let h = Scp_harness.make ~n:5 ~qset_of:all_majority () in
        (* compute whom node 0 will follow in round 1 and crash that node *)
        let qset = all_majority h.Scp_harness.ids 0 in
        let leader =
          Leader.round_leader ~qset ~self:h.Scp_harness.ids.(0) ~slot:1 ~prev:"genesis"
            ~round:1
        in
        let victim = ref (-1) in
        Array.iteri (fun i id -> if String.equal id leader then victim := i) h.Scp_harness.ids;
        if !victim >= 0 then Stellar_sim.Network.set_down h.Scp_harness.network !victim true;
        Scp_harness.nominate_all h (fun i -> Printf.sprintf "value-%d" i);
        Scp_harness.run h;
        let except = if !victim >= 0 then [ !victim ] else [] in
        Alcotest.(check bool) "survivors agree" true (Scp_harness.unanimous ~except h));
    test_case "tiered topology: leaf follows tier-1" `Quick (fun () ->
        (* Nodes 0-3 are tier 1 (3-of-4 among themselves); nodes 4-5 are
           leaves trusting 3-of-4 tier-1. Everyone should agree. *)
        let qset_of ids i =
          let tier1 = [ ids.(0); ids.(1); ids.(2); ids.(3) ] in
          ignore i;
          Quorum_set.make ~threshold:3 tier1
        in
        let h = Scp_harness.make ~n:6 ~qset_of () in
        Scp_harness.nominate_all h (fun i -> Printf.sprintf "value-%d" i);
        Scp_harness.run h;
        check bool "unanimous incl leaves" true (Scp_harness.unanimous h));
  ]

(* ---------- Leader election ---------- *)

let leader_tests =
  let open Alcotest in
  [
    test_case "deterministic across nodes" `Quick (fun () ->
        let qset = Quorum_set.majority [ a; b; c; d ] in
        let l1 = Leader.round_leader ~qset ~self:a ~slot:7 ~prev:"p" ~round:1 in
        let l2 = Leader.round_leader ~qset ~self:a ~slot:7 ~prev:"p" ~round:1 in
        check bool "same" true (String.equal l1 l2));
    test_case "leader varies with slot" `Quick (fun () ->
        let qset = Quorum_set.majority [ a; b; c; d; e5; f6; g7 ] in
        let leaders =
          List.init 30 (fun slot ->
              Leader.round_leader ~qset ~self:a ~slot ~prev:"p" ~round:1)
        in
        let distinct = List.sort_uniq String.compare leaders in
        check bool "more than one leader over slots" true (List.length distinct > 1));
    test_case "self weight is 1" `Quick (fun () ->
        let qset = Quorum_set.majority [ b; c ] in
        check (float 1e-9) "self" 1.0 (Leader.weight ~qset ~self:a a));
    test_case "priority in [0,1)" `Quick (fun () ->
        for r = 1 to 20 do
          let p = Leader.priority ~slot:3 ~prev:"x" ~round:r a in
          check bool "range" true (p >= 0.0 && p < 1.0)
        done);
  ]

(* ---------- Ballot ordering properties ---------- *)

let ballot_prop_tests =
  let open QCheck in
  let ballot_gen =
    Gen.map2
      (fun c v -> Types.{ counter = c; value = Printf.sprintf "v%d" v })
      (Gen.int_range 1 100) (Gen.int_range 0 5)
  in
  let arb = make ballot_gen in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"ballot compare total order" ~count:500 (triple arb arb arb)
         (fun (x, y, z) ->
           let open Types.Ballot in
           (compare x y <= 0 && compare y z <= 0) ==> (compare x z <= 0)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"less_and_compatible implies compatible" ~count:500 (pair arb arb)
         (fun (x, y) ->
           let open Types.Ballot in
           (not (less_and_compatible x y)) || compatible x y));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"statement roundtrip sizes positive" ~count:200 arb (fun b ->
           let st =
             Types.
               {
                 node_id = String.make 32 'z';
                 slot = 1;
                 quorum_set = Quorum_set.singleton (String.make 32 'z');
                 pledge =
                   Prepare
                     {
                       ballot = b;
                       prepared = None;
                       prepared_prime = None;
                       n_c = 0;
                       n_h = 0;
                     };
               }
           in
           String.length (Types.statement_bytes st) > 0));
  ]

let () =
  Alcotest.run "scp"
    [
      ("quorum-set", qset_tests);
      ("federation", federation_tests);
      ("leader", leader_tests);
      ("ballot-props", ballot_prop_tests);
      ("end-to-end", e2e_tests);
    ]
