open Stellar_ledger

let scheme = (module Stellar_crypto.Sim_sig : Stellar_crypto.Sig_intf.SCHEME
               with type secret = string)

(* Deterministic key material. *)
let keys = Hashtbl.create 16

let key name =
  match Hashtbl.find_opt keys name with
  | Some kp -> kp
  | None ->
      let seed = Stellar_crypto.Sha256.digest ("ledger-test-" ^ name) in
      let kp = Stellar_crypto.Sim_sig.keypair ~seed in
      Hashtbl.add keys name kp;
      kp

let pub name = snd (key name)
let sec name = fst (key name)

let ctx = Apply.sim_ctx

let xlm = Asset.of_units

(* A fresh ledger with some funded accounts. *)
let setup names =
  Stellar_crypto.Sim_sig.reset ();
  Hashtbl.reset keys;
  let master = pub "master" in
  let state = State.genesis ~master ~total_xlm:(xlm 1_000_000_000) () in
  let state = State.set_header state ~ledger_seq:2 ~close_time:1000 in
  List.fold_left
    (fun state name ->
      let dest = pub name in
      let seq = (Option.get (State.account state master)).Entry.seq_num + 1 in
      let tx =
        Tx.make ~source:master ~seq_num:seq
          [ Tx.op (Tx.Create_account { destination = dest; starting_balance = xlm 10_000 }) ]
      in
      let signed = Tx.sign tx ~secret:(sec "master") ~public:master ~scheme in
      let state', outcome = Apply.apply_tx ctx state signed in
      if not (Apply.tx_succeeded outcome) then
        Alcotest.failf "setup create %s failed: %a" name Apply.pp_tx_outcome outcome;
      state')
    state names

let next_seq state name = (Option.get (State.account state (pub name))).Entry.seq_num + 1

let submit ?(signers = []) state name ops =
  let source = pub name in
  let tx = Tx.make ~source ~seq_num:(next_seq state name) ops in
  let signed = Tx.sign tx ~secret:(sec name) ~public:source ~scheme in
  let signed =
    List.fold_left
      (fun s signer -> Tx.co_sign s ~secret:(sec signer) ~public:(pub signer) ~scheme)
      signed signers
  in
  Apply.apply_tx ctx state signed

let expect_success (state, outcome) =
  if not (Apply.tx_succeeded outcome) then
    Alcotest.failf "expected success, got %a" Apply.pp_tx_outcome outcome;
  (match State.check_integrity state with
  | Ok () -> ()
  | Error e -> Alcotest.failf "integrity: %s" e);
  state

let expect_op_failure expected (state, outcome) =
  (match outcome with
  | Apply.Tx_failed results ->
      let last = List.nth results (List.length results - 1) in
      Alcotest.(check string)
        "op result" (Format.asprintf "%a" Apply.pp_op_result expected)
        (Format.asprintf "%a" Apply.pp_op_result last)
  | other -> Alcotest.failf "expected op failure, got %a" Apply.pp_tx_outcome other);
  state

let balance state name = (Option.get (State.account state (pub name))).Entry.balance

let trust_balance state name asset =
  match State.trustline state (pub name) asset with
  | Some tl -> tl.Entry.tl_balance
  | None -> 0

let usd () = Asset.credit ~code:"USD" ~issuer:(pub "issuer")

(* Give [name] a trustline and [amount] USD from the issuer. *)
let fund_usd state name amount =
  let state =
    expect_success (submit state name [ Tx.op (Tx.Change_trust { asset = usd (); limit = xlm 1_000_000 }) ])
  in
  if amount > 0 then
    expect_success
      (submit state "issuer"
         [ Tx.op (Tx.Payment { destination = pub name; asset = usd (); amount }) ])
  else state

(* ---------- payments ---------- *)

let payment_tests =
  let open Alcotest in
  [
    test_case "native payment moves balance" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let before = balance state "bob" in
        let state =
          expect_success
            (submit state "alice"
               [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = xlm 5 }) ])
        in
        check int "bob received" (before + xlm 5) (balance state "bob"));
    test_case "payment charges fee" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let before = balance state "alice" in
        let state =
          expect_success
            (submit state "alice"
               [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = xlm 5 }) ])
        in
        check int "alice paid amount + fee" (before - xlm 5 - 100) (balance state "alice");
        (* setup itself paid creation fees into the pool; check the delta *)
        check int "fee pool grew by the fee" 300 (State.fee_pool state));
    test_case "underfunded payment fails atomically" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let before_bob = balance state "bob" in
        let state =
          expect_op_failure Apply.Op_underfunded
            (submit state "alice"
               [
                 Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = xlm 1 });
                 Tx.op
                   (Tx.Payment
                      { destination = pub "bob"; asset = Asset.native; amount = xlm 1_000_000 });
               ])
        in
        check int "first op rolled back too" before_bob (balance state "bob"));
    test_case "payment respects reserve" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        (* alice has 10k XLM, reserve with 0 sub entries is 1 XLM *)
        expect_op_failure Apply.Op_underfunded
          (submit state "alice"
             [
               Tx.op
                 (Tx.Payment
                    { destination = pub "bob"; asset = Asset.native; amount = xlm 10_000 });
             ])
        |> ignore);
    test_case "payment to missing account fails" `Quick (fun () ->
        let state = setup [ "alice" ] in
        expect_op_failure Apply.Op_no_destination
          (submit state "alice"
             [
               Tx.op
                 (Tx.Payment
                    { destination = pub "ghost"; asset = Asset.native; amount = xlm 1 });
             ])
        |> ignore);
    test_case "sequence numbers enforced" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice" + 5)
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
        in
        let signed = Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme in
        let _, outcome = Apply.apply_tx ctx state signed in
        check bool "bad seq" true (outcome = Apply.Tx_bad_seq));
    test_case "replay rejected" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
        in
        let signed = Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme in
        let state, outcome = Apply.apply_tx ctx state signed in
        check bool "first ok" true (Apply.tx_succeeded outcome);
        let _, outcome2 = Apply.apply_tx ctx state signed in
        check bool "replay rejected" true (outcome2 = Apply.Tx_bad_seq));
    test_case "wrong signature rejected" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
        in
        let signed = Tx.sign tx ~secret:(sec "bob") ~public:(pub "bob") ~scheme in
        let _, outcome = Apply.apply_tx ctx state signed in
        check bool "bad auth" true (outcome = Apply.Tx_bad_auth));
    test_case "time bounds" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let mk bounds =
          let tx =
            Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
              ~time_bounds:bounds
              [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
          in
          snd (Apply.apply_tx ctx state (Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme))
        in
        check bool "too early" true
          (mk { Tx.min_time = 2000; max_time = 0 } = Apply.Tx_too_early);
        check bool "too late" true
          (mk { Tx.min_time = 0; max_time = 500 } = Apply.Tx_too_late);
        check bool "in range" true
          (Apply.tx_succeeded (mk { Tx.min_time = 500; max_time = 1500 })));
    test_case "fee below minimum rejected" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice") ~fee:10
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
        in
        let _, outcome =
          Apply.apply_tx ctx state (Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme)
        in
        check bool "insufficient fee" true (outcome = Apply.Tx_insufficient_fee));
  ]

(* ---------- trustlines, issuance, authorization ---------- *)

let trust_tests =
  let open Alcotest in
  [
    test_case "issue and pay a credit asset" `Quick (fun () ->
        let state = setup [ "issuer"; "alice"; "bob" ] in
        let state = fund_usd state "alice" (xlm 100) in
        let state = fund_usd state "bob" 0 in
        let state =
          expect_success
            (submit state "alice"
               [ Tx.op (Tx.Payment { destination = pub "bob"; asset = usd (); amount = xlm 30 }) ])
        in
        check int "alice" (xlm 70) (trust_balance state "alice" (usd ()));
        check int "bob" (xlm 30) (trust_balance state "bob" (usd ())));
    test_case "payment without trustline fails" `Quick (fun () ->
        let state = setup [ "issuer"; "alice"; "bob" ] in
        let state = fund_usd state "alice" (xlm 100) in
        expect_op_failure Apply.Op_no_trustline
          (submit state "alice"
             [ Tx.op (Tx.Payment { destination = pub "bob"; asset = usd (); amount = 1 }) ])
        |> ignore);
    test_case "trustline limit enforced" `Quick (fun () ->
        let state = setup [ "issuer"; "alice" ] in
        let state =
          expect_success
            (submit state "alice" [ Tx.op (Tx.Change_trust { asset = usd (); limit = 100 }) ])
        in
        expect_op_failure Apply.Op_line_full
          (submit state "issuer"
             [ Tx.op (Tx.Payment { destination = pub "alice"; asset = usd (); amount = 200 }) ])
        |> ignore);
    test_case "issuer redeems its own asset" `Quick (fun () ->
        let state = setup [ "issuer"; "alice" ] in
        let state = fund_usd state "alice" (xlm 50) in
        let state =
          expect_success
            (submit state "alice"
               [ Tx.op (Tx.Payment { destination = pub "issuer"; asset = usd (); amount = xlm 20 }) ])
        in
        check int "burned" (xlm 30) (State.total_issued state (usd ())));
    test_case "auth_required blocks until allowed (KYC flow §5.1)" `Quick (fun () ->
        let state = setup [ "issuer"; "alice" ] in
        let state =
          expect_success
            (submit state "issuer"
               [
                 Tx.op
                   (Tx.Set_options
                      {
                        master_weight = None;
                        low = None;
                        medium = None;
                        high = None;
                        signer = None;
                        home_domain = None;
                        set_auth_required = Some true;
                        set_auth_revocable = Some true;
                        set_auth_immutable = None;
                      });
               ])
        in
        let state =
          expect_success
            (submit state "alice" [ Tx.op (Tx.Change_trust { asset = usd (); limit = xlm 100 }) ])
        in
        (* unauthorized: issuer cannot pay alice yet *)
        let state =
          expect_op_failure Apply.Op_not_authorized
            (submit state "issuer"
               [ Tx.op (Tx.Payment { destination = pub "alice"; asset = usd (); amount = 1 }) ])
        in
        (* issuer authorizes (AllowTrust), then payment works *)
        let state =
          expect_success
            (submit state "issuer"
               [
                 Tx.op
                   (Tx.Allow_trust { trustor = pub "alice"; asset_code = "USD"; authorize = true });
               ])
        in
        let state =
          expect_success
            (submit state "issuer"
               [ Tx.op (Tx.Payment { destination = pub "alice"; asset = usd (); amount = 5 }) ])
        in
        (* and can revoke again *)
        let state =
          expect_success
            (submit state "issuer"
               [
                 Tx.op
                   (Tx.Allow_trust
                      { trustor = pub "alice"; asset_code = "USD"; authorize = false });
               ])
        in
        expect_op_failure Apply.Op_not_authorized
          (submit state "alice"
             [ Tx.op (Tx.Payment { destination = pub "issuer"; asset = usd (); amount = 1 }) ])
        |> ignore);
    test_case "delete trustline requires zero balance" `Quick (fun () ->
        let state = setup [ "issuer"; "alice" ] in
        let state = fund_usd state "alice" 5 in
        let state =
          expect_op_failure Apply.Op_trust_non_empty
            (submit state "alice" [ Tx.op (Tx.Change_trust { asset = usd (); limit = 0 }) ])
        in
        let state =
          expect_success
            (submit state "alice"
               [ Tx.op (Tx.Payment { destination = pub "issuer"; asset = usd (); amount = 5 }) ])
        in
        let state =
          expect_success
            (submit state "alice" [ Tx.op (Tx.Change_trust { asset = usd (); limit = 0 }) ])
        in
        check bool "gone" true (State.trustline state (pub "alice") (usd ()) = None));
    test_case "trustline requires reserve" `Quick (fun () ->
        let state = setup [ "issuer"; "poor" ] in
        (* Drain poor down to the bare minimum (reserve 1 XLM + fees). *)
        let spare = balance state "poor" - xlm 1 - 200 in
        let state =
          expect_success
            (submit state "poor"
               [
                 Tx.op
                   (Tx.Payment
                      { destination = pub "issuer"; asset = Asset.native; amount = spare });
               ])
        in
        expect_op_failure Apply.Op_low_reserve
          (submit state "poor" [ Tx.op (Tx.Change_trust { asset = usd (); limit = 10 }) ])
        |> ignore);
  ]

(* ---------- multisig ---------- *)

let multisig_tests =
  let open Alcotest in
  let add_signer state name signer_name weight =
    expect_success
      (submit state name
         [
           Tx.op
             (Tx.Set_options
                {
                  master_weight = None;
                  low = None;
                  medium = None;
                  high = None;
                  signer = Some (Tx.Set_signer { Entry.key = pub signer_name; weight });
                  home_domain = None;
                  set_auth_required = None;
                  set_auth_revocable = None;
                  set_auth_immutable = None;
                });
         ])
  in
  let set_thresholds state name (low, medium, high) =
    expect_success
      (submit state name
         [
           Tx.op
             (Tx.Set_options
                {
                  master_weight = None;
                  low = Some low;
                  medium = Some medium;
                  high = Some high;
                  signer = None;
                  home_domain = None;
                  set_auth_required = None;
                  set_auth_revocable = None;
                  set_auth_immutable = None;
                });
         ])
  in
  [
    test_case "2-of-2 multisig payment" `Quick (fun () ->
        let state = setup [ "alice"; "bob"; "carol" ] in
        let state = add_signer state "alice" "carol" 1 in
        let state = set_thresholds state "alice" (1, 2, 2) in
        (* single signature no longer enough for a payment (medium=2) *)
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
        in
        let single = Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme in
        let _, outcome = Apply.apply_tx ctx state single in
        check bool "single insufficient" true (outcome = Apply.Tx_bad_auth);
        let both = Tx.co_sign single ~secret:(sec "carol") ~public:(pub "carol") ~scheme in
        let _, outcome2 = Apply.apply_tx ctx state both in
        check bool "both sign ok" true (Apply.tx_succeeded outcome2));
    test_case "signer alone can act within weight" `Quick (fun () ->
        let state = setup [ "alice"; "bob"; "carol" ] in
        let state = add_signer state "alice" "carol" 5 in
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
        in
        let signed = Tx.sign tx ~secret:(sec "carol") ~public:(pub "carol") ~scheme in
        let _, outcome = Apply.apply_tx ctx state signed in
        check bool "carol signs for alice" true (Apply.tx_succeeded outcome));
    test_case "deauthorized master key (§5.1)" `Quick (fun () ->
        let state = setup [ "alice"; "bob"; "carol" ] in
        let state = add_signer state "alice" "carol" 1 in
        (* master weight 0: the key that names the account loses power *)
        let state =
          expect_success
            (submit state "alice" ~signers:[]
               [
                 Tx.op
                   (Tx.Set_options
                      {
                        master_weight = Some 0;
                        low = None;
                        medium = None;
                        high = None;
                        signer = None;
                        home_domain = None;
                        set_auth_required = None;
                        set_auth_revocable = None;
                        set_auth_immutable = None;
                      });
               ])
        in
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
        in
        let by_master = Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme in
        let _, outcome = Apply.apply_tx ctx state by_master in
        check bool "master rejected" true (outcome = Apply.Tx_bad_auth);
        let by_signer = Tx.sign tx ~secret:(sec "carol") ~public:(pub "carol") ~scheme in
        let _, outcome2 = Apply.apply_tx ctx state by_signer in
        check bool "signer accepted" true (Apply.tx_succeeded outcome2));
    test_case "ops with distinct sources need all signatures" `Quick (fun () ->
        (* the paper's land_token-deal: one tx moving assets of two accounts *)
        let state = setup [ "alice"; "bob" ] in
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
            [
              Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 10 });
              Tx.op ~source:(pub "bob")
                (Tx.Payment { destination = pub "alice"; asset = Asset.native; amount = 20 });
            ]
        in
        let only_alice = Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme in
        let _, outcome = Apply.apply_tx ctx state only_alice in
        check bool "missing bob" true (outcome = Apply.Tx_bad_auth);
        let both = Tx.co_sign only_alice ~secret:(sec "bob") ~public:(pub "bob") ~scheme in
        let state', outcome2 = Apply.apply_tx ctx state both in
        check bool "both ok" true (Apply.tx_succeeded outcome2);
        check int "net +10 for alice minus fee"
          (balance state "alice" + 10 - 200)
          (balance state' "alice"));
  ]

(* ---------- order book & path payments ---------- *)

let mxn () = Asset.credit ~code:"MXN" ~issuer:(pub "mxn-issuer")

let offer_tests =
  let open Alcotest in
  [
    test_case "resting offer then crossing fill" `Quick (fun () ->
        let state = setup [ "issuer"; "maker"; "taker" ] in
        let state = fund_usd state "maker" (xlm 1000) in
        let state = fund_usd state "taker" 0 in
        (* maker sells 100 USD at 2 XLM per USD *)
        let state =
          expect_success
            (submit state "maker"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = usd ();
                        buying = Asset.native;
                        amount = xlm 100;
                        price = Price.make ~n:2 ~d:1;
                        passive = false;
                      });
               ])
        in
        check int "book has offer" 1
          (List.length (State.best_offers state ~selling:(usd ()) ~buying:Asset.native));
        (* taker buys USD with XLM at up to 0.5 USD per XLM *)
        let state =
          expect_success
            (submit state "taker"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = Asset.native;
                        buying = usd ();
                        amount = xlm 40;
                        price = Price.make ~n:1 ~d:2;
                        passive = false;
                      });
               ])
        in
        check int "taker got 20 USD" (xlm 20) (trust_balance state "taker" (usd ()));
        check int "maker offer reduced" (xlm 80)
          (List.hd (State.best_offers state ~selling:(usd ()) ~buying:Asset.native)).Entry.amount);
    test_case "non-crossing offers rest" `Quick (fun () ->
        let state = setup [ "issuer"; "a"; "b" ] in
        let state = fund_usd state "a" (xlm 100) in
        let state = fund_usd state "b" 0 in
        let state =
          expect_success
            (submit state "a"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = usd ();
                        buying = Asset.native;
                        amount = xlm 10;
                        price = Price.make ~n:3 ~d:1;
                        passive = false;
                      });
               ])
        in
        let state =
          expect_success
            (submit state "b"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = Asset.native;
                        buying = usd ();
                        amount = xlm 10;
                        price = Price.make ~n:1 ~d:4;
                        passive = false;
                      });
               ])
        in
        check int "both rest" 2
          (List.length (State.best_offers state ~selling:(usd ()) ~buying:Asset.native)
          + List.length (State.best_offers state ~selling:Asset.native ~buying:(usd ()))));
    test_case "better-priced offer fills first" `Quick (fun () ->
        let state = setup [ "issuer"; "m1"; "m2"; "taker" ] in
        let state = fund_usd state "m1" (xlm 100) in
        let state = fund_usd state "m2" (xlm 100) in
        let state = fund_usd state "taker" 0 in
        let sell name price =
          expect_success
            (submit state name
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = usd ();
                        buying = Asset.native;
                        amount = xlm 10;
                        price;
                        passive = false;
                      });
               ])
        in
        ignore sell;
        let state =
          expect_success
            (submit state "m1"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = usd ();
                        buying = Asset.native;
                        amount = xlm 10;
                        price = Price.make ~n:3 ~d:1;
                        passive = false;
                      });
               ])
        in
        let state =
          expect_success
            (submit state "m2"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = usd ();
                        buying = Asset.native;
                        amount = xlm 10;
                        price = Price.make ~n:2 ~d:1;
                        passive = false;
                      });
               ])
        in
        (* taker pays XLM for 10 USD: should hit m2's cheaper offer *)
        let state =
          expect_success
            (submit state "taker"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = Asset.native;
                        buying = usd ();
                        amount = xlm 20;
                        price = Price.make ~n:1 ~d:2;
                        passive = false;
                      });
               ])
        in
        (* m2 paid 3 fees (create trust, fund, offer) before receiving 20 XLM *)
        check int "m2 filled" (xlm 10_000 + xlm 20 - 200) (balance state "m2");
        check int "m1 untouched" 1
          (List.length (State.offers_of state (pub "m1"))));
    test_case "delete and replace offers" `Quick (fun () ->
        let state = setup [ "issuer"; "maker" ] in
        let state = fund_usd state "maker" (xlm 100) in
        let mk state amount =
          submit state "maker"
            [
              Tx.op
                (Tx.Manage_offer
                   {
                     offer_id = 0;
                     selling = usd ();
                     buying = Asset.native;
                     amount;
                     price = Price.make ~n:2 ~d:1;
                     passive = false;
                   });
            ]
        in
        let state = expect_success (mk state (xlm 10)) in
        let id =
          (List.hd (State.best_offers state ~selling:(usd ()) ~buying:Asset.native)).Entry.offer_id
        in
        (* replace amount *)
        let state =
          expect_success
            (submit state "maker"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = id;
                        selling = usd ();
                        buying = Asset.native;
                        amount = xlm 5;
                        price = Price.make ~n:2 ~d:1;
                        passive = false;
                      });
               ])
        in
        (* delete *)
        let state =
          expect_success
            (submit state "maker"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = id + 1;
                        selling = usd ();
                        buying = Asset.native;
                        amount = 0;
                        price = Price.make ~n:2 ~d:1;
                        passive = false;
                      });
               ])
        in
        check int "book empty" 0
          (List.length (State.best_offers state ~selling:(usd ()) ~buying:Asset.native));
        let acct = Option.get (State.account state (pub "maker")) in
        check int "sub entries back to just trustline" 1 acct.Entry.num_sub_entries);
    test_case "passive offer does not cross equal price" `Quick (fun () ->
        let state = setup [ "issuer"; "a"; "b" ] in
        let state = fund_usd state "a" (xlm 100) in
        let state = fund_usd state "b" 0 in
        let state =
          expect_success
            (submit state "a"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = usd ();
                        buying = Asset.native;
                        amount = xlm 10;
                        price = Price.make ~n:2 ~d:1;
                        passive = false;
                      });
               ])
        in
        (* b places the exactly-opposite passive offer: must rest, not fill *)
        let state =
          expect_success
            (submit state "b"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = Asset.native;
                        buying = usd ();
                        amount = xlm 20;
                        price = Price.make ~n:1 ~d:2;
                        passive = true;
                      });
               ])
        in
        check int "a's offer untouched" (xlm 10)
          (List.hd (State.best_offers state ~selling:(usd ()) ~buying:Asset.native)).Entry.amount;
        check int "b's rests" 1
          (List.length (State.best_offers state ~selling:Asset.native ~buying:(usd ()))));
    test_case "path payment: USD -> XLM -> MXN (the $0.50 to Mexico)" `Quick (fun () ->
        let state = setup [ "issuer"; "mxn-issuer"; "alice"; "bob"; "mm1"; "mm2" ] in
        let state = fund_usd state "alice" (xlm 100) in
        let state = fund_usd state "mm1" (xlm 1000) in
        (* market maker 1 buys USD with XLM at 1 USD = 2 XLM *)
        let state =
          expect_success
            (submit state "mm1"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = Asset.native;
                        buying = usd ();
                        amount = xlm 500;
                        price = Price.make ~n:1 ~d:2;
                        passive = false;
                      });
               ])
        in
        (* market maker 2 sells MXN for XLM at 1 XLM = 8 MXN *)
        let state =
          expect_success
            (submit state "mm2"
               [ Tx.op (Tx.Change_trust { asset = mxn (); limit = xlm 1_000_000 }) ])
        in
        let state =
          expect_success
            (submit state "mxn-issuer"
               [ Tx.op (Tx.Payment { destination = pub "mm2"; asset = mxn (); amount = xlm 10_000 }) ])
        in
        let state =
          expect_success
            (submit state "mm2"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = mxn ();
                        buying = Asset.native;
                        amount = xlm 8000;
                        price = Price.make ~n:1 ~d:8;
                        passive = false;
                      });
               ])
        in
        let state =
          expect_success
            (submit state "bob" [ Tx.op (Tx.Change_trust { asset = mxn (); limit = xlm 1000 }) ])
        in
        (* alice sends bob exactly 16 MXN, paying at most 2 USD via XLM *)
        let usd_before = trust_balance state "alice" (usd ()) in
        let state =
          expect_success
            (submit state "alice"
               [
                 Tx.op
                   (Tx.Path_payment
                      {
                        send_asset = usd ();
                        send_max = xlm 2;
                        destination = pub "bob";
                        dest_asset = mxn ();
                        dest_amount = xlm 16;
                        path = [ Asset.native ];
                      });
               ])
        in
        check int "bob got exactly 16 MXN" (xlm 16) (trust_balance state "bob" (mxn ()));
        (* 16 MXN costs 2 XLM, which costs 1 USD *)
        check int "alice paid 1 USD" (usd_before - xlm 1) (trust_balance state "alice" (usd ()));
        (match State.check_integrity state with
        | Ok () -> ()
        | Error e -> fail e));
    test_case "path payment over send_max fails atomically" `Quick (fun () ->
        let state = setup [ "issuer"; "mxn-issuer"; "alice"; "bob"; "mm1"; "mm2" ] in
        let state = fund_usd state "alice" (xlm 100) in
        let state = fund_usd state "mm1" (xlm 1000) in
        let state =
          expect_success
            (submit state "mm1"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = Asset.native;
                        buying = usd ();
                        amount = xlm 500;
                        price = Price.make ~n:1 ~d:2;
                        passive = false;
                      });
               ])
        in
        let state =
          expect_success
            (submit state "bob" [ Tx.op (Tx.Change_trust { asset = usd (); limit = xlm 1000 }) ])
        in
        let offers_before = List.length (State.best_offers state ~selling:Asset.native ~buying:(usd ())) in
        let state =
          expect_op_failure Apply.Op_over_send_max
            (submit state "alice"
               [
                 Tx.op
                   (Tx.Path_payment
                      {
                        send_asset = usd ();
                        send_max = 1;
                        destination = pub "bob";
                        dest_asset = usd ();
                        dest_amount = xlm 10;
                        path = [ Asset.native; usd () ] |> List.tl;
                        (* USD -> XLM ... nonsense path to force a cross *)
                      });
               ])
        in
        (* failed op must not consume book liquidity *)
        check int "book unchanged" offers_before
          (List.length (State.best_offers state ~selling:Asset.native ~buying:(usd ()))));
    test_case "path payment with empty book fails" `Quick (fun () ->
        let state = setup [ "issuer"; "alice"; "bob" ] in
        let state = fund_usd state "alice" (xlm 10) in
        let state =
          expect_success
            (submit state "bob" [ Tx.op (Tx.Change_trust { asset = usd (); limit = xlm 10 }) ])
        in
        ignore
          (expect_op_failure Apply.Op_too_few_offers
             (submit state "alice"
                [
                  Tx.op
                    (Tx.Path_payment
                       {
                         send_asset = Asset.native;
                         send_max = xlm 5;
                         destination = pub "bob";
                         dest_asset = usd ();
                         dest_amount = xlm 1;
                         path = [];
                       });
                ])));
  ]

(* ---------- other operations ---------- *)

let misc_op_tests =
  let open Alcotest in
  [
    test_case "manage data set/update/delete" `Quick (fun () ->
        let state = setup [ "alice" ] in
        let state =
          expect_success
            (submit state "alice" [ Tx.op (Tx.Manage_data { name = "k"; value = Some "v1" }) ])
        in
        check (option string) "set" (Some "v1")
          (Option.map (fun d -> d.Entry.value) (State.data state (pub "alice") "k"));
        let state =
          expect_success
            (submit state "alice" [ Tx.op (Tx.Manage_data { name = "k"; value = Some "v2" }) ])
        in
        check (option string) "updated" (Some "v2")
          (Option.map (fun d -> d.Entry.value) (State.data state (pub "alice") "k"));
        let state =
          expect_success
            (submit state "alice" [ Tx.op (Tx.Manage_data { name = "k"; value = None }) ])
        in
        check bool "deleted" true (State.data state (pub "alice") "k" = None);
        let acct = Option.get (State.account state (pub "alice")) in
        check int "sub entries released" 0 acct.Entry.num_sub_entries);
    test_case "bump sequence" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let target = next_seq state "alice" + 1000 in
        let state =
          expect_success
            (submit state "alice" [ Tx.op (Tx.Bump_sequence { bump_to = target }) ])
        in
        check int "bumped" target (Option.get (State.account state (pub "alice"))).Entry.seq_num;
        (* old numbers now invalid *)
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(target - 5)
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
        in
        let _, outcome =
          Apply.apply_tx ctx state (Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme)
        in
        check bool "bad seq" true (outcome = Apply.Tx_bad_seq));
    test_case "account merge reclaims full balance (§5.1)" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let alice_bal = balance state "alice" in
        let bob_bal = balance state "bob" in
        let state =
          expect_success
            (submit state "alice" [ Tx.op (Tx.Account_merge { destination = pub "bob" }) ])
        in
        check bool "alice gone" true (State.account state (pub "alice") = None);
        check int "bob got everything minus fee" (bob_bal + alice_bal - 100) (balance state "bob"));
    test_case "merge with sub entries fails" `Quick (fun () ->
        let state = setup [ "issuer"; "alice"; "bob" ] in
        let state = fund_usd state "alice" 0 in
        ignore
          (expect_op_failure Apply.Op_has_sub_entries
             (submit state "alice" [ Tx.op (Tx.Account_merge { destination = pub "bob" }) ])));
    test_case "create account below reserve fails" `Quick (fun () ->
        let state = setup [ "alice" ] in
        ignore
          (expect_op_failure Apply.Op_low_reserve
             (submit state "alice"
                [
                  Tx.op
                    (Tx.Create_account
                       { destination = pub "tiny"; starting_balance = 100 });
                ])));
    test_case "land_token-deal: 3-op atomic multi-party swap (§5.2)" `Quick (fun () ->
        let state = setup [ "deeds"; "usd-bank"; "alice"; "bob" ] in
        let land_token = Asset.credit ~code:"LAND" ~issuer:(pub "deeds") in
        let dollars = Asset.credit ~code:"USD" ~issuer:(pub "usd-bank") in
        let give state who asset amount issuer_name =
          let state =
            expect_success
              (submit state who [ Tx.op (Tx.Change_trust { asset; limit = xlm 1_000_000 }) ])
          in
          if amount > 0 then
            expect_success
              (submit state issuer_name
                 [ Tx.op (Tx.Payment { destination = pub who; asset; amount }) ])
          else state
        in
        let state = give state "alice" land_token 2 "deeds" in
        let state = give state "alice" dollars (xlm 10_000) "usd-bank" in
        let state = give state "bob" land_token 5 "deeds" in
        let state = give state "bob" dollars 0 "usd-bank" in
        (* alice gives a small parcel + $10k; bob gives a big parcel *)
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
            [
              Tx.op (Tx.Payment { destination = pub "bob"; asset = land_token; amount = 1 });
              Tx.op (Tx.Payment { destination = pub "bob"; asset = dollars; amount = xlm 10_000 });
              Tx.op ~source:(pub "bob")
                (Tx.Payment { destination = pub "alice"; asset = land_token; amount = 3 });
            ]
        in
        let signed = Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme in
        let signed = Tx.co_sign signed ~secret:(sec "bob") ~public:(pub "bob") ~scheme in
        let state', outcome = Apply.apply_tx ctx state signed in
        check bool "swap succeeded" true (Apply.tx_succeeded outcome);
        check int "alice holds 4 land_token" 4 (trust_balance state' "alice" land_token);
        check int "bob holds 3 land_token + dollars" 3 (trust_balance state' "bob" land_token);
        check int "bob dollars" (xlm 10_000) (trust_balance state' "bob" dollars));
  ]

(* ---------- conservation & integrity properties ---------- *)

let conservation_tests =
  let open Alcotest in
  [
    test_case "native total conserved across random payments" `Quick (fun () ->
        let names = [ "a"; "b"; "c"; "d" ] in
        let state = setup names in
        let total0 = State.total_native state in
        let rng = ref 12345 in
        let rand n =
          rng := (!rng * 1103515245) + 12347;
          abs !rng mod n
        in
        let state = ref state in
        for _ = 1 to 100 do
          let src = List.nth names (rand 4) in
          let dst = List.nth names (rand 4) in
          if src <> dst then begin
            let amount = 1 + rand 1000 in
            let s, _ =
              submit !state src
                [ Tx.op (Tx.Payment { destination = pub dst; asset = Asset.native; amount }) ]
            in
            state := s
          end
        done;
        check int "conserved" total0 (State.total_native !state);
        match State.check_integrity !state with Ok () -> () | Error e -> fail e);
    test_case "issued total = issuer mints - burns" `Quick (fun () ->
        let state = setup [ "issuer"; "a"; "b" ] in
        let state = fund_usd state "a" (xlm 100) in
        let state = fund_usd state "b" (xlm 50) in
        check int "minted" (xlm 150) (State.total_issued state (usd ()));
        let state =
          expect_success
            (submit state "a"
               [ Tx.op (Tx.Payment { destination = pub "b"; asset = usd (); amount = xlm 10 }) ])
        in
        check int "transfer conserves" (xlm 150) (State.total_issued state (usd ())));
    test_case "order-book crossing conserves both assets" `Quick (fun () ->
        let state = setup [ "issuer"; "maker"; "taker" ] in
        let state = fund_usd state "maker" (xlm 500) in
        let state = fund_usd state "taker" 0 in
        let native0 = State.total_native state in
        let usd0 = State.total_issued state (usd ()) in
        let state =
          expect_success
            (submit state "maker"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = usd ();
                        buying = Asset.native;
                        amount = xlm 100;
                        price = Price.make ~n:7 ~d:3;
                        passive = false;
                      });
               ])
        in
        let state =
          expect_success
            (submit state "taker"
               [
                 Tx.op
                   (Tx.Manage_offer
                      {
                        offer_id = 0;
                        selling = Asset.native;
                        buying = usd ();
                        amount = xlm 77;
                        price = Price.make ~n:3 ~d:7;
                        passive = false;
                      });
               ])
        in
        check int "native conserved" native0 (State.total_native state);
        check int "usd conserved" usd0 (State.total_issued state (usd ())));
  ]

(* ---------- tx set application ---------- *)

let txset_tests =
  let open Alcotest in
  [
    test_case "apply_tx_set bumps ledger and applies all" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let seq0 = State.ledger_seq state in
        let mk i =
          let tx =
            Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice" + i)
              [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
          in
          Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme
        in
        let txs = [ mk 0; mk 1; mk 2 ] in
        let state', results = Apply.apply_tx_set ctx state ~close_time:2000 txs in
        check int "ledger seq" (seq0 + 1) (State.ledger_seq state');
        check int "close time" 2000 (State.close_time state');
        (* all three consume sequence numbers in order regardless of the
           hash-shuffled apply order *)
        check int "applied" 3 (List.length (List.filter (fun (_, o) -> Apply.tx_succeeded o) results)));
    test_case "headers chain" `Quick (fun () ->
        let state = setup [ "alice" ] in
        let mk_header prev state =
          Header.make ~prev ~scp_value_hash:(Stellar_crypto.Sha256.digest "v")
            ~tx_set_hash:(Stellar_crypto.Sha256.digest "t")
            ~results_hash:(Stellar_crypto.Sha256.digest "r")
            ~snapshot_hash:(State.snapshot_hash state) ~state
        in
        let h1 = mk_header None state in
        let state2 = State.set_header state ~ledger_seq:(State.ledger_seq state + 1) ~close_time:123 in
        let h2 = mk_header (Some h1) state2 in
        let state3 = State.set_header state2 ~ledger_seq:(State.ledger_seq state2 + 1) ~close_time:456 in
        let h3 = mk_header (Some h2) state3 in
        check bool "chain verifies" true (Header.verify_chain [ h1; h2; h3 ]);
        check bool "tamper detected" false
          (Header.verify_chain [ h1; { h2 with Header.close_time = 999 }; h3 ]));
    test_case "snapshot hash changes with state" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        let h0 = State.snapshot_hash state in
        let state', _ =
          submit state "alice"
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
        in
        check bool "hash moved" false (String.equal h0 (State.snapshot_hash state')));
  ]

(* ---------- price properties ---------- *)

let price_tests =
  let open QCheck in
  let price_arb =
    make
      ~print:(fun p -> Format.asprintf "%a" Price.pp p)
      Gen.(map2 (fun n d -> Price.make ~n ~d) (int_range 1 1000) (int_range 1 1000))
  in
  [
    Test.make ~name:"compare antisymmetric" ~count:300 (pair price_arb price_arb)
      (fun (a, b) -> Price.compare a b = -Price.compare b a);
    Test.make ~name:"inverse flips comparison" ~count:300 (pair price_arb price_arb)
      (fun (a, b) ->
        assume (Price.compare a b <> 0);
        Price.compare a b = -Price.compare (Price.inverse a) (Price.inverse b));
    Test.make ~name:"mul_floor <= mul_ceil" ~count:300 (pair (int_bound 100000) price_arb)
      (fun (x, p) ->
        match (Price.mul_floor x p, Price.mul_ceil x p) with
        | Some f, Some c -> f <= c && c - f <= 1
        | _ -> false);
    Test.make ~name:"crosses consistent with product" ~count:300 (pair price_arb price_arb)
      (fun (t, m) ->
        Price.crosses ~taker:t ~maker:m
        = (Price.to_float t *. Price.to_float m <= 1.0 +. 1e-9));
  ]
  |> List.map QCheck_alcotest.to_alcotest


(* ---------- inflation / fee recycling (§5.2) ---------- *)

let inflation_tests =
  let open Alcotest in
  [
    test_case "fees recycled proportionally by vote" `Quick (fun () ->
        let state = setup [ "alice"; "bob"; "carol" ] in
        (* the whale (master) votes for carol; alice's small stake votes for
           bob and stays below the 0.05% winner threshold *)
        let state =
          expect_success
            (submit state "master" [ Tx.op (Tx.Set_inflation_dest { dest = pub "carol" }) ])
        in
        let state =
          expect_success
            (submit state "alice" [ Tx.op (Tx.Set_inflation_dest { dest = pub "bob" }) ])
        in
        let pool_before = State.fee_pool state in
        check bool "fees accumulated" true (pool_before > 0);
        let total_before = State.total_native state in
        let carol_before = balance state "carol" in
        let bob_before = balance state "bob" in
        let state = expect_success (submit state "alice" [ Tx.op Tx.Inflation ]) in
        check bool "carol (above threshold) received" true
          (balance state "carol" > carol_before);
        check int "bob (dust votes) received nothing" bob_before (balance state "bob");
        check bool "pool mostly drained" true (State.fee_pool state < pool_before / 10 + 200);
        check int "XLM conserved" total_before (State.total_native state));
    test_case "inflation with no votes fails" `Quick (fun () ->
        let state = setup [ "alice" ] in
        ignore (expect_op_failure Apply.Op_no_fees_to_distribute
          (submit state "alice" [ Tx.op Tx.Inflation ])));
    test_case "dust votes below threshold are ignored" `Quick (fun () ->
        let state = setup [ "alice"; "bob" ] in
        (* alice votes for bob, but alice's 10k XLM is below 0.05% of the
           1B XLM supply *)
        let state =
          expect_success
            (submit state "alice" [ Tx.op (Tx.Set_inflation_dest { dest = pub "bob" }) ])
        in
        ignore (expect_op_failure Apply.Op_no_fees_to_distribute
          (submit state "alice" [ Tx.op Tx.Inflation ])));
  ]

(* ---------- hash-preimage signers: HTLC / cross-chain trading (§5.2) ---------- *)

let htlc_tests =
  let open Alcotest in
  let preimage = "the-secret-preimage-of-the-swap!" in
  let hash_x = Stellar_crypto.Sha256.digest preimage in
  (* alice locks her account behind (preimage OR nothing) until T, by adding
     a hash-x signer and dropping her master key below the payment
     threshold *)
  let setup_htlc () =
    let state = setup [ "alice"; "bob" ] in
    expect_success
      (submit state "alice"
         [
           Tx.op
             (Tx.Set_options
                {
                  master_weight = Some 1;
                  low = Some 1;
                  medium = Some 2;  (* payments need master AND preimage *)
                  high = Some 3;
                  signer = Some (Tx.Set_signer { Entry.key = hash_x; weight = 1 });
                  home_domain = None;
                  set_auth_required = None;
                  set_auth_revocable = None;
                  set_auth_immutable = None;
                });
         ])
  in
  [
    test_case "payment without the preimage is rejected" `Quick (fun () ->
        let state = setup_htlc () in
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
        in
        let signed = Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme in
        let _, outcome = Apply.apply_tx ctx state signed in
        check bool "insufficient weight" true (outcome = Apply.Tx_bad_auth));
    test_case "revealing the preimage unlocks the payment" `Quick (fun () ->
        let state = setup_htlc () in
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
            ~time_bounds:{ Tx.min_time = 0; max_time = 2000 }
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 7 }) ]
        in
        let signed = Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme in
        (* anyone can attach the preimage in place of a signature *)
        let signed = { signed with Tx.signatures = ("", preimage) :: signed.Tx.signatures } in
        let before = balance state "bob" in
        let state', outcome = Apply.apply_tx ctx state signed in
        check bool "accepted" true (Apply.tx_succeeded outcome);
        check int "paid" (before + 7) (balance state' "bob"));
    test_case "wrong preimage grants nothing" `Quick (fun () ->
        let state = setup_htlc () in
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 1 }) ]
        in
        let signed = Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme in
        let signed = { signed with Tx.signatures = ("", "not-the-secret") :: signed.Tx.signatures } in
        let _, outcome = Apply.apply_tx ctx state signed in
        check bool "rejected" true (outcome = Apply.Tx_bad_auth));
    test_case "preimage after the deadline is too late (HTLC expiry)" `Quick (fun () ->
        let state = setup_htlc () in
        (* claim window closed at t=500, ledger is at close_time 1000 *)
        let tx =
          Tx.make ~source:(pub "alice") ~seq_num:(next_seq state "alice")
            ~time_bounds:{ Tx.min_time = 0; max_time = 500 }
            [ Tx.op (Tx.Payment { destination = pub "bob"; asset = Asset.native; amount = 7 }) ]
        in
        let signed = Tx.sign tx ~secret:(sec "alice") ~public:(pub "alice") ~scheme in
        let signed = { signed with Tx.signatures = ("", preimage) :: signed.Tx.signatures } in
        let _, outcome = Apply.apply_tx ctx state signed in
        check bool "expired" true (outcome = Apply.Tx_too_late));
  ]


(* ---------- randomized operation fuzz ---------- *)

let fuzz_tests =
  (* A deterministic stream of random operations over a small cast; after
     every transaction the ledger must stay internally consistent, XLM and
     issued totals must be conserved, and applying must never raise. *)
  let cast = [ "issuer"; "f1"; "f2"; "f3"; "f4" ] in
  let run_fuzz seed steps =
    let state = ref (setup cast) in
    let rng = ref (seed * 2 + 1) in
    let rand n =
      rng := (!rng * 1103515245) + 1013904223;
      abs (!rng asr 13) mod n
    in
    let name () = List.nth cast (rand (List.length cast)) in
    let asset () = if rand 3 = 0 then Asset.native else usd () in
    let native_total = State.total_native !state in
    for _ = 1 to steps do
      let who = name () in
      let body =
        match rand 8 with
        | 0 -> Tx.Payment { destination = pub (name ()); asset = asset (); amount = 1 + rand 5000 }
        | 1 -> Tx.Change_trust { asset = usd (); limit = rand 2 * xlm (1 + rand 1000) }
        | 2 ->
            Tx.Manage_offer
              {
                offer_id = 0;
                selling = (if rand 2 = 0 then Asset.native else usd ());
                buying = (if rand 2 = 0 then usd () else Asset.native);
                amount = 1 + rand 10000;
                price = Price.make ~n:(1 + rand 20) ~d:(1 + rand 20);
                passive = rand 4 = 0;
              }
        | 3 -> Tx.Manage_data { name = Printf.sprintf "k%d" (rand 4); value = (if rand 3 = 0 then None else Some "v") }
        | 4 -> Tx.Bump_sequence { bump_to = 0 }
        | 5 -> Tx.Allow_trust { trustor = pub (name ()); asset_code = "USD"; authorize = rand 2 = 0 }
        | 6 -> Tx.Set_inflation_dest { dest = pub (name ()) }
        | _ ->
            Tx.Path_payment
              {
                send_asset = asset ();
                send_max = 1 + rand 10000;
                destination = pub (name ());
                dest_asset = asset ();
                dest_amount = 1 + rand 1000;
                path = (if rand 2 = 0 then [] else [ Asset.native ]);
              }
      in
      let state', _outcome = submit !state who [ Tx.op body ] in
      (match State.check_integrity state' with
      | Ok () -> ()
      | Error e -> Alcotest.failf "integrity violated: %s" e);
      state := state'
    done;
    Alcotest.(check int) "XLM conserved" native_total (State.total_native !state);
    (* every unit of USD in circulation was minted by the issuer *)
    Alcotest.(check bool) "issued total non-negative" true
      (State.total_issued !state (usd ()) >= 0)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random op streams keep invariants" ~count:12
         QCheck.(int_bound 100_000)
         (fun seed ->
           run_fuzz seed 120;
           true));
  ]

let () =
  Alcotest.run "ledger"
    [
      ("payments", payment_tests);
      ("inflation", inflation_tests);
      ("htlc", htlc_tests);
      ("fuzz", fuzz_tests);
      ("trustlines", trust_tests);
      ("multisig", multisig_tests);
      ("orderbook", offer_tests);
      ("operations", misc_op_tests);
      ("conservation", conservation_tests);
      ("txset", txset_tests);
      ("price-props", price_tests);
    ]
