open Stellar_ledger
open Stellar_horizon

let scheme = (module Stellar_crypto.Sim_sig : Stellar_crypto.Sig_intf.SCHEME
               with type secret = string)

let keys = Hashtbl.create 16

let key name =
  match Hashtbl.find_opt keys name with
  | Some kp -> kp
  | None ->
      let kp = Stellar_crypto.Sim_sig.keypair ~seed:(Stellar_crypto.Sha256.digest ("hz-" ^ name)) in
      Hashtbl.add keys name kp;
      kp

let pub n = snd (key n)
let sec n = fst (key n)
let xlm = Asset.of_units
let usd () = Asset.credit ~code:"USD" ~issuer:(pub "usd-issuer")
let mxn () = Asset.credit ~code:"MXN" ~issuer:(pub "mxn-issuer")
let eur () = Asset.credit ~code:"EUR" ~issuer:(pub "eur-issuer")

let submit state name ops =
  let source = pub name in
  let seq = (Option.get (State.account state source)).Entry.seq_num + 1 in
  let tx = Tx.make ~source ~seq_num:seq ops in
  let signed = Tx.sign tx ~secret:(sec name) ~public:source ~scheme in
  let state', outcome = Apply.apply_tx Apply.sim_ctx state signed in
  if not (Apply.tx_succeeded outcome) then
    Alcotest.failf "setup tx failed: %a" Apply.pp_tx_outcome outcome;
  state'

let trust state name asset =
  submit state name [ Tx.op (Tx.Change_trust { asset; limit = xlm 1_000_000 }) ]

let pay state from dest asset amount =
  submit state from [ Tx.op (Tx.Payment { destination = pub dest; asset; amount }) ]

let offer state name ~selling ~buying ~amount ~n ~d =
  submit state name
    [
      Tx.op
        (Tx.Manage_offer
           {
             offer_id = 0;
             selling;
             buying;
             amount;
             price = Price.make ~n ~d;
             passive = false;
           });
    ]

(* A market: USD/XLM and XLM/MXN books plus a direct thin USD/MXN book. *)
let setup () =
  Stellar_crypto.Sim_sig.reset ();
  Hashtbl.reset keys;
  let master = pub "master" in
  let state = State.genesis ~master ~total_xlm:(xlm 1_000_000_000) () in
  let state = State.set_header state ~ledger_seq:2 ~close_time:1000 in
  let state =
    List.fold_left
      (fun state name ->
        submit state "master"
          [ Tx.op (Tx.Create_account { destination = pub name; starting_balance = xlm 100_000 }) ])
      state
      [ "usd-issuer"; "mxn-issuer"; "eur-issuer"; "mm1"; "mm2"; "mm3"; "alice" ]
  in
  let state = trust state "mm1" (usd ()) in
  let state = pay state "usd-issuer" "mm1" (usd ()) (xlm 100_000) in
  let state = trust state "mm2" (mxn ()) in
  let state = pay state "mxn-issuer" "mm2" (mxn ()) (xlm 100_000) in
  let state = trust state "mm3" (usd ()) in
  let state = trust state "mm3" (mxn ()) in
  let state = pay state "mxn-issuer" "mm3" (mxn ()) (xlm 100_000) in
  (* mm1 buys USD with XLM: sells XLM at 0.5 USD/XLM (1 USD costs 2 XLM) *)
  let state = offer state "mm1" ~selling:Asset.native ~buying:(usd ()) ~amount:(xlm 10_000) ~n:1 ~d:2 in
  (* mm2 sells MXN for XLM at 8 MXN/XLM *)
  let state = offer state "mm2" ~selling:(mxn ()) ~buying:Asset.native ~amount:(xlm 50_000) ~n:1 ~d:8 in
  (* mm3 also offers a direct USD->MXN conversion, but at a worse rate:
     sells MXN for USD at 12 MXN per USD (vs 16 via XLM) *)
  let state = offer state "mm3" ~selling:(mxn ()) ~buying:(usd ()) ~amount:(xlm 50_000) ~n:1 ~d:12 in
  state

let pathfinder_tests =
  let open Alcotest in
  [
    test_case "direct same-asset route" `Quick (fun () ->
        let state = setup () in
        let routes =
          Pathfinder.find state ~source_assets:[ usd () ] ~dest_asset:(usd ())
            ~dest_amount:(xlm 5) ()
        in
        match routes with
        | r :: _ ->
            check int "cost is the amount" (xlm 5) r.Pathfinder.send_amount;
            check int "no hops" 0 r.Pathfinder.hops
        | [] -> fail "no route");
    test_case "one-hop and two-hop routes found, cheapest first" `Quick (fun () ->
        let state = setup () in
        let routes =
          Pathfinder.find state ~source_assets:[ usd () ] ~dest_asset:(mxn ())
            ~dest_amount:(xlm 16) ()
        in
        check bool "at least two routes" true (List.length routes >= 2);
        let best = List.hd routes in
        (* via XLM: 16 MXN -> 2 XLM -> 1 USD; direct: 16 MXN at 12/USD ->
           1.34 USD. The 2-hop route must win. *)
        check int "best costs 1 USD" (xlm 1) best.Pathfinder.send_amount;
        check int "via one intermediate" 1 (List.length best.Pathfinder.path);
        check bool "intermediate is XLM" true
          (Asset.is_native (List.hd best.Pathfinder.path)));
    test_case "max_hops prunes longer routes" `Quick (fun () ->
        let state = setup () in
        let routes =
          Pathfinder.find state ~source_assets:[ usd () ] ~dest_asset:(mxn ())
            ~dest_amount:(xlm 16) ~max_hops:1 ()
        in
        check bool "only the direct book" true
          (List.for_all (fun r -> r.Pathfinder.path = []) routes));
    test_case "estimate matches executed path payment" `Quick (fun () ->
        let state = setup () in
        let routes =
          Pathfinder.find state ~source_assets:[ usd () ] ~dest_asset:(mxn ())
            ~dest_amount:(xlm 16) ()
        in
        let best = List.hd routes in
        (* fund alice and execute the suggested path payment *)
        let state = trust state "alice" (usd ()) in
        let state = pay state "usd-issuer" "alice" (usd ()) (xlm 10) in
        let state = trust state "alice" (mxn ()) in
        let before = (Option.get (State.trustline state (pub "alice") (usd ()))).Entry.tl_balance in
        let state =
          submit state "alice"
            [
              Tx.op
                (Tx.Path_payment
                   {
                     send_asset = usd ();
                     send_max = best.Pathfinder.send_amount;
                     destination = pub "alice";
                     dest_asset = mxn ();
                     dest_amount = xlm 16;
                     path = best.Pathfinder.path;
                   });
            ]
        in
        let after = (Option.get (State.trustline state (pub "alice") (usd ()))).Entry.tl_balance in
        check int "spent exactly the estimate" best.Pathfinder.send_amount (before - after));
    test_case "no route when books are empty" `Quick (fun () ->
        let state = setup () in
        let routes =
          Pathfinder.find state ~source_assets:[ eur () ] ~dest_asset:(mxn ())
            ~dest_amount:(xlm 1) ()
        in
        check int "none" 0 (List.length routes));
    test_case "thin book limits the route" `Quick (fun () ->
        let state = setup () in
        (* ask for more MXN than mm2+mm3 can sell *)
        let routes =
          Pathfinder.find state ~source_assets:[ usd () ] ~dest_asset:(mxn ())
            ~dest_amount:(xlm 200_000) ()
        in
        check int "too thin" 0 (List.length routes));
  ]

let query_tests =
  let open Alcotest in
  [
    test_case "account view" `Quick (fun () ->
        let state = setup () in
        match Queries.account state (pub "mm1") with
        | Some v ->
            check int "one trustline" 1 (List.length v.Queries.balances);
            check int "one offer" 1 (List.length v.Queries.offer_ids)
        | None -> fail "account missing");
    test_case "order book view aggregates by price" `Quick (fun () ->
        let state = setup () in
        let book = Queries.order_book state ~base:(mxn ()) ~quote:Asset.native in
        check int "one ask level" 1 (List.length book.Queries.asks);
        check int "no bids" 0 (List.length book.Queries.bids);
        let lvl = List.hd book.Queries.asks in
        check int "depth" (xlm 50_000) lvl.Queries.amount);
    test_case "unknown account" `Quick (fun () ->
        let state = setup () in
        check bool "none" true (Queries.account state (Stellar_crypto.Sha256.digest "nobody") = None));
  ]

let () =
  Alcotest.run "horizon" [ ("pathfinder", pathfinder_tests); ("queries", query_tests) ]
