open Quorum_analysis

let id i = Stellar_crypto.Sha256.digest (Printf.sprintf "qnode-%d" i)

let clique ids threshold =
  List.map (fun v -> (v, Scp.Quorum_set.make ~threshold ids)) ids

let intersection_tests =
  let open Alcotest in
  [
    test_case "majority clique intersects" `Quick (fun () ->
        let ids = List.init 4 id in
        let config = Network_config.of_assoc (clique ids 3) in
        check bool "intersecting" true (Intersection.check config = Intersection.Intersecting));
    test_case "2-of-4 clique splits" `Quick (fun () ->
        (* threshold below majority: two disjoint pairs are each quorums *)
        let ids = List.init 4 id in
        let config = Network_config.of_assoc (clique ids 2) in
        match Intersection.check config with
        | Intersection.Disjoint (a, b) ->
            check bool "witness disjoint" true
              (List.for_all (fun x -> not (List.mem x b)) a);
            check bool "both non-empty" true (a <> [] && b <> [])
        | _ -> fail "expected disjoint");
    test_case "two separate cliques split" `Quick (fun () ->
        let g1 = List.init 3 id in
        let g2 = List.init 3 (fun i -> id (i + 10)) in
        let config = Network_config.of_assoc (clique g1 2 @ clique g2 2) in
        (match Intersection.check config with
        | Intersection.Disjoint _ -> ()
        | _ -> fail "expected disjoint"));
    test_case "no quorum when thresholds unsatisfiable" `Quick (fun () ->
        (* a requires b in every slice and vice versa, but each also
           requires a missing node *)
        let a = id 1 and b = id 2 and ghost = id 99 in
        let config =
          Network_config.of_assoc
            [
              (a, Scp.Quorum_set.make ~threshold:2 [ b; ghost ]);
              (b, Scp.Quorum_set.make ~threshold:2 [ a; ghost ]);
            ]
        in
        check bool "no quorum" true (Intersection.check config = Intersection.No_quorum));
    test_case "greatest quorum / transitive closure" `Quick (fun () ->
        let ids = List.init 3 id in
        let config = Network_config.of_assoc (clique ids 2) in
        check int "gq size" 3
          (List.length (Network_config.greatest_quorum config (Network_config.nodes config)));
        check int "closure" 3 (List.length (Network_config.transitive_closure config (id 0))));
    test_case "byzantine nodes enable splits" `Quick (fun () ->
        (* 3-of-5 clique is intersecting, but with one node byzantine the
           remaining 4 honest with effective 2-of-4... still need 3-of-5
           slices: sets {h1,h2}+byz satisfy 3 threshold: two disjoint honest
           pairs can each form quorums with the byz node's help *)
        let ids = List.init 5 id in
        let config = Network_config.of_assoc (clique ids 3) in
        check bool "honest-only intersects" true
          (Intersection.check config = Intersection.Intersecting);
        match Intersection.check ~byzantine:[ id 0 ] config with
        | Intersection.Disjoint _ -> ()
        | _ -> fail "expected split with byzantine helper");
    test_case "paper §6 incident shape: one-sided dependence keeps safety" `Quick
      (fun () ->
        (* leaves depending on a safe core cannot create disjoint quorums *)
        let core = List.init 4 id in
        let leaf = id 20 in
        let core_qs = clique core 3 in
        let config =
          Network_config.of_assoc ((leaf, Scp.Quorum_set.make ~threshold:3 core) :: core_qs)
        in
        check bool "still intersecting" true
          (Intersection.check config = Intersection.Intersecting));
  ]

let criticality_tests =
  let open Alcotest in
  [
    test_case "single bridging org is critical" `Quick (fun () ->
        (* two 2-of-3 islands joined only through org X's node in both
           slices; if X misbehaves the islands split *)
        let g1 = List.init 2 id in
        let g2 = List.init 2 (fun i -> id (i + 10)) in
        let bridge = id 50 in
        let q1 = Scp.Quorum_set.make ~threshold:3 (g1 @ [ bridge ]) in
        let q2 = Scp.Quorum_set.make ~threshold:3 (g2 @ [ bridge ]) in
        let qb = Scp.Quorum_set.make ~threshold:3 (g1 @ [ bridge ]) in
        let config =
          Network_config.of_assoc
            (List.map (fun v -> (v, q1)) g1
            @ List.map (fun v -> (v, q2)) g2
            @ [ (bridge, qb) ])
        in
        check bool "whole net is fine" true
          (Intersection.check config = Intersection.Intersecting);
        let orgs =
          [
            { Criticality.name = "bridge"; validators = [ bridge ] };
            { Criticality.name = "g1"; validators = g1 };
          ]
        in
        let critical = Criticality.critical_orgs config orgs in
        check bool "bridge is critical" true
          (List.exists (fun o -> o.Criticality.name = "bridge") critical));
    test_case "robust tiered config has no critical org" `Quick (fun () ->
        let orgs =
          List.init 5 (fun oi ->
              Synthesis.org ~quality:Synthesis.Critical
                ~name:(Printf.sprintf "org%d" oi)
                (List.init 3 (fun vi -> id ((10 * oi) + vi))))
        in
        let config = Synthesis.network_config orgs in
        let crit =
          Criticality.critical_orgs config
            (List.map
               (fun o ->
                 { Criticality.name = o.Synthesis.name; validators = o.Synthesis.validators })
               orgs)
        in
        check int "none critical" 0 (List.length crit));
  ]

let synthesis_tests =
  let open Alcotest in
  [
    test_case "51% org thresholds" `Quick (fun () ->
        check int "3 validators" 2 (Synthesis.org_threshold 3);
        check int "4 validators" 3 (Synthesis.org_threshold 4);
        check int "5 validators" 3 (Synthesis.org_threshold 5));
    test_case "critical group uses 100% threshold" `Quick (fun () ->
        let orgs =
          List.init 3 (fun oi ->
              Synthesis.org ~quality:Synthesis.Critical ~name:(Printf.sprintf "o%d" oi)
                (List.init 3 (fun vi -> id ((10 * oi) + vi))))
        in
        let q = Synthesis.quorum_set orgs in
        check int "100% of 3 entries" 3 q.Scp.Quorum_set.threshold;
        check int "3 inner org sets" 3 (List.length q.Scp.Quorum_set.inner));
    test_case "mixed tiers nest (Fig. 6 shape)" `Quick (fun () ->
        let mk q oi = Synthesis.org ~quality:q ~name:(Printf.sprintf "o%d" oi)
            (List.init 3 (fun vi -> id ((10 * oi) + vi))) in
        let orgs = [ mk Synthesis.Critical 0; mk Synthesis.Critical 1; mk Synthesis.High 2; mk Synthesis.Medium 3 ] in
        let q = Synthesis.quorum_set orgs in
        (* top group: 2 critical orgs + high group = 3 entries at 100% *)
        check int "top threshold" 3 q.Scp.Quorum_set.threshold;
        check int "top entries" 3 (List.length q.Scp.Quorum_set.inner);
        check bool "is sane" true (Scp.Quorum_set.is_sane q);
        (* and the synthesized config must intersect *)
        let config = Synthesis.network_config orgs in
        check bool "intersecting" true (Intersection.check config = Intersection.Intersecting));
    test_case "archives required at high tiers" `Quick (fun () ->
        let o = Synthesis.org ~quality:Synthesis.Critical ~has_archive:false ~name:"x" [ id 1 ] in
        check_raises "rejected"
          (Invalid_argument "Synthesis: org x is high-quality but publishes no archive")
          (fun () -> ignore (Synthesis.quorum_set [ o ])));
    test_case "synthesized config survives one org down (availability)" `Quick (fun () ->
        let orgs =
          List.init 4 (fun oi ->
              Synthesis.org ~quality:Synthesis.High ~name:(Printf.sprintf "o%d" oi)
                (List.init 3 (fun vi -> id ((10 * oi) + vi))))
        in
        let q = Synthesis.quorum_set orgs in
        (* 67% of 4 orgs = 3: with one org entirely down, the remaining
           9 validators still contain a slice *)
        let up = List.concat_map (fun o -> o.Synthesis.validators) (List.tl orgs) in
        check bool "slice without org0" true
          (Scp.Quorum_set.is_quorum_slice q (fun v -> List.mem v up)));
  ]

let () =
  Alcotest.run "quorum"
    [
      ("intersection", intersection_tests);
      ("criticality", criticality_tests);
      ("synthesis", synthesis_tests);
    ]
