open Baseline_pbft

let setup ?(n = 4) ?(latency = Stellar_sim.Latency.datacenter) () =
  let engine = Stellar_sim.Engine.create () in
  let rng = Stellar_sim.Rng.create ~seed:11 in
  let decisions = Hashtbl.create 16 in
  let cluster =
    Pbft.create ~engine ~rng ~n ~latency
      ~on_decide:(fun ~seq value ->
        Hashtbl.replace decisions seq
          (value :: Option.value ~default:[] (Hashtbl.find_opt decisions seq)))
      ()
  in
  (engine, cluster, decisions)

let tests =
  let open Alcotest in
  [
    test_case "4 replicas decide a value" `Quick (fun () ->
        let engine, cluster, decisions = setup () in
        Pbft.propose cluster "block-1";
        Stellar_sim.Engine.run ~until:10.0 engine;
        match Hashtbl.find_opt decisions 1 with
        | Some values ->
            check int "all four replicas decided" 4 (List.length values);
            check bool "same value" true (List.for_all (String.equal "block-1") values)
        | None -> fail "no decision");
    test_case "sequence of proposals decides in order" `Quick (fun () ->
        let engine, cluster, _ = setup () in
        for i = 1 to 5 do
          ignore
            (Stellar_sim.Engine.schedule engine ~delay:(float_of_int i) (fun () ->
                 Pbft.propose cluster (Printf.sprintf "block-%d" i)))
        done;
        Stellar_sim.Engine.run ~until:30.0 engine;
        let log = Pbft.decided cluster 1 in
        check int "five decisions" 5 (List.length log);
        List.iteri
          (fun i (seq, v) ->
            check int "ordered" (i + 1) seq;
            check string "value" (Printf.sprintf "block-%d" (i + 1)) v)
          log);
    test_case "primary crash triggers view change, still decides" `Quick (fun () ->
        let engine, cluster, decisions = setup () in
        check int "initial primary" 0 (Pbft.primary cluster);
        Pbft.crash cluster 0;
        Pbft.propose cluster "after-crash";
        Stellar_sim.Engine.run ~until:30.0 engine;
        check bool "view advanced" true (Pbft.view cluster > 0);
        let decided =
          Hashtbl.fold (fun _ vs acc -> acc + List.length vs) decisions 0
        in
        check bool "live replicas decided" true (decided >= 3));
    test_case "message complexity is O(n^2)" `Quick (fun () ->
        let _, c4, _ = setup ~n:4 () in
        let engine4, _, _ = ((), (), ()) in
        ignore engine4;
        let e1, cluster7, _ = setup ~n:7 () in
        ignore c4;
        Pbft.propose cluster7 "x";
        Stellar_sim.Engine.run ~until:10.0 e1;
        let m7 = Pbft.message_count cluster7 in
        let e2, cluster4, _ = setup ~n:4 () in
        Pbft.propose cluster4 "x";
        Stellar_sim.Engine.run ~until:10.0 e2;
        let m4 = Pbft.message_count cluster4 in
        check bool "grows superlinearly" true (float_of_int m7 > 1.8 *. float_of_int m4));
    test_case "n < 4 rejected" `Quick (fun () ->
        let engine = Stellar_sim.Engine.create () in
        let rng = Stellar_sim.Rng.create ~seed:1 in
        check_raises "too small" (Invalid_argument "Pbft.create: need n >= 4") (fun () ->
            ignore
              (Pbft.create ~engine ~rng ~n:3 ~latency:Stellar_sim.Latency.datacenter
                 ~on_decide:(fun ~seq:_ _ -> ())
                 ())));
  ]

let () = Alcotest.run "baseline" [ ("pbft", tests) ]
