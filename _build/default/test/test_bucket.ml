open Stellar_bucket
open Stellar_ledger

let acct i balance =
  Entry.new_account ~id:(Stellar_crypto.Sha256.digest (Printf.sprintf "acct%d" i)) ~balance ~seq_num:0

let item_of i balance =
  let a = acct i balance in
  { Bucket.key = Entry.Account_key a.Entry.id; entry = Some (Entry.Account_entry a) }

let dead_of i =
  let a = acct i 0 in
  { Bucket.key = Entry.Account_key a.Entry.id; entry = None }

let bucket_tests =
  let open Alcotest in
  [
    test_case "of_items sorts and dedups (last wins)" `Quick (fun () ->
        let b = Bucket.of_items [ item_of 3 1; item_of 1 1; item_of 3 99; item_of 2 1 ] in
        check int "three items" 3 (Bucket.size b);
        match Bucket.find b (Entry.Account_key (acct 3 0).Entry.id) with
        | Some { entry = Some (Entry.Account_entry a); _ } ->
            check int "latest balance" 99 a.Entry.balance
        | _ -> fail "missing");
    test_case "hash deterministic and content-sensitive" `Quick (fun () ->
        let b1 = Bucket.of_items [ item_of 1 5; item_of 2 5 ] in
        let b2 = Bucket.of_items [ item_of 2 5; item_of 1 5 ] in
        let b3 = Bucket.of_items [ item_of 1 5; item_of 2 6 ] in
        check bool "order independent" true (Bucket.hash b1 = Bucket.hash b2);
        check bool "content sensitive" false (Bucket.hash b1 = Bucket.hash b3));
    test_case "merge: newer shadows older" `Quick (fun () ->
        let older = Bucket.of_items [ item_of 1 10; item_of 2 10 ] in
        let newer = Bucket.of_items [ item_of 1 20 ] in
        let m = Bucket.merge ~newer ~older ~keep_tombstones:true in
        check int "two keys" 2 (Bucket.size m);
        match Bucket.find m (Entry.Account_key (acct 1 0).Entry.id) with
        | Some { entry = Some (Entry.Account_entry a); _ } -> check int "newer" 20 a.Entry.balance
        | _ -> fail "missing");
    test_case "tombstones kept or dropped" `Quick (fun () ->
        let older = Bucket.of_items [ item_of 1 10 ] in
        let newer = Bucket.of_items [ dead_of 1 ] in
        let kept = Bucket.merge ~newer ~older ~keep_tombstones:true in
        let dropped = Bucket.merge ~newer ~older ~keep_tombstones:false in
        check int "tombstone kept" 1 (Bucket.size kept);
        check int "tombstone dropped at bottom" 0 (Bucket.size dropped));
    test_case "find on empty" `Quick (fun () ->
        check bool "none" true (Bucket.find Bucket.empty (Entry.Offer_key 1) = None));
  ]

let bucket_prop =
  QCheck.Test.make ~name:"merge contains union of keys" ~count:200
    QCheck.(pair (small_list (int_bound 50)) (small_list (int_bound 50)))
    (fun (xs, ys) ->
      let b1 = Bucket.of_items (List.map (fun i -> item_of i 1) xs) in
      let b2 = Bucket.of_items (List.map (fun i -> item_of i 2) ys) in
      let m = Bucket.merge ~newer:b1 ~older:b2 ~keep_tombstones:true in
      let expect = List.sort_uniq Int.compare (xs @ ys) in
      Bucket.size m = List.length expect)

let list_tests =
  let open Alcotest in
  [
    test_case "hash changes with every batch" `Quick (fun () ->
        let bl = ref (Bucket_list.create ()) in
        let seen = Hashtbl.create 16 in
        for i = 1 to 40 do
          bl := Bucket_list.add_batch !bl [ item_of i i ];
          let h = Bucket_list.hash !bl in
          Alcotest.(check bool) "fresh hash" false (Hashtbl.mem seen h);
          Hashtbl.replace seen h ()
        done);
    test_case "spills push mass to deeper levels" `Quick (fun () ->
        let bl = ref (Bucket_list.create ~levels:4 ~spill_factor:2 ()) in
        for i = 1 to 32 do
          bl := Bucket_list.add_batch !bl [ item_of i 1 ]
        done;
        let sizes = Bucket_list.level_sizes !bl in
        (* deepest level should hold most entries *)
        let deepest = List.nth sizes 3 in
        check bool "bottom heavy" true (deepest > List.hd sizes);
        check int "nothing lost" 32 (List.length (Bucket_list.live_entries !bl)));
    test_case "find newest version wins across levels" `Quick (fun () ->
        let bl = ref (Bucket_list.create ~levels:3 ~spill_factor:2 ()) in
        bl := Bucket_list.add_batch !bl [ item_of 7 1 ];
        for i = 100 to 110 do
          bl := Bucket_list.add_batch !bl [ item_of i 1 ]
        done;
        bl := Bucket_list.add_batch !bl [ item_of 7 42 ];
        (match Bucket_list.find !bl (Entry.Account_key (acct 7 0).Entry.id) with
        | Some { entry = Some (Entry.Account_entry a); _ } ->
            check int "newest" 42 a.Entry.balance
        | _ -> fail "missing");
        (* live view also has exactly one copy *)
        let live =
          Bucket_list.live_entries !bl
          |> List.filter (fun e ->
                 match e with
                 | Entry.Account_entry a -> String.equal a.Entry.id (acct 7 0).Entry.id
                 | _ -> false)
        in
        check int "one copy" 1 (List.length live));
    test_case "deletion tombstone hides entry" `Quick (fun () ->
        let bl = ref (Bucket_list.create ()) in
        bl := Bucket_list.add_batch !bl [ item_of 1 5 ];
        bl := Bucket_list.add_batch !bl [ dead_of 1 ];
        check int "not live" 0 (List.length (Bucket_list.live_entries !bl)));
    test_case "diff_levels pinpoints divergence" `Quick (fun () ->
        let a = ref (Bucket_list.create ()) and b = ref (Bucket_list.create ()) in
        for i = 1 to 10 do
          a := Bucket_list.add_batch !a [ item_of i 1 ];
          b := Bucket_list.add_batch !b [ item_of i 1 ]
        done;
        check (list int) "identical" [] (Bucket_list.diff_levels !a !b);
        a := Bucket_list.add_batch !a [ item_of 99 1 ];
        b := Bucket_list.add_batch !b [ item_of 98 1 ];
        check bool "differ somewhere" true (Bucket_list.diff_levels !a !b <> []));
    test_case "of_state holds the full snapshot" `Quick (fun () ->
        let master = Stellar_crypto.Sha256.digest "m" in
        let state = State.genesis ~master ~total_xlm:1000 () in
        let bl = Bucket_list.of_state state in
        check int "entries" (List.length (State.all_entries state))
          (List.length (Bucket_list.live_entries bl)));
    test_case "reconstruction matches incremental state" `Quick (fun () ->
        (* apply random account updates both to a State and via batches;
           live_entries must equal the state's entries *)
        let master = Stellar_crypto.Sha256.digest "m" in
        let state = ref (State.genesis ~master ~total_xlm:1_000_000 ()) in
        let bl = ref (Bucket_list.of_state !state) in
        let _, cleared = State.take_dirty !state in
        ignore cleared;
        for round = 1 to 25 do
          let a = acct (round mod 7) (round * 10) in
          state := State.put_account !state a;
          let s', dirty = State.take_dirty !state in
          state := s';
          let batch =
            List.map (fun key -> { Bucket.key; entry = State.lookup s' key }) dirty
          in
          bl := Bucket_list.add_batch !bl batch
        done;
        let from_bl =
          Bucket_list.live_entries !bl |> List.map Entry.encode_entry |> List.sort compare
        in
        let from_state =
          State.all_entries !state |> List.map Entry.encode_entry |> List.sort compare
        in
        check bool "same entries" true (from_bl = from_state));
  ]

let () =
  Alcotest.run "bucket"
    [
      ("bucket", bucket_tests @ [ QCheck_alcotest.to_alcotest bucket_prop ]);
      ("bucket-list", list_tests);
    ]
