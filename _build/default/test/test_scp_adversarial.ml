module Scp_harness = Scp_test_harness.Scp_harness
(* Adversarial and state-machine-level SCP tests: Byzantine equivocation,
   signature forgery, crafted ballot statements, and randomized convergence
   properties. *)

open Scp

(* ---------- a driver stub for driving Ballot/Nomination in isolation ---------- *)

type probe = {
  emitted : Types.envelope list ref;
  externalized : (int * Types.value) list ref;
  driver : Driver.t;
}

let make_probe () =
  let emitted = ref [] in
  let externalized = ref [] in
  let driver =
    Driver.make
      ~emit_envelope:(fun env -> emitted := env :: !emitted)
      ~sign:(fun _ -> "stub-signature")
      ~verify:(fun _ ~msg:_ ~signature:_ -> true)
      ~validate_value:(fun ~slot:_ _ -> Driver.Valid)
      ~combine_candidates:(fun ~slot:_ values ->
        match List.sort (fun a b -> String.compare b a) values with
        | v :: _ -> Some v
        | [] -> None)
      ~value_externalized:(fun ~slot value -> externalized := (slot, value) :: !externalized)
      ~schedule:(fun ~delay:_ _ -> fun () -> ())
      ()
  in
  { emitted; externalized; driver }

let id c = String.make 32 c
let v_self = id 's'
let peers = [ id 'a'; id 'b'; id 'c' ]
let qset = Quorum_set.majority (v_self :: peers) (* 3 of 4 *)

let wrap st = { Types.statement = st; signature = "stub-signature" }

let prepare_st node ~counter ~value ?prepared ?(n_c = 0) ?(n_h = 0) () =
  Types.
    {
      node_id = node;
      slot = 1;
      quorum_set = qset;
      pledge =
        Prepare
          {
            ballot = { counter; value };
            prepared;
            prepared_prime = None;
            n_c;
            n_h;
          };
    }

let confirm_st node ~counter ~value ~n_prepared ~n_commit ~n_h =
  Types.
    {
      node_id = node;
      slot = 1;
      quorum_set = qset;
      pledge = Confirm { ballot = { counter; value }; n_prepared; n_commit; n_h };
    }

let ballot_tests =
  let open Alcotest in
  [
    test_case "votes from a quorum accept-prepare the ballot" `Quick (fun () ->
        let p = make_probe () in
        let b = Ballot.create ~slot:1 ~local_id:v_self ~get_qset:(fun () -> qset) ~driver:p.driver in
        ignore (Ballot.bump b ~value:"X" ~force:false);
        check bool "no prepared yet" true (Ballot.prepared b = None);
        (* two peers + self vote prepare <1,X>: quorum of 3 *)
        List.iteri
          (fun i peer ->
            let r = Ballot.process_envelope b (wrap (prepare_st peer ~counter:1 ~value:"X" ())) in
            check bool (Printf.sprintf "processed %d" i) true (r = `Processed))
          [ List.nth peers 0; List.nth peers 1 ];
        (match Ballot.prepared b with
        | Some pb ->
            check int "prepared counter" 1 pb.Types.counter;
            check string "prepared value" "X" pb.Types.value
        | None -> fail "ballot not accepted prepared");
        (* progress must have been announced to peers *)
        check bool "emitted updated statements" true (List.length !(p.emitted) >= 2));
    test_case "full path to externalize from crafted statements" `Quick (fun () ->
        let p = make_probe () in
        let b = Ballot.create ~slot:1 ~local_id:v_self ~get_qset:(fun () -> qset) ~driver:p.driver in
        ignore (Ballot.bump b ~value:"X" ~force:false);
        (* peers accept-prepared <1,X> and vote commit: PREPARE with
           prepared set and c/h counters *)
        List.iter
          (fun peer ->
            ignore
              (Ballot.process_envelope b
                 (wrap
                    (prepare_st peer ~counter:1 ~value:"X"
                       ~prepared:{ Types.counter = 1; value = "X" } ~n_c:1 ~n_h:1 ()))))
          peers;
        check bool "reached confirm phase" true (Ballot.phase b <> Ballot.Prepare_phase);
        (* peers now confirm the commit *)
        List.iter
          (fun peer ->
            ignore
              (Ballot.process_envelope b
                 (wrap (confirm_st peer ~counter:1 ~value:"X" ~n_prepared:1 ~n_commit:1 ~n_h:1))))
          peers;
        check (option string) "externalized X" (Some "X") (Ballot.externalized_value b);
        check bool "reported to driver" true (List.mem_assoc 1 !(p.externalized)));
    test_case "insane statements rejected" `Quick (fun () ->
        let p = make_probe () in
        let b = Ballot.create ~slot:1 ~local_id:v_self ~get_qset:(fun () -> qset) ~driver:p.driver in
        ignore (Ballot.bump b ~value:"X" ~force:false);
        (* n_c > n_h is nonsense *)
        let bad = prepare_st (List.hd peers) ~counter:2 ~value:"X"
            ~prepared:{ Types.counter = 2; value = "X" } ~n_c:2 ~n_h:1 () in
        check bool "invalid" true (Ballot.process_envelope b (wrap bad) = `Invalid);
        (* counter 0 is nonsense *)
        let bad2 = prepare_st (List.hd peers) ~counter:0 ~value:"X" () in
        check bool "invalid counter" true (Ballot.process_envelope b (wrap bad2) = `Invalid));
    test_case "stale (older) statements ignored" `Quick (fun () ->
        let p = make_probe () in
        let b = Ballot.create ~slot:1 ~local_id:v_self ~get_qset:(fun () -> qset) ~driver:p.driver in
        ignore (Ballot.bump b ~value:"X" ~force:false);
        let peer = List.hd peers in
        ignore (Ballot.process_envelope b (wrap (prepare_st peer ~counter:3 ~value:"X" ())));
        check bool "older ballot is stale" true
          (Ballot.process_envelope b (wrap (prepare_st peer ~counter:2 ~value:"X" ())) = `Stale));
    test_case "v-blocking set ahead forces a counter jump (§3.2.4)" `Quick (fun () ->
        let p = make_probe () in
        let b = Ballot.create ~slot:1 ~local_id:v_self ~get_qset:(fun () -> qset) ~driver:p.driver in
        ignore (Ballot.bump b ~value:"X" ~force:false);
        check int "at counter 1" 1 (Option.get (Ballot.current_ballot b)).Types.counter;
        (* two peers (v-blocking for a 3-of-4 qset) jump to counter 5 *)
        ignore (Ballot.process_envelope b (wrap (prepare_st (List.nth peers 0) ~counter:5 ~value:"X" ())));
        check int "still at 1 (one peer is not blocking)" 1
          (Option.get (Ballot.current_ballot b)).Types.counter;
        ignore (Ballot.process_envelope b (wrap (prepare_st (List.nth peers 1) ~counter:5 ~value:"X" ())));
        check int "jumped to 5" 5 (Option.get (Ballot.current_ballot b)).Types.counter);
    test_case "no commit without confirmed prepare" `Quick (fun () ->
        let p = make_probe () in
        let b = Ballot.create ~slot:1 ~local_id:v_self ~get_qset:(fun () -> qset) ~driver:p.driver in
        ignore (Ballot.bump b ~value:"X" ~force:false);
        (* a single peer claiming commit must not move us past prepare *)
        ignore
          (Ballot.process_envelope b
             (wrap (confirm_st (List.hd peers) ~counter:1 ~value:"X" ~n_prepared:1 ~n_commit:1 ~n_h:1)));
        check bool "still in prepare phase" true (Ballot.phase b = Ballot.Prepare_phase);
        check bool "not externalized" true (Ballot.externalized_value b = None));
  ]

(* ---------- Byzantine behaviour over the full harness ---------- *)

let byzantine_tests =
  let open Alcotest in
  [
    test_case "equivocating nominator cannot split honest nodes" `Quick (fun () ->
        (* node 4 sends a different nomination vote to every peer *)
        let h =
          Scp_harness.make ~n:5
            ~qset_of:(fun ids _ -> Quorum_set.majority (Array.to_list ids))
            ()
        in
        let byz = h.Scp_harness.nodes.(4) in
        let forge target_value =
          let st =
            Types.
              {
                node_id = byz.Scp_harness.id;
                slot = 1;
                quorum_set = Quorum_set.majority (Array.to_list h.Scp_harness.ids);
                pledge = Nominate { votes = [ target_value ]; accepted = [] };
              }
          in
          let signature =
            Stellar_crypto.Sim_sig.sign byz.Scp_harness.secret (Types.statement_bytes st)
          in
          { Types.statement = st; signature }
        in
        (* equivocate: different value to each honest node *)
        for i = 0 to 3 do
          Stellar_sim.Network.send h.Scp_harness.network ~src:4 ~dst:i ~size:200
            (forge (Printf.sprintf "evil-%d" i))
        done;
        Scp_harness.nominate_all h (fun i -> Printf.sprintf "honest-%d" i);
        Scp_harness.run h;
        check bool "honest nodes agree" true (Scp_harness.unanimous ~except:[ 4 ] h));
    test_case "forged envelopes are rejected" `Quick (fun () ->
        let h =
          Scp_harness.make ~n:4
            ~qset_of:(fun ids _ -> Quorum_set.majority (Array.to_list ids))
            ()
        in
        let victim = h.Scp_harness.nodes.(0) in
        let attacker = h.Scp_harness.nodes.(3) in
        (* attacker signs a statement claiming to be the victim *)
        let st =
          Types.
            {
              node_id = victim.Scp_harness.id;
              slot = 1;
              quorum_set = Quorum_set.majority (Array.to_list h.Scp_harness.ids);
              pledge = Nominate { votes = [ "forged" ]; accepted = [] };
            }
        in
        let signature =
          Stellar_crypto.Sim_sig.sign attacker.Scp_harness.secret (Types.statement_bytes st)
        in
        let env = { Types.statement = st; signature } in
        let result =
          Protocol.receive_envelope h.Scp_harness.nodes.(1).Scp_harness.protocol env
        in
        check bool "rejected" true (result = `Invalid));
    test_case "byzantine ballot equivocation cannot violate safety" `Quick (fun () ->
        (* node 4 sends conflicting PREPARE statements for different values
           to different honest nodes throughout the run *)
        let h =
          Scp_harness.make ~n:5
            ~qset_of:(fun ids _ -> Quorum_set.majority (Array.to_list ids))
            ()
        in
        let byz = h.Scp_harness.nodes.(4) in
        let forge_prepare value counter =
          let st =
            Types.
              {
                node_id = byz.Scp_harness.id;
                slot = 1;
                quorum_set = Quorum_set.majority (Array.to_list h.Scp_harness.ids);
                pledge =
                  Prepare
                    {
                      ballot = { counter; value };
                      prepared = None;
                      prepared_prime = None;
                      n_c = 0;
                      n_h = 0;
                    };
              }
          in
          let signature =
            Stellar_crypto.Sim_sig.sign byz.Scp_harness.secret (Types.statement_bytes st)
          in
          { Types.statement = st; signature }
        in
        (* schedule equivocations over the first seconds *)
        for round = 1 to 5 do
          ignore
            (Stellar_sim.Engine.schedule h.Scp_harness.engine
               ~delay:(float_of_int round)
               (fun () ->
                 for i = 0 to 3 do
                   Stellar_sim.Network.send h.Scp_harness.network ~src:4 ~dst:i ~size:200
                     (forge_prepare (Printf.sprintf "evil-%d-%d" round i) round)
                 done))
        done;
        Scp_harness.nominate_all h (fun i -> Printf.sprintf "honest-%d" i);
        Scp_harness.run h;
        check bool "honest nodes agree despite equivocation" true
          (Scp_harness.unanimous ~except:[ 4 ] h));
  ]

(* ---------- randomized convergence ---------- *)

let random_convergence =
  QCheck.Test.make ~name:"random networks converge and agree" ~count:12
    QCheck.(pair (int_range 3 7) (int_bound 10_000))
    (fun (n, seed) ->
      let h =
        Scp_harness.make ~seed
          ~latency:(Stellar_sim.Latency.Uniform { lo = 0.001; hi = 0.2 })
          ~n
          ~qset_of:(fun ids _ -> Quorum_set.majority (Array.to_list ids))
          ()
      in
      Scp_harness.nominate_all h (fun i -> Printf.sprintf "v%d" i);
      Scp_harness.run ~until:600.0 h;
      Scp_harness.unanimous h)


(* ---------- nomination state machine ---------- *)

let nomination_tests =
  let open Alcotest in
  let nom_st node ~votes ~accepted =
    wrap
      Types.
        {
          node_id = node;
          slot = 1;
          quorum_set = qset;
          pledge = Nominate { votes; accepted };
        }
  in
  [
    test_case "echoes its leader's vote" `Quick (fun () ->
        let p = make_probe () in
        let candidates = ref [] in
        let n =
          Nomination.create ~slot:1 ~local_id:v_self ~get_qset:(fun () -> qset)
            ~driver:p.driver ~on_candidates:(fun v -> candidates := v :: !candidates)
        in
        Nomination.nominate n ~value:"mine" ~prev:"prev";
        let leaders = Nomination.leaders n in
        check int "one leader in round 1" 1 (List.length leaders);
        let leader = List.hd leaders in
        if not (String.equal leader v_self) then begin
          (* the leader proposes; we must copy its vote *)
          ignore (Nomination.process_envelope n (nom_st leader ~votes:[ "theirs" ] ~accepted:[]));
          let own =
            List.find_opt
              (fun st -> String.equal st.Types.node_id v_self)
              (Nomination.latest_statements n)
          in
          match own with
          | Some { Types.pledge = Types.Nominate nom; _ } ->
              check bool "echoed" true (List.mem "theirs" nom.Types.votes)
          | _ -> fail "no own statement"
        end);
    test_case "quorum of votes -> accepted -> candidate" `Quick (fun () ->
        let p = make_probe () in
        let candidates = ref [] in
        let n =
          Nomination.create ~slot:1 ~local_id:v_self ~get_qset:(fun () -> qset)
            ~driver:p.driver ~on_candidates:(fun v -> candidates := v :: !candidates)
        in
        Nomination.nominate n ~value:"X" ~prev:"prev";
        (* all three peers vote and accept X: quorum for both stages *)
        List.iter
          (fun peer ->
            ignore (Nomination.process_envelope n (nom_st peer ~votes:[ "X" ] ~accepted:[ "X" ])))
          peers;
        check bool "X became a candidate" true (List.mem "X" (Nomination.candidates n));
        check bool "composite reported" true (!candidates <> []));
    test_case "stops voting for new values after a candidate exists" `Quick (fun () ->
        let p = make_probe () in
        let n =
          Nomination.create ~slot:1 ~local_id:v_self ~get_qset:(fun () -> qset)
            ~driver:p.driver ~on_candidates:(fun _ -> ())
        in
        Nomination.nominate n ~value:"X" ~prev:"prev";
        List.iter
          (fun peer ->
            ignore (Nomination.process_envelope n (nom_st peer ~votes:[ "X" ] ~accepted:[ "X" ])))
          peers;
        check bool "candidate exists" true (Nomination.candidates n <> []);
        (* a leader proposing a fresh value must NOT pick up our vote now *)
        let own_votes () =
          match
            List.find_opt
              (fun st -> String.equal st.Types.node_id v_self)
              (Nomination.latest_statements n)
          with
          | Some { Types.pledge = Types.Nominate nom; _ } -> nom.Types.votes
          | _ -> []
        in
        let before = own_votes () in
        List.iter
          (fun peer ->
            ignore
              (Nomination.process_envelope n (nom_st peer ~votes:[ "X"; "Z" ] ~accepted:[ "X" ])))
          [ List.hd peers ];
        check bool "no new plain votes" true
          (List.length (own_votes ()) <= List.length before + 0
          || not (List.mem "Z" (own_votes ())));
        check bool "Z not voted" true (not (List.mem "Z" (own_votes ()))));
    test_case "malformed nominations rejected" `Quick (fun () ->
        let p = make_probe () in
        let n =
          Nomination.create ~slot:1 ~local_id:v_self ~get_qset:(fun () -> qset)
            ~driver:p.driver ~on_candidates:(fun _ -> ())
        in
        Nomination.nominate n ~value:"X" ~prev:"prev";
        (* unsorted votes *)
        check bool "unsorted" true
          (Nomination.process_envelope n (nom_st (List.hd peers) ~votes:[ "b"; "a" ] ~accepted:[])
          = `Invalid);
        (* duplicate votes *)
        check bool "dup" true
          (Nomination.process_envelope n (nom_st (List.hd peers) ~votes:[ "a"; "a" ] ~accepted:[])
          = `Invalid);
        (* empty statement *)
        check bool "empty" true
          (Nomination.process_envelope n (nom_st (List.hd peers) ~votes:[] ~accepted:[])
          = `Invalid));
  ]

(* ---------- §3.2.5 leader fairness: the Europe/China example ---------- *)

let fairness_tests =
  let open Alcotest in
  [
    test_case "leader frequency tracks slice weight" `Quick (fun () ->
        (* an imbalanced configuration: org A contributes 2 of 4 entries via
           a 1-of-10 inner set (each A node has weight 2/4 * 1/10 = 1/20),
           while heavy nodes x,y are direct members (weight 2/4 = 1/2).
           Without weighting, A's 10 nodes would win most rounds. *)
        let a_nodes = List.init 10 (fun i -> id (Char.chr (Char.code 'a' + i))) in
        let x = String.make 32 'X' and y = String.make 32 'Y' in
        let inner = Quorum_set.make ~threshold:1 a_nodes in
        let q = Quorum_set.make ~threshold:2 ~inner:[ inner ] [ x; y ] in
        let heavy = ref 0 and light = ref 0 in
        let trials = 400 in
        for slot = 1 to trials do
          let leader = Leader.round_leader ~qset:q ~self:x ~slot ~prev:"p" ~round:1 in
          if String.equal leader x || String.equal leader y then incr heavy else incr light
        done;
        (* heavy nodes hold 2*(1/2) = 1.0 expected weight vs 10*(1/20) = 0.5:
           they should lead roughly 2/3 of the time *)
        let frac = float_of_int !heavy /. float_of_int trials in
        check bool
          (Printf.sprintf "heavy fraction %.2f in [0.5, 0.85]" frac)
          true
          (frac > 0.5 && frac < 0.85));
  ]

let () =
  Alcotest.run "scp-adversarial"
    [
      ("ballot-machine", ballot_tests);
      ("nomination-machine", nomination_tests);
      ("leader-fairness", fairness_tests);
      ("byzantine", byzantine_tests);
      ("random", [ QCheck_alcotest.to_alcotest random_convergence ]);
    ]
