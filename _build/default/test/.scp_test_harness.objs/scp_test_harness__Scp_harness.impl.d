test/scp_harness.ml: Array Driver List Printf Protocol Scp Stellar_crypto Stellar_sim String Types
