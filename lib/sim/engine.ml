type timer = { mutable cancelled : bool; fire : unit -> unit }

type event = { time : float; seq : int; timer : timer }

type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
  mutable obs : Stellar_obs.Sink.t;
}

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    clock = 0.0;
    next_seq = 0;
    queue = Heap.create ~cmp:compare_event;
    obs = Stellar_obs.Sink.null;
  }

let set_obs t obs = t.obs <- obs

let now t = t.clock

let schedule_at t ~time fire =
  let time = Float.max time t.clock in
  let timer = { cancelled = false; fire } in
  Heap.push t.queue { time; seq = t.next_seq; timer };
  t.next_seq <- t.next_seq + 1;
  timer

let schedule t ~delay fire = schedule_at t ~time:(t.clock +. Float.max 0.0 delay) fire

let cancel timer = timer.cancelled <- true

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- Float.max t.clock ev.time;
      (if ev.timer.cancelled then Stellar_obs.Sink.incr t.obs "sim.events.cancelled"
       else begin
         Stellar_obs.Sink.incr t.obs "sim.events.fired";
         ev.timer.fire ()
       end);
      if Stellar_obs.Sink.enabled t.obs then
        Stellar_obs.Sink.set_gauge t.obs "sim.queue.pending"
          (float_of_int (Heap.size t.queue));
      true

let run ?until t =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some ev -> (
        match until with
        | Some limit when ev.time > limit ->
            t.clock <- limit;
            continue := false
        | _ -> ignore (step t))
  done

let pending t = Heap.size t.queue
