module Obs = Stellar_obs

type stats = {
  msgs_sent : int;
  msgs_received : int;
  bytes_sent : int;
  bytes_received : int;
}

type delivery = {
  msg_id : int;
  sent_at : float;
  link_s : float;
  wait_s : float;
  proc_s : float;
}

(* Per-node accounting lives in a Stellar_obs registry ("overlay.*" names)
   so network traffic and protocol metrics share one namespace; the [stats]
   accessor below is a thin snapshot over it.  Counter handles are cached so
   the send path touches a record field, not a hash table. *)
type node_obs = {
  sink : Obs.Sink.t;
  c_msgs_sent : Obs.Registry.counter;
  c_msgs_received : Obs.Registry.counter;
  c_bytes_sent : Obs.Registry.counter;
  c_bytes_received : Obs.Registry.counter;
}

type 'msg t = {
  engine : Engine.t;
  rng : Rng.t;
  latency : Latency.t;
  processing : int -> float;
  busy_until : float array;  (* receiver CPU queue *)
  handlers : (src:int -> info:delivery -> 'msg -> unit) option array;
  down : bool array;
  node_obs : node_obs array;
  mutable partition : int -> int;
  mutable loss_rate : float;
  mutable total : int;
  mutable next_msg_id : int;
}

let node_obs_of_sink sink =
  let reg = Obs.Sink.metrics sink in
  {
    sink;
    c_msgs_sent = Obs.Registry.counter reg "overlay.msgs.sent";
    c_msgs_received = Obs.Registry.counter reg "overlay.msgs.received";
    c_bytes_sent = Obs.Registry.counter reg "overlay.bytes.sent";
    c_bytes_received = Obs.Registry.counter reg "overlay.bytes.received";
  }

let create ~engine ~rng ~n ~latency ?(processing = fun _ -> 0.0) ?obs () =
  let sink_of i =
    match obs with
    | Some f -> f i
    | None ->
        (* metrics-only sink over a private registry: byte/message accounting
           is part of the network's API and stays on even when tracing is
           off. *)
        Obs.Sink.make ~node:i ~now:(fun () -> Engine.now engine) (Obs.Registry.create ())
  in
  {
    engine;
    rng;
    latency;
    processing;
    busy_until = Array.make n 0.0;
    handlers = Array.make n None;
    down = Array.make n false;
    node_obs = Array.init n (fun i -> node_obs_of_sink (sink_of i));
    partition = (fun _ -> 0);
    loss_rate = 0.0;
    total = 0;
    next_msg_id = 0;
  }

let size t = Array.length t.handlers
let engine t = t.engine
let set_handler t i f = t.handlers.(i) <- Some f
let set_down t i b =
  (* Coming back up clears any CPU-queue backlog accrued before the crash:
     the machine rebooted, its receive queue did not survive. *)
  if t.down.(i) && not b then t.busy_until.(i) <- Engine.now t.engine;
  t.down.(i) <- b
let is_down t i = t.down.(i)
let set_partition t f = t.partition <- f
let set_loss_rate t r = t.loss_rate <- r

let alloc_msg_id t =
  t.next_msg_id <- t.next_msg_id + 1;
  t.next_msg_id

let registry t i = Obs.Sink.metrics t.node_obs.(i).sink

let stats t i =
  let reg = registry t i in
  {
    msgs_sent = Obs.Registry.counter_value reg "overlay.msgs.sent";
    msgs_received = Obs.Registry.counter_value reg "overlay.msgs.received";
    bytes_sent = Obs.Registry.counter_value reg "overlay.bytes.sent";
    bytes_received = Obs.Registry.counter_value reg "overlay.bytes.received";
  }

let total_messages t = t.total

let send t ~src ~dst ~size:bytes ?(msg_id = -1) msg =
  if not t.down.(src) then begin
    let s = t.node_obs.(src) in
    Obs.Registry.incr s.c_msgs_sent;
    Obs.Registry.add s.c_bytes_sent bytes;
    t.total <- t.total + 1;
    let dropped =
      t.partition src <> t.partition dst
      || (t.loss_rate > 0.0 && Rng.float t.rng 1.0 < t.loss_rate)
    in
    if not dropped then begin
      let sent_at = Engine.now t.engine in
      let link = if src = dst then 0.0 else Latency.sample t.latency t.rng in
      let deliver info () =
        (* Down-ness and handlers are re-checked at delivery time: a node may
           crash while messages are in flight. *)
        if not t.down.(dst) then
          match t.handlers.(dst) with
          | None -> ()
          | Some h ->
              let r = t.node_obs.(dst) in
              Obs.Registry.incr r.c_msgs_received;
              Obs.Registry.add r.c_bytes_received bytes;
              h ~src ~info msg
      in
      (* The receiver's CPU queue is FIFO in ARRIVAL order: the busy-time
         accounting runs when the message arrives (engine events fire in
         time order), so an in-flight straggler never blocks messages that
         land before it. *)
      let on_arrival () =
        (* A down node has no CPU to queue on: arrivals while down are
           dropped without advancing [busy_until], so a restarted node does
           not resume with phantom backlog. *)
        if not t.down.(dst) then begin
          let now = Engine.now t.engine in
          let start = Float.max now t.busy_until.(dst) in
          let proc = t.processing bytes in
          let finish = start +. proc in
          t.busy_until.(dst) <- finish;
          let info =
            { msg_id; sent_at; link_s = link; wait_s = start -. now; proc_s = proc }
          in
          if finish > now then
            ignore (Engine.schedule t.engine ~delay:(finish -. now) (deliver info))
          else deliver info ()
        end
      in
      ignore (Engine.schedule t.engine ~delay:link on_arrival)
    end
  end
