(** Discrete-event simulation engine with a virtual clock.

    The engine replaces the real network/OS testbed of the paper's
    evaluation: all protocol timers and message deliveries are events on a
    virtual timeline measured in seconds, so a "68-hour" production run
    (Fig. 8) executes in seconds of CPU and is perfectly reproducible. *)

type t

type timer
(** Handle for a scheduled event; may be cancelled. *)

val create : unit -> t

val set_obs : t -> Stellar_obs.Sink.t -> unit
(** Attach an observability sink (set after creation because sinks usually
    need this engine's clock).  An enabled sink counts [sim.events.fired] /
    [sim.events.cancelled] and tracks the [sim.queue.pending] gauge. *)

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** Schedule a callback [delay] seconds from now (clamped to [>= 0]).
    Events at equal times fire in scheduling order. *)

val schedule_at : t -> time:float -> (unit -> unit) -> timer

val cancel : timer -> unit
(** Cancelling a fired or already-cancelled timer is a no-op. *)

val run : ?until:float -> t -> unit
(** Process events in timestamp order until the queue drains or virtual time
    would exceed [until]. *)

val step : t -> bool
(** Process one event; [false] if the queue is empty. *)

val pending : t -> int
(** Number of scheduled (possibly cancelled) events. *)
