(** Simulated point-to-point message network.

    Nodes are integer indices [0 .. n-1].  Messages are delivered through the
    {!Engine} after a sampled link latency; crashed nodes and network
    partitions silently drop traffic, as a real lossy network would.  Byte
    and message counters feed the resource-usage experiment (§7.4). *)

type 'msg t

type stats = {
  msgs_sent : int;
  msgs_received : int;
  bytes_sent : int;
  bytes_received : int;
}
(** Snapshot of one node's traffic counters (see {!stats}). *)

type delivery = {
  msg_id : int;  (** sender's tag from {!send}[ ?msg_id]; -1 when untagged *)
  sent_at : float;  (** simulated time {!send} was called *)
  link_s : float;  (** sampled link transit *)
  wait_s : float;  (** time spent queued behind the receiver's busy CPU *)
  proc_s : float;  (** modeled per-message processing cost *)
}
(** Causal metadata handed to the receive handler with every delivery:
    delivery time = [sent_at + link_s + wait_s + proc_s].  The [msg_id]
    lets tracing link a [Flood_recv] back to the exact [Flood_send] that
    produced it (the cross-node causal DAG of the observability layer). *)

val create :
  engine:Engine.t ->
  rng:Rng.t ->
  n:int ->
  latency:Latency.t ->
  ?processing:(int -> float) ->
  ?obs:(int -> Stellar_obs.Sink.t) ->
  unit ->
  'msg t
(** [processing size] models the receiver's per-message CPU cost
    (deserialization + signature verification) in seconds; messages queue
    at a busy receiver.  This is what makes consensus latency grow with the
    validator count (Fig. 11) — with free message processing it would not.
    Default: no cost.

    [obs] supplies the per-node observability sink; message/byte accounting
    is kept in each sink's registry under [overlay.msgs.sent],
    [overlay.msgs.received], [overlay.bytes.sent] and
    [overlay.bytes.received].  Without [obs] the network still accounts
    traffic, into private metrics-only registries. *)

val size : 'msg t -> int
val engine : 'msg t -> Engine.t

val set_handler : 'msg t -> int -> (src:int -> info:delivery -> 'msg -> unit) -> unit

val send : 'msg t -> src:int -> dst:int -> size:int -> ?msg_id:int -> 'msg -> unit
(** Queue a message for delivery.  [size] is the serialized size in bytes,
    used only for accounting.  Self-sends are delivered with zero latency.
    [msg_id] (from {!alloc_msg_id}) tags the delivery's {!delivery.msg_id}
    so the receiver can attribute it to the send that produced it. *)

val alloc_msg_id : 'msg t -> int
(** Next globally monotone message id (1, 2, ...).  One id per flood
    decision: all fanout copies of the same broadcast share it. *)

val set_down : 'msg t -> int -> bool -> unit
(** A down node neither sends nor receives, and arrivals while down do not
    accrue CPU-queue busy time.  Bringing a node back up resets its CPU
    queue to idle (the pre-crash backlog did not survive the reboot). *)

val is_down : 'msg t -> int -> bool

val set_partition : 'msg t -> (int -> int) -> unit
(** Assign each node to a partition group; messages between different groups
    are dropped.  [set_partition t (fun _ -> 0)] heals the network. *)

val set_loss_rate : 'msg t -> float -> unit
(** Independent per-message drop probability. *)

val stats : 'msg t -> int -> stats
(** Thin wrapper over the node's registry counters. *)

val registry : 'msg t -> int -> Stellar_obs.Registry.t
(** The registry backing node [i]'s traffic counters (the one from [obs]
    when supplied at {!create}). *)

val total_messages : 'msg t -> int
