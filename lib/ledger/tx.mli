(** Transactions (§5.2): a source account, validity criteria, a memo and a
    list of operations (Fig. 4), plus signatures.  Transactions are atomic —
    if any operation fails, none execute. *)

type account_id = Asset.account_id

type time_bounds = { min_time : int; max_time : int }

type memo = Memo_none | Memo_text of string | Memo_hash of string

(** A signer change for SetOptions. *)
type signer_update = Set_signer of Entry.signer | Remove_signer of string

type operation_body =
  | Create_account of { destination : account_id; starting_balance : int }
  | Payment of { destination : account_id; asset : Asset.t; amount : int }
  | Path_payment of {
      send_asset : Asset.t;
      send_max : int;  (** end-to-end limit price protection *)
      destination : account_id;
      dest_asset : Asset.t;
      dest_amount : int;
      path : Asset.t list;  (** up to 5 intermediary assets *)
    }
  | Manage_offer of {
      offer_id : int;  (** 0 to create; existing id to replace/delete *)
      selling : Asset.t;
      buying : Asset.t;
      amount : int;  (** 0 to delete *)
      price : Price.t;
      passive : bool;
    }
  | Set_options of {
      master_weight : int option;
      low : int option;
      medium : int option;
      high : int option;
      signer : signer_update option;
      home_domain : string option;
      set_auth_required : bool option;
      set_auth_revocable : bool option;
      set_auth_immutable : bool option;
    }
  | Change_trust of { asset : Asset.t; limit : int  (** 0 deletes the line *) }
  | Allow_trust of { trustor : account_id; asset_code : string; authorize : bool }
  | Account_merge of { destination : account_id }
  | Manage_data of { name : string; value : string option  (** None deletes *) }
  | Bump_sequence of { bump_to : int }
  | Set_inflation_dest of { dest : account_id }
      (** vote the account's XLM balance toward a fee-recycling
          beneficiary (§5.2) *)
  | Inflation
      (** distribute the fee pool proportionally among voted destinations
          (§5.2: "fees are recycled and distributed proportionally by vote
          of existing XLM holders") *)

type operation = {
  op_source : account_id option;  (** defaults to the transaction source *)
  body : operation_body;
}

val op : ?source:account_id -> operation_body -> operation

type t = {
  source : account_id;
  fee : int;
  seq_num : int;
  time_bounds : time_bounds option;
  memo : memo;
  operations : operation list;
}

type signed = { tx : t; signatures : (account_id * string) list }

val make :
  source:account_id ->
  seq_num:int ->
  ?fee:int ->
  ?time_bounds:time_bounds ->
  ?memo:memo ->
  operation list ->
  t
(** [fee] defaults to 100 stroops per operation. *)

val xdr : t Stellar_xdr.Xdr.codec
val signed_xdr : signed Stellar_xdr.Xdr.codec

val encode : t -> string
(** Canonical XDR bytes ({!xdr}). *)

val decode : string -> (t, string) result
val decode_signed : string -> (signed, string) result

val hash : t -> string
(** SHA-256 over the network-prefixed canonical XDR encoding; this is what
    gets signed. *)

val sign : t -> secret:string -> public:account_id -> scheme:(module Stellar_crypto.Sig_intf.SCHEME with type secret = string) -> signed
val co_sign : signed -> secret:string -> public:account_id -> scheme:(module Stellar_crypto.Sig_intf.SCHEME with type secret = string) -> signed

val operation_count : t -> int

val size : signed -> int
(** Exact wire size: [Bytes.length] of the {!signed_xdr} encoding. *)

(** Threshold category of an operation (§5.2: multisig accounts can require
    higher weight for some operations). *)
type threshold_level = Low | Medium | High

val threshold_level : operation_body -> threshold_level
val op_name : operation_body -> string
