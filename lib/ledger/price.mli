(** Exact rational prices for offers.

    An offer selling asset S for asset B at price [n/d] asks [n] units of B
    for every [d] units of S.  Prices compare by cross-multiplication, so no
    floating point enters the order book. *)

type t = { n : int; d : int }

val make : n:int -> d:int -> t
(** @raise Invalid_argument unless [0 < n] and [0 < d] and both fit 31 bits
    (so cross products cannot overflow a 63-bit int against ledger
    amounts). *)

val one : t
val compare : t -> t -> int
val equal : t -> t -> bool
val inverse : t -> t
val to_float : t -> float
val pp : Format.formatter -> t -> unit

val mul_floor : int -> t -> int option
(** [mul_floor x p = ⌊x·n/d⌋]; [None] on overflow. *)

val mul_ceil : int -> t -> int option
val div_floor : int -> t -> int option
(** [div_floor x p = ⌊x·d/n⌋]; [None] on overflow. *)

val div_ceil : int -> t -> int option

val crosses : taker:t -> maker:t -> bool
(** Does a taker offer (selling S for B at [taker]) cross a maker offer
    (selling B for S at [maker])?  True when [taker · maker <= 1], i.e. the
    maker asks no more than the taker concedes. *)

val xdr : t Stellar_xdr.Xdr.codec
(** Two uint32 components; decoding enforces the {!make} invariants. *)
