(** Assets (§5.1): the native token (XLM) or an issued credit named by an
    (issuer account, short code) pair.  Amounts everywhere in the ledger are
    integers in the asset's smallest unit (stroops for XLM: 10^7 per XLM). *)

type account_id = string
(** 32-byte public key of the owning/issuing account. *)

type t = Native | Credit of { code : string; issuer : account_id }

val native : t

val credit : code:string -> issuer:account_id -> t
(** @raise Invalid_argument if [code] is empty or longer than 12 bytes. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_native : t -> bool
val issuer : t -> account_id option
val code : t -> string

val encode : t -> string
(** Short printable key, for hashtable keys only — wire format is {!xdr}. *)

val xdr : t Stellar_xdr.Xdr.codec
(** Union: 0 = native, 1 = credit (code ≤ 12 bytes, issuer). *)

val pp : Format.formatter -> t -> unit

(** Fixed-point helpers. *)

val stroops_per_unit : int
(** 10^7. *)

val of_units : int -> int
(** Whole units to stroops. *)

val pp_amount : Format.formatter -> int -> unit
(** Renders stroops as a decimal unit amount. *)
