type account_id = Asset.account_id

type time_bounds = { min_time : int; max_time : int }

type memo = Memo_none | Memo_text of string | Memo_hash of string

type signer_update = Set_signer of Entry.signer | Remove_signer of string

type operation_body =
  | Create_account of { destination : account_id; starting_balance : int }
  | Payment of { destination : account_id; asset : Asset.t; amount : int }
  | Path_payment of {
      send_asset : Asset.t;
      send_max : int;
      destination : account_id;
      dest_asset : Asset.t;
      dest_amount : int;
      path : Asset.t list;
    }
  | Manage_offer of {
      offer_id : int;
      selling : Asset.t;
      buying : Asset.t;
      amount : int;
      price : Price.t;
      passive : bool;
    }
  | Set_options of {
      master_weight : int option;
      low : int option;
      medium : int option;
      high : int option;
      signer : signer_update option;
      home_domain : string option;
      set_auth_required : bool option;
      set_auth_revocable : bool option;
      set_auth_immutable : bool option;
    }
  | Change_trust of { asset : Asset.t; limit : int }
  | Allow_trust of { trustor : account_id; asset_code : string; authorize : bool }
  | Account_merge of { destination : account_id }
  | Manage_data of { name : string; value : string option }
  | Bump_sequence of { bump_to : int }
  | Set_inflation_dest of { dest : account_id }
  | Inflation

type operation = { op_source : account_id option; body : operation_body }

let op ?source body = { op_source = source; body }

type t = {
  source : account_id;
  fee : int;
  seq_num : int;
  time_bounds : time_bounds option;
  memo : memo;
  operations : operation list;
}

type signed = { tx : t; signatures : (account_id * string) list }

let make ~source ~seq_num ?fee ?time_bounds ?(memo = Memo_none) operations =
  let fee = match fee with Some f -> f | None -> 100 * List.length operations in
  { source; fee; seq_num; time_bounds; memo; operations }

module Xdr = Stellar_xdr.Xdr

let time_bounds_xdr =
  Xdr.conv
    (fun tb -> (tb.min_time, tb.max_time))
    (fun (min_time, max_time) -> { min_time; max_time })
    Xdr.(pair hyper hyper)

let memo_xdr =
  Xdr.union
    ~tag:(function Memo_none -> 0 | Memo_text _ -> 1 | Memo_hash _ -> 2)
    ~write_arm:(fun w -> function
      | Memo_none -> ()
      | Memo_text s -> Xdr.Writer.opaque_var w ~max:28 s
      | Memo_hash h -> Xdr.Writer.opaque_var w h)
    ~read_arm:(fun tag r ->
      match tag with
      | 0 -> Memo_none
      | 1 -> Memo_text (Xdr.Reader.opaque_var r ~max:28 ())
      | 2 -> Memo_hash (Xdr.Reader.opaque_var r ())
      | _ -> raise (Xdr.Error "Tx.memo: bad discriminant"))

let signer_update_xdr =
  Xdr.union
    ~tag:(function Set_signer _ -> 0 | Remove_signer _ -> 1)
    ~write_arm:(fun w -> function
      | Set_signer s ->
          Xdr.Writer.opaque_var w s.Entry.key;
          Xdr.Writer.hyper w s.Entry.weight
      | Remove_signer k -> Xdr.Writer.opaque_var w k)
    ~read_arm:(fun tag r ->
      match tag with
      | 0 ->
          let key = Xdr.Reader.opaque_var r () in
          let weight = Xdr.Reader.hyper r in
          Set_signer { Entry.key; weight }
      | 1 -> Remove_signer (Xdr.Reader.opaque_var r ())
      | _ -> raise (Xdr.Error "Tx.signer_update: bad discriminant"))

let body_tag = function
  | Create_account _ -> 0
  | Payment _ -> 1
  | Path_payment _ -> 2
  | Manage_offer _ -> 3
  | Set_options _ -> 4
  | Change_trust _ -> 5
  | Allow_trust _ -> 6
  | Account_merge _ -> 7
  | Manage_data _ -> 8
  | Bump_sequence _ -> 9
  | Set_inflation_dest _ -> 10
  | Inflation -> 11

let body_xdr =
  let open Xdr in
  let acct = str () in
  union ~tag:body_tag
    ~write_arm:(fun w -> function
      | Create_account { destination; starting_balance } ->
          acct.write w destination;
          Writer.hyper w starting_balance
      | Payment { destination; asset; amount } ->
          acct.write w destination;
          Asset.xdr.write w asset;
          Writer.hyper w amount
      | Path_payment { send_asset; send_max; destination; dest_asset; dest_amount; path } ->
          Asset.xdr.write w send_asset;
          Writer.hyper w send_max;
          acct.write w destination;
          Asset.xdr.write w dest_asset;
          Writer.hyper w dest_amount;
          (list ~max:5 Asset.xdr).write w path
      | Manage_offer { offer_id; selling; buying; amount; price; passive } ->
          Writer.hyper w offer_id;
          Asset.xdr.write w selling;
          Asset.xdr.write w buying;
          Writer.hyper w amount;
          Price.xdr.write w price;
          Writer.bool w passive
      | Set_options o ->
          (option hyper).write w o.master_weight;
          (option hyper).write w o.low;
          (option hyper).write w o.medium;
          (option hyper).write w o.high;
          (option signer_update_xdr).write w o.signer;
          (option (str ())).write w o.home_domain;
          (option bool).write w o.set_auth_required;
          (option bool).write w o.set_auth_revocable;
          (option bool).write w o.set_auth_immutable
      | Change_trust { asset; limit } ->
          Asset.xdr.write w asset;
          Writer.hyper w limit
      | Allow_trust { trustor; asset_code; authorize } ->
          acct.write w trustor;
          Writer.opaque_var w ~max:12 asset_code;
          Writer.bool w authorize
      | Account_merge { destination } -> acct.write w destination
      | Manage_data { name; value } ->
          Writer.opaque_var w name;
          (option (str ())).write w value
      | Bump_sequence { bump_to } -> Writer.hyper w bump_to
      | Set_inflation_dest { dest } -> acct.write w dest
      | Inflation -> ())
    ~read_arm:(fun tag r ->
      match tag with
      | 0 ->
          let destination = acct.read r in
          let starting_balance = Reader.hyper r in
          Create_account { destination; starting_balance }
      | 1 ->
          let destination = acct.read r in
          let asset = Asset.xdr.read r in
          let amount = Reader.hyper r in
          Payment { destination; asset; amount }
      | 2 ->
          let send_asset = Asset.xdr.read r in
          let send_max = Reader.hyper r in
          let destination = acct.read r in
          let dest_asset = Asset.xdr.read r in
          let dest_amount = Reader.hyper r in
          let path = (list ~max:5 Asset.xdr).read r in
          Path_payment { send_asset; send_max; destination; dest_asset; dest_amount; path }
      | 3 ->
          let offer_id = Reader.hyper r in
          let selling = Asset.xdr.read r in
          let buying = Asset.xdr.read r in
          let amount = Reader.hyper r in
          let price = Price.xdr.read r in
          let passive = Reader.bool r in
          Manage_offer { offer_id; selling; buying; amount; price; passive }
      | 4 ->
          let master_weight = (option hyper).read r in
          let low = (option hyper).read r in
          let medium = (option hyper).read r in
          let high = (option hyper).read r in
          let signer = (option signer_update_xdr).read r in
          let home_domain = (option (str ())).read r in
          let set_auth_required = (option bool).read r in
          let set_auth_revocable = (option bool).read r in
          let set_auth_immutable = (option bool).read r in
          Set_options
            { master_weight; low; medium; high; signer; home_domain; set_auth_required;
              set_auth_revocable; set_auth_immutable }
      | 5 ->
          let asset = Asset.xdr.read r in
          let limit = Reader.hyper r in
          Change_trust { asset; limit }
      | 6 ->
          let trustor = acct.read r in
          let asset_code = Reader.opaque_var r ~max:12 () in
          let authorize = Reader.bool r in
          Allow_trust { trustor; asset_code; authorize }
      | 7 -> Account_merge { destination = acct.read r }
      | 8 ->
          let name = Reader.opaque_var r () in
          let value = (option (str ())).read r in
          Manage_data { name; value }
      | 9 -> Bump_sequence { bump_to = Reader.hyper r }
      | 10 -> Set_inflation_dest { dest = acct.read r }
      | 11 -> Inflation
      | _ -> raise (Xdr.Error "Tx.operation: bad discriminant"))

let operation_xdr =
  Xdr.conv
    (fun o -> (o.op_source, o.body))
    (fun (op_source, body) -> { op_source; body })
    Xdr.(pair (option (str ())) body_xdr)

let xdr =
  let open Xdr in
  {
    write =
      (fun w tx ->
        Writer.opaque_var w tx.source;
        Writer.hyper w tx.fee;
        Writer.hyper w tx.seq_num;
        (option time_bounds_xdr).write w tx.time_bounds;
        memo_xdr.write w tx.memo;
        (list ~max:100 operation_xdr).write w tx.operations);
    read =
      (fun r ->
        let source = Reader.opaque_var r () in
        let fee = Reader.hyper r in
        let seq_num = Reader.hyper r in
        let time_bounds = (option time_bounds_xdr).read r in
        let memo = memo_xdr.read r in
        let operations = (list ~max:100 operation_xdr).read r in
        { source; fee; seq_num; time_bounds; memo; operations });
  }

let signed_xdr =
  Xdr.conv
    (fun s -> (s.tx, s.signatures))
    (fun (tx, signatures) -> { tx; signatures })
    Xdr.(pair xdr (list ~max:20 (pair (str ()) (str ()))))

let encode tx = Xdr.encode xdr tx
let decode s = Xdr.decode xdr s
let decode_signed s = Xdr.decode signed_xdr s

let network_id = Stellar_crypto.Sha256.digest "stellar-repro network ; 2026"

let hash tx = Stellar_crypto.Sha256.digest_list [ network_id; encode tx ]

let sign tx ~secret ~public ~scheme =
  let module S = (val scheme : Stellar_crypto.Sig_intf.SCHEME with type secret = string) in
  { tx; signatures = [ (public, S.sign secret (hash tx)) ] }

let co_sign signed ~secret ~public ~scheme =
  let module S = (val scheme : Stellar_crypto.Sig_intf.SCHEME with type secret = string) in
  { signed with signatures = (public, S.sign secret (hash signed.tx)) :: signed.signatures }

let operation_count tx = List.length tx.operations

let size signed = Xdr.encoded_length signed_xdr signed

type threshold_level = Low | Medium | High

let threshold_level = function
  | Allow_trust _ | Bump_sequence _ | Inflation -> Low
  | Set_options _ | Account_merge _ -> High
  | Create_account _ | Payment _ | Path_payment _ | Manage_offer _ | Change_trust _
  | Manage_data _ | Set_inflation_dest _ ->
      Medium

let op_name = function
  | Create_account _ -> "create_account"
  | Payment _ -> "payment"
  | Path_payment _ -> "path_payment"
  | Manage_offer _ -> "manage_offer"
  | Set_options _ -> "set_options"
  | Change_trust _ -> "change_trust"
  | Allow_trust _ -> "allow_trust"
  | Account_merge _ -> "account_merge"
  | Manage_data _ -> "manage_data"
  | Bump_sequence _ -> "bump_sequence"
  | Set_inflation_dest _ -> "set_inflation_dest"
  | Inflation -> "inflation"
