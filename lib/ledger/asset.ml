type account_id = string

type t = Native | Credit of { code : string; issuer : account_id }

let native = Native

let credit ~code ~issuer =
  if String.length code = 0 || String.length code > 12 then
    invalid_arg "Asset.credit: code must be 1-12 bytes";
  Credit { code; issuer }

let compare a b =
  match (a, b) with
  | Native, Native -> 0
  | Native, Credit _ -> -1
  | Credit _, Native -> 1
  | Credit x, Credit y ->
      let c = String.compare x.code y.code in
      if c <> 0 then c else String.compare x.issuer y.issuer

let equal a b = compare a b = 0
let is_native = function Native -> true | Credit _ -> false
let issuer = function Native -> None | Credit c -> Some c.issuer
let code = function Native -> "XLM" | Credit c -> c.code

let encode = function
  | Native -> "N"
  | Credit c -> Printf.sprintf "C:%s:%s" c.code c.issuer

module Xdr = Stellar_xdr.Xdr

let xdr =
  Xdr.union
    ~tag:(function Native -> 0 | Credit _ -> 1)
    ~write_arm:(fun w -> function
      | Native -> ()
      | Credit c ->
          Xdr.Writer.opaque_var w ~max:12 c.code;
          Xdr.Writer.opaque_var w c.issuer)
    ~read_arm:(fun tag r ->
      match tag with
      | 0 -> Native
      | 1 ->
          let code = Xdr.Reader.opaque_var r ~max:12 () in
          let issuer = Xdr.Reader.opaque_var r () in
          if String.length code = 0 then raise (Xdr.Error "Asset: empty code");
          Credit { code; issuer }
      | _ -> raise (Xdr.Error "Asset: bad discriminant"))

let pp fmt = function
  | Native -> Format.pp_print_string fmt "XLM"
  | Credit c ->
      Format.fprintf fmt "%s:%s" c.code
        (Stellar_crypto.Hex.encode (String.sub c.issuer 0 (min 4 (String.length c.issuer))))

let stroops_per_unit = 10_000_000
let of_units u = u * stroops_per_unit

let pp_amount fmt v =
  Format.fprintf fmt "%d.%07d" (v / stroops_per_unit) (abs (v mod stroops_per_unit))
