type t = {
  ledger_seq : int;
  prev_hash : string;
  scp_value_hash : string;
  tx_set_hash : string;
  results_hash : string;
  snapshot_hash : string;
  close_time : int;
  base_fee : int;
  base_reserve : int;
  protocol_version : int;
  fee_pool : int;
  id_pool : int;
  skip_list : string list;
}

let genesis_hash = Stellar_crypto.Sha256.digest "stellar-repro genesis"

module Xdr = Stellar_xdr.Xdr

let xdr =
  let open Xdr in
  {
    write =
      (fun w h ->
        Writer.hyper w h.ledger_seq;
        Writer.opaque_var w h.prev_hash;
        Writer.opaque_var w h.scp_value_hash;
        Writer.opaque_var w h.tx_set_hash;
        Writer.opaque_var w h.results_hash;
        Writer.opaque_var w h.snapshot_hash;
        Writer.hyper w h.close_time;
        Writer.hyper w h.base_fee;
        Writer.hyper w h.base_reserve;
        Writer.hyper w h.protocol_version;
        Writer.hyper w h.fee_pool;
        Writer.hyper w h.id_pool;
        (list ~max:4 (str ())).write w h.skip_list);
    read =
      (fun r ->
        let ledger_seq = Reader.hyper r in
        let prev_hash = Reader.opaque_var r () in
        let scp_value_hash = Reader.opaque_var r () in
        let tx_set_hash = Reader.opaque_var r () in
        let results_hash = Reader.opaque_var r () in
        let snapshot_hash = Reader.opaque_var r () in
        let close_time = Reader.hyper r in
        let base_fee = Reader.hyper r in
        let base_reserve = Reader.hyper r in
        let protocol_version = Reader.hyper r in
        let fee_pool = Reader.hyper r in
        let id_pool = Reader.hyper r in
        let skip_list = (list ~max:4 (str ())).read r in
        { ledger_seq; prev_hash; scp_value_hash; tx_set_hash; results_hash; snapshot_hash;
          close_time; base_fee; base_reserve; protocol_version; fee_pool; id_pool; skip_list });
  }

let encode h = Xdr.encode xdr h
let decode s = Xdr.decode xdr s

let hash h = Stellar_crypto.Sha256.digest (encode h)

(* Skip-list slot i points 4^i headers back, updated when the sequence is
   divisible by 4^i (a simplified version of stellar-core's scheme). *)
let update_skip_list prev seq =
  match prev with
  | None -> []
  | Some p ->
      let prev_hash = hash p in
      let rec go i acc =
        if i >= 4 then List.rev acc
        else
          let stride = 1 lsl (2 * i) in
          let inherited = List.nth_opt p.skip_list i in
          let slot =
            if seq mod stride = 0 then prev_hash
            else Option.value ~default:prev_hash inherited
          in
          go (i + 1) (slot :: acc)
      in
      go 0 []

let make ~prev ~scp_value_hash ~tx_set_hash ~results_hash ~snapshot_hash ~state =
  let seq = State.ledger_seq state in
  {
    ledger_seq = seq;
    prev_hash = (match prev with Some p -> hash p | None -> genesis_hash);
    scp_value_hash;
    tx_set_hash;
    results_hash;
    snapshot_hash;
    close_time = State.close_time state;
    base_fee = State.base_fee state;
    base_reserve = State.base_reserve state;
    protocol_version = State.protocol_version state;
    fee_pool = State.fee_pool state;
    id_pool = State.id_pool state;
    skip_list = update_skip_list prev seq;
  }

let verify_chain headers =
  let rec go = function
    | a :: (b :: _ as rest) ->
        String.equal b.prev_hash (hash a) && b.ledger_seq = a.ledger_seq + 1 && go rest
    | _ -> true
  in
  go headers

let pp fmt h =
  Format.fprintf fmt "ledger #%d close=%d txset=%s state=%s" h.ledger_seq h.close_time
    (String.sub (Stellar_crypto.Hex.encode h.tx_set_hash) 0 8)
    (String.sub (Stellar_crypto.Hex.encode h.snapshot_hash) 0 8)
