type op_result =
  | Op_success
  | Op_malformed
  | Op_underfunded
  | Op_low_reserve
  | Op_no_destination
  | Op_no_trustline
  | Op_not_authorized
  | Op_line_full
  | Op_no_issuer
  | Op_trust_non_empty
  | Op_offer_not_found
  | Op_cross_self
  | Op_too_few_offers
  | Op_over_send_max
  | Op_has_sub_entries
  | Op_immutable
  | Op_bad_seq
  | Op_no_fees_to_distribute

type tx_outcome =
  | Tx_success of op_result list
  | Tx_failed of op_result list
  | Tx_no_source
  | Tx_bad_seq
  | Tx_bad_auth
  | Tx_insufficient_fee
  | Tx_insufficient_balance
  | Tx_too_early
  | Tx_too_late
  | Tx_malformed

let tx_succeeded = function Tx_success _ -> true | _ -> false

let op_result_name = function
  | Op_success -> "success"
  | Op_malformed -> "malformed"
  | Op_underfunded -> "underfunded"
  | Op_low_reserve -> "low_reserve"
  | Op_no_destination -> "no_destination"
  | Op_no_trustline -> "no_trustline"
  | Op_not_authorized -> "not_authorized"
  | Op_line_full -> "line_full"
  | Op_no_issuer -> "no_issuer"
  | Op_trust_non_empty -> "trust_non_empty"
  | Op_offer_not_found -> "offer_not_found"
  | Op_cross_self -> "cross_self"
  | Op_too_few_offers -> "too_few_offers"
  | Op_over_send_max -> "over_send_max"
  | Op_has_sub_entries -> "has_sub_entries"
  | Op_immutable -> "immutable"
  | Op_bad_seq -> "bad_seq"
  | Op_no_fees_to_distribute -> "no_fees_to_distribute"

let pp_op_result fmt r = Format.pp_print_string fmt (op_result_name r)

let pp_tx_outcome fmt = function
  | Tx_success rs ->
      Format.fprintf fmt "success(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_char f ',') pp_op_result)
        rs
  | Tx_failed rs ->
      Format.fprintf fmt "failed(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_char f ',') pp_op_result)
        rs
  | Tx_no_source -> Format.pp_print_string fmt "no_source"
  | Tx_bad_seq -> Format.pp_print_string fmt "bad_seq"
  | Tx_bad_auth -> Format.pp_print_string fmt "bad_auth"
  | Tx_insufficient_fee -> Format.pp_print_string fmt "insufficient_fee"
  | Tx_insufficient_balance -> Format.pp_print_string fmt "insufficient_balance"
  | Tx_too_early -> Format.pp_print_string fmt "too_early"
  | Tx_too_late -> Format.pp_print_string fmt "too_late"
  | Tx_malformed -> Format.pp_print_string fmt "malformed"

type ctx = { verify : public:string -> msg:string -> signature:string -> bool }

let sim_ctx =
  { verify = (fun ~public ~msg ~signature -> Stellar_crypto.Sim_sig.verify ~public ~msg ~signature) }

let ed25519_ctx =
  { verify = (fun ~public ~msg ~signature -> Stellar_crypto.Ed25519.verify ~public ~msg ~signature) }

let max_amount = 1 lsl 53
let max_operations = 100
let max_path_length = 5

(* ---------- balance movement primitives ---------- *)

(* Credit [amount] of [asset] to [dest].  Issuers absorb their own asset. *)
let credit state dest asset amount =
  match asset with
  | Asset.Native -> (
      match State.account state dest with
      | None -> Error Op_no_destination
      | Some a -> Ok (State.put_account state { a with Entry.balance = a.Entry.balance + amount }))
  | Asset.Credit { issuer; _ } when String.equal issuer dest ->
      if State.account state dest = None then Error Op_no_destination else Ok state
  | Asset.Credit _ -> (
      match State.trustline state dest asset with
      | None -> if State.account state dest = None then Error Op_no_destination else Error Op_no_trustline
      | Some tl ->
          if not tl.Entry.authorized then Error Op_not_authorized
          else if tl.Entry.tl_balance + amount > tl.Entry.limit then Error Op_line_full
          else Ok (State.put_trustline state { tl with Entry.tl_balance = tl.Entry.tl_balance + amount }))

(* Debit [amount] of [asset] from [source].  Issuers mint their own asset.
   Native debits respect the reserve unless [below_reserve]. *)
let debit ?(below_reserve = false) state source asset amount =
  match asset with
  | Asset.Native -> (
      match State.account state source with
      | None -> Error Op_underfunded
      | Some a ->
          let floor_balance =
            if below_reserve then 0
            else State.min_balance state ~num_sub_entries:a.Entry.num_sub_entries
          in
          if a.Entry.balance - amount < floor_balance then Error Op_underfunded
          else Ok (State.put_account state { a with Entry.balance = a.Entry.balance - amount }))
  | Asset.Credit { issuer; _ } when String.equal issuer source -> Ok state
  | Asset.Credit _ -> (
      match State.trustline state source asset with
      | None -> Error Op_no_trustline
      | Some tl ->
          if not tl.Entry.authorized then Error Op_not_authorized
          else if tl.Entry.tl_balance < amount then Error Op_underfunded
          else Ok (State.put_trustline state { tl with Entry.tl_balance = tl.Entry.tl_balance - amount }))

let bump_sub_entries state id delta =
  match State.account state id with
  | None -> Error Op_no_destination
  | Some a ->
      let n = a.Entry.num_sub_entries + delta in
      let a = { a with Entry.num_sub_entries = n } in
      if delta > 0 && a.Entry.balance < State.min_balance state ~num_sub_entries:n then
        Error Op_low_reserve
      else Ok (State.put_account state a)

(* ---------- operation application ---------- *)

let valid_amount a = a > 0 && a < max_amount

let issuer_exists state asset =
  match Asset.issuer asset with
  | None -> true
  | Some i -> State.account state i <> None

let apply_payment state ~source ~destination ~asset ~amount =
  if not (valid_amount amount) then Error Op_malformed
  else
    let ( let* ) = Result.bind in
    let* state = debit state source asset amount in
    credit state destination asset amount

let apply_create_account state ~source ~destination ~starting_balance =
  if State.account state destination <> None then Error Op_malformed
  else if starting_balance < State.min_balance state ~num_sub_entries:0 then
    Error Op_low_reserve
  else
    let ( let* ) = Result.bind in
    let* state = debit state source Asset.Native starting_balance in
    (* Sequence numbers start at ledger_seq << 32 to prevent replay across
       delete/recreate (§5.2). *)
    let seq0 = State.ledger_seq state * 4294967296 in
    Ok (State.put_account state (Entry.new_account ~id:destination ~balance:starting_balance ~seq_num:seq0))

let apply_change_trust state ~source ~asset ~limit =
  match asset with
  | Asset.Native -> Error Op_malformed
  | Asset.Credit { issuer; _ } when String.equal issuer source -> Error Op_malformed
  | Asset.Credit { issuer; _ } -> (
      let existing = State.trustline state source asset in
      if limit = 0 then
        match existing with
        | None -> Error Op_no_trustline
        | Some tl ->
            if tl.Entry.tl_balance <> 0 then Error Op_trust_non_empty
            else
              let state = State.remove_trustline state source asset in
              bump_sub_entries state source (-1)
      else if limit < 0 || limit >= max_amount then Error Op_malformed
      else
        match existing with
        | Some tl ->
            if limit < tl.Entry.tl_balance then Error Op_malformed
            else Ok (State.put_trustline state { tl with Entry.limit = limit })
        | None ->
            if not (issuer_exists state asset) then Error Op_no_issuer
            else
              let ( let* ) = Result.bind in
              let* state = bump_sub_entries state source 1 in
              let authorized =
                match State.account state issuer with
                | Some issuer_acct -> not issuer_acct.Entry.flags.Entry.auth_required
                | None -> false
              in
              Ok
                (State.put_trustline state
                   { Entry.account = source; asset; tl_balance = 0; limit; authorized }))

let apply_allow_trust state ~source ~trustor ~asset_code ~authorize =
  let asset = Asset.credit ~code:asset_code ~issuer:source in
  match State.account state source with
  | None -> Error Op_no_destination
  | Some issuer_acct -> (
      if (not authorize) && not issuer_acct.Entry.flags.Entry.auth_revocable then
        Error Op_not_authorized
      else
        match State.trustline state trustor asset with
        | None -> Error Op_no_trustline
        | Some tl -> Ok (State.put_trustline state { tl with Entry.authorized = authorize }))

let apply_manage_offer state ~source ~offer_id ~selling ~buying ~amount ~price ~passive =
  let ( let* ) = Result.bind in
  if Asset.equal selling buying then Error Op_malformed
  else if amount < 0 || amount >= max_amount then Error Op_malformed
  else if not (issuer_exists state selling && issuer_exists state buying) then
    Error Op_no_issuer
  else begin
    (* Remove the old offer first when replacing/deleting. *)
    let* state, deleted_old =
      if offer_id = 0 then Ok (state, false)
      else
        match State.offer state offer_id with
        | None -> Error Op_offer_not_found
        | Some o ->
            if not (String.equal o.Entry.seller source) then Error Op_offer_not_found
            else
              let state = State.remove_offer state offer_id in
              let* state = bump_sub_entries state source (-1) in
              Ok (state, true)
    in
    ignore deleted_old;
    if amount = 0 then if offer_id = 0 then Error Op_malformed else Ok state
    else begin
      (* The seller must be able to hold the proceeds and fund the sale. *)
      let can_hold =
        match buying with
        | Asset.Native -> true
        | Asset.Credit { issuer; _ } when String.equal issuer source -> true
        | Asset.Credit _ -> (
            match State.trustline state source buying with
            | Some tl -> tl.Entry.authorized
            | None -> false)
      in
      if not can_hold then Error Op_no_trustline
      else begin
        let funded = Exchange.spendable state source selling in
        if funded <= 0 then Error Op_underfunded
        else begin
          let sell_amount = min amount funded in
          (* Cross existing opposing offers first (passive offers do not
             consume exactly-equal prices). *)
          let crossing =
            Exchange.cross state ~give_asset:selling ~get_asset:buying
              ~max_give:sell_amount ~price_limit:price ~strict_price:passive
              ~exclude_seller:source ()
          in
          match crossing with
          | Error "self-cross" -> Error Op_cross_self
          | Error _ -> Error Op_malformed
          | Ok { state; got; paid; _ } ->
              (* Settle the taker legs. *)
              let* state = debit state source selling paid in
              let* state = credit state source buying got in
              let remaining = sell_amount - paid in
              if remaining <= 0 then Ok state
              else begin
                let* state = bump_sub_entries state source 1 in
                let state, id = State.next_offer_id state in
                Ok
                  (State.put_offer state
                     {
                       Entry.offer_id = id;
                       seller = source;
                       selling;
                       buying;
                       amount = remaining;
                       price;
                       passive;
                     })
              end
        end
      end
    end
  end

let apply_path_payment state ~source ~send_asset ~send_max ~destination ~dest_asset
    ~dest_amount ~path =
  let ( let* ) = Result.bind in
  if not (valid_amount dest_amount && valid_amount send_max) then Error Op_malformed
  else if List.length path > max_path_length then Error Op_malformed
  else begin
    let chain = (send_asset :: path) @ [ dest_asset ] in
    if List.exists (fun a -> not (issuer_exists state a)) chain then Error Op_no_issuer
    else begin
      (* Walk the hops backwards: the cost of a hop becomes the target of
         the previous one.  Maker legs settle inside [Exchange.cross]; the
         taker's intermediate credits/debits cancel exactly. *)
      let rec hops state need = function
        | [] | [ _ ] -> Ok (state, need)
        | give :: (get :: _ as rest) ->
            let* state, need_get = hops state need rest in
            if Asset.equal give get then Ok (state, need_get)
            else begin
              match
                Exchange.cross state ~give_asset:give ~get_asset:get ~want_get:need_get ()
              with
              | Error "self-cross" -> Error Op_cross_self
              | Error _ -> Error Op_malformed
              | Ok { state; got; paid; _ } ->
                  if got < need_get then Error Op_too_few_offers else Ok (state, paid)
            end
      in
      let* state, cost = hops state dest_amount chain in
      if cost > send_max then Error Op_over_send_max
      else
        let* state = debit state source send_asset cost in
        credit state destination dest_asset dest_amount
    end
  end

let apply_set_options state ~source
    ~(opts :
       int option
       * int option
       * int option
       * int option
       * Tx.signer_update option
       * string option
       * bool option
       * bool option
       * bool option) =
  let master_weight, low, medium, high, signer, home_domain, set_req, set_rev, set_imm = opts in
  match State.account state source with
  | None -> Error Op_no_destination
  | Some a ->
      let ( let* ) = Result.bind in
      let th = a.Entry.thresholds in
      let valid_w w = w >= 0 && w <= 255 in
      let* () =
        if
          List.for_all valid_w
            (List.filter_map Fun.id [ master_weight; low; medium; high ])
        then Ok ()
        else Error Op_malformed
      in
      let thresholds =
        {
          Entry.master_weight = Option.value ~default:th.Entry.master_weight master_weight;
          low = Option.value ~default:th.Entry.low low;
          medium = Option.value ~default:th.Entry.medium medium;
          high = Option.value ~default:th.Entry.high high;
        }
      in
      let flags_locked = a.Entry.flags.Entry.auth_immutable in
      let* flags =
        match (set_req, set_rev, set_imm) with
        | None, None, None -> Ok a.Entry.flags
        | _ when flags_locked -> Error Op_immutable
        | _ ->
            Ok
              {
                Entry.auth_required =
                  Option.value ~default:a.Entry.flags.Entry.auth_required set_req;
                auth_revocable =
                  Option.value ~default:a.Entry.flags.Entry.auth_revocable set_rev;
                auth_immutable =
                  Option.value ~default:a.Entry.flags.Entry.auth_immutable set_imm;
              }
      in
      let a = { a with Entry.thresholds; flags } in
      let a =
        match home_domain with Some d -> { a with Entry.home_domain = d } | None -> a
      in
      let state = State.put_account state a in
      (* signer changes adjust sub entries *)
      (match signer with
      | None -> Ok state
      | Some (Tx.Set_signer s) ->
          if not (valid_w s.Entry.weight) || s.Entry.weight = 0 then Error Op_malformed
          else begin
            let a = Option.get (State.account state source) in
            let existing = List.exists (fun x -> String.equal x.Entry.key s.Entry.key) a.Entry.signers in
            let signers =
              s :: List.filter (fun x -> not (String.equal x.Entry.key s.Entry.key)) a.Entry.signers
            in
            let state = State.put_account state { a with Entry.signers } in
            if existing then Ok state else bump_sub_entries state source 1
          end
      | Some (Tx.Remove_signer key) ->
          let a = Option.get (State.account state source) in
          if not (List.exists (fun x -> String.equal x.Entry.key key) a.Entry.signers) then
            Error Op_malformed
          else begin
            let signers = List.filter (fun x -> not (String.equal x.Entry.key key)) a.Entry.signers in
            let state = State.put_account state { a with Entry.signers } in
            bump_sub_entries state source (-1)
          end)

let apply_account_merge state ~source ~destination =
  match (State.account state source, State.account state destination) with
  | None, _ -> Error Op_no_destination
  | _, None -> Error Op_no_destination
  | Some src, Some _ ->
      if String.equal source destination then Error Op_malformed
      else if src.Entry.num_sub_entries > 0 then Error Op_has_sub_entries
      else
        let ( let* ) = Result.bind in
        let state = State.remove_account state source in
        let* state = credit state destination Asset.Native src.Entry.balance in
        Ok state

let apply_manage_data state ~source ~name ~value =
  if String.length name = 0 || String.length name > 64 then Error Op_malformed
  else
    match value with
    | Some v ->
        if String.length v > 64 then Error Op_malformed
        else begin
          let ( let* ) = Result.bind in
          let existing = State.data state source name in
          let* state = if existing = None then bump_sub_entries state source 1 else Ok state in
          Ok (State.put_data state { Entry.owner = source; name; value = v })
        end
    | None -> (
        match State.data state source name with
        | None -> Error Op_malformed
        | Some _ ->
            let state = State.remove_data state source name in
            bump_sub_entries state source (-1))

let apply_bump_sequence state ~source ~bump_to =
  match State.account state source with
  | None -> Error Op_no_destination
  | Some a ->
      if bump_to < 0 then Error Op_malformed
      else if bump_to <= a.Entry.seq_num then Ok state (* no-op per CAP-0001 *)
      else Ok (State.put_account state { a with Entry.seq_num = bump_to })

let apply_set_inflation_dest state ~source ~dest =
  match (State.account state source, State.account state dest) with
  | Some a, Some _ -> Ok (State.put_account state { a with Entry.inflation_dest = Some dest })
  | Some _, None -> Error Op_no_destination
  | None, _ -> Error Op_no_destination

(* §5.2: "fees are recycled and distributed proportionally by vote of
   existing XLM holders".  Accounts vote their balance through their
   inflation destination; destinations holding at least MIN_VOTE_FRACTION
   of the voted stake share the fee pool pro rata.  (The paper's weekly
   schedule is elided; the economics are the point.) *)
let min_vote_divisor = 2000 (* 0.05% of total XLM, as on the real network *)

let apply_inflation state ~source:_ =
  let pool = State.fee_pool state in
  if pool <= 0 then Error Op_no_fees_to_distribute
  else begin
    let votes = Hashtbl.create 16 in
    let total_votes = ref 0 in
    List.iter
      (fun e ->
        match e with
        | Entry.Account_entry a -> (
            match a.Entry.inflation_dest with
            | Some dest when State.account state dest <> None ->
                Hashtbl.replace votes dest
                  (a.Entry.balance + Option.value ~default:0 (Hashtbl.find_opt votes dest));
                total_votes := !total_votes + a.Entry.balance
            | _ -> ())
        | _ -> ())
      (State.all_entries state);
    let min_votes = State.total_native state / min_vote_divisor in
    let winners =
      Hashtbl.fold (fun dest v acc -> if v >= min_votes && v > 0 then (dest, v) :: acc else acc) votes []
      |> List.sort compare
    in
    let winner_votes = List.fold_left (fun acc (_, v) -> acc + v) 0 winners in
    if winners = [] || winner_votes = 0 then Error Op_no_fees_to_distribute
    else begin
      let state, paid =
        List.fold_left
          (fun (state, paid) (dest, v) ->
            (* pool * v can exceed 63 bits; the pool itself is small, so
               float precision is exact here *)
            let share =
              int_of_float (float_of_int pool *. float_of_int v /. float_of_int winner_votes)
            in
            let share = min share (pool - paid) in
            match State.account state dest with
            | Some a ->
                (State.put_account state { a with Entry.balance = a.Entry.balance + share },
                 paid + share)
            | None -> (state, paid))
          (state, 0) winners
      in
      (* whatever rounding left behind stays in the pool *)
      Ok (State.add_fee state (-paid))
    end
  end

let apply_operation state ~tx_source (op : Tx.operation) =
  let source = Option.value ~default:tx_source op.Tx.op_source in
  if State.account state source = None then Error Op_no_destination
  else
    match op.Tx.body with
    | Tx.Create_account { destination; starting_balance } ->
        apply_create_account state ~source ~destination ~starting_balance
    | Tx.Payment { destination; asset; amount } ->
        apply_payment state ~source ~destination ~asset ~amount
    | Tx.Path_payment { send_asset; send_max; destination; dest_asset; dest_amount; path } ->
        apply_path_payment state ~source ~send_asset ~send_max ~destination ~dest_asset
          ~dest_amount ~path
    | Tx.Manage_offer { offer_id; selling; buying; amount; price; passive } ->
        apply_manage_offer state ~source ~offer_id ~selling ~buying ~amount ~price ~passive
    | Tx.Set_options o ->
        apply_set_options state ~source
          ~opts:
            ( o.master_weight,
              o.low,
              o.medium,
              o.high,
              o.signer,
              o.home_domain,
              o.set_auth_required,
              o.set_auth_revocable,
              o.set_auth_immutable )
    | Tx.Change_trust { asset; limit } -> apply_change_trust state ~source ~asset ~limit
    | Tx.Allow_trust { trustor; asset_code; authorize } ->
        apply_allow_trust state ~source ~trustor ~asset_code ~authorize
    | Tx.Account_merge { destination } -> apply_account_merge state ~source ~destination
    | Tx.Manage_data { name; value } -> apply_manage_data state ~source ~name ~value
    | Tx.Bump_sequence { bump_to } -> apply_bump_sequence state ~source ~bump_to
    | Tx.Set_inflation_dest { dest } -> apply_set_inflation_dest state ~source ~dest
    | Tx.Inflation -> apply_inflation state ~source

(* ---------- signature checking ---------- *)

let signature_weight ctx state account_id (signed : Tx.signed) =
  match State.account state account_id with
  | None -> 0
  | Some a ->
      let msg = Tx.hash signed.Tx.tx in
      let key_weight key =
        if String.equal key account_id then a.Entry.thresholds.Entry.master_weight
        else
          match List.find_opt (fun s -> String.equal s.Entry.key key) a.Entry.signers with
          | Some s -> s.Entry.weight
          | None -> 0
      in
      (* A signer whose key is SHA-256 of some secret grants its weight to
         whoever reveals the pre-image (provided in place of a signature) —
         with time bounds this enables atomic cross-chain trades (§5.2). *)
      let preimage_weight data =
        let h = Stellar_crypto.Sha256.digest data in
        match List.find_opt (fun s -> String.equal s.Entry.key h) a.Entry.signers with
        | Some s -> s.Entry.weight
        | None -> 0
      in
      let unique_sigs = List.sort_uniq compare signed.Tx.signatures in
      List.fold_left
        (fun acc (public, signature) ->
          let w = key_weight public in
          if w > 0 && ctx.verify ~public ~msg ~signature then acc + w
          else acc + preimage_weight signature)
        0 unique_sigs

let required_threshold (a : Entry.account) level =
  let th = a.Entry.thresholds in
  let raw =
    match level with
    | Tx.Low -> th.Entry.low
    | Tx.Medium -> th.Entry.medium
    | Tx.High -> th.Entry.high
  in
  (* A zero threshold means "master weight suffices"; never allow zero
     signatures. *)
  max 1 raw

let check_auth ctx state (signed : Tx.signed) =
  let tx = signed.Tx.tx in
  let sources =
    tx.Tx.source
    :: List.filter_map (fun (o : Tx.operation) -> o.Tx.op_source) tx.Tx.operations
    |> List.sort_uniq String.compare
  in
  let level_for src =
    List.fold_left
      (fun acc (o : Tx.operation) ->
        let op_src = Option.value ~default:tx.Tx.source o.Tx.op_source in
        if String.equal op_src src then
          let l = Tx.threshold_level o.Tx.body in
          match (acc, l) with
          | Tx.High, _ | _, Tx.High -> Tx.High
          | Tx.Medium, _ | _, Tx.Medium -> Tx.Medium
          | _ -> Tx.Low
        else acc)
      Tx.Low tx.Tx.operations
  in
  List.for_all
    (fun src ->
      match State.account state src with
      | None -> String.equal src tx.Tx.source (* caught later as no_source *)
      | Some a ->
          signature_weight ctx state src signed >= required_threshold a (level_for src))
    sources

(* ---------- transaction validation & application ---------- *)

let validate ctx state (signed : Tx.signed) =
  let tx = signed.Tx.tx in
  if tx.Tx.operations = [] || List.length tx.Tx.operations > max_operations then
    Error Tx_malformed
  else
    match State.account state tx.Tx.source with
    | None -> Error Tx_no_source
    | Some src ->
        if tx.Tx.seq_num <> src.Entry.seq_num + 1 then Error Tx_bad_seq
        else if tx.Tx.fee < State.base_fee state * List.length tx.Tx.operations then
          Error Tx_insufficient_fee
        else if src.Entry.balance < tx.Tx.fee then Error Tx_insufficient_balance
        else begin
          let time_ok =
            match tx.Tx.time_bounds with
            | None -> Ok ()
            | Some { min_time; max_time } ->
                if State.close_time state < min_time then Error Tx_too_early
                else if max_time <> 0 && State.close_time state > max_time then
                  Error Tx_too_late
                else Ok ()
          in
          match time_ok with
          | Error e -> Error e
          | Ok () -> if check_auth ctx state signed then Ok () else Error Tx_bad_auth
        end

(* Charge the fee and consume the sequence number (even if ops then fail). *)
let charge_fee state (tx : Tx.t) =
  match State.account state tx.Tx.source with
  | None -> state
  | Some a ->
      let state =
        State.put_account state
          { a with Entry.balance = a.Entry.balance - tx.Tx.fee; seq_num = tx.Tx.seq_num }
      in
      State.add_fee state tx.Tx.fee

let run_operations state (tx : Tx.t) =
  let rec go state acc = function
    | [] -> (state, Tx_success (List.rev acc))
    | op :: rest -> (
        match apply_operation state ~tx_source:tx.Tx.source op with
        | Ok state' -> go state' (Op_success :: acc) rest
        | Error r -> (state, Tx_failed (List.rev (r :: acc))))
  in
  go state [] tx.Tx.operations

let apply_tx ctx state signed =
  match validate ctx state signed with
  | Error e -> (state, e)
  | Ok () ->
      let fee_state = charge_fee state signed.Tx.tx in
      let applied, outcome = run_operations fee_state signed.Tx.tx in
      (* Atomicity: roll back to the post-fee state on any failure. *)
      (match outcome with Tx_success _ -> (applied, outcome) | _ -> (fee_state, outcome))

let outcome_metric = function
  | Tx_success _ -> "ledger.tx.success"
  | Tx_failed _ -> "ledger.tx.failed"
  | Tx_no_source -> "ledger.tx.no_source"
  | Tx_bad_seq -> "ledger.tx.bad_seq"
  | Tx_bad_auth -> "ledger.tx.bad_auth"
  | Tx_insufficient_fee -> "ledger.tx.insufficient_fee"
  | Tx_insufficient_balance -> "ledger.tx.insufficient_balance"
  | Tx_too_early -> "ledger.tx.too_early"
  | Tx_too_late -> "ledger.tx.too_late"
  | Tx_malformed -> "ledger.tx.malformed"

let apply_tx_set ?(obs = Stellar_obs.Sink.null) ctx state ~close_time txs =
  let state =
    State.set_header state ~ledger_seq:(State.ledger_seq state + 1) ~close_time
  in
  (* Deterministic apply order, shuffled by hash as stellar-core does so
     that submission order grants no priority — but transactions of the same
     account must keep ascending sequence numbers, so we round-robin over
     per-account queues sorted by sequence. *)
  let by_account = Hashtbl.create 16 in
  List.iter
    (fun signed ->
      let src = signed.Tx.tx.Tx.source in
      Hashtbl.replace by_account src (signed :: Option.value ~default:[] (Hashtbl.find_opt by_account src)))
    txs;
  let queues =
    Hashtbl.fold
      (fun _ q acc ->
        ref
          (List.map (fun s -> (Tx.hash s.Tx.tx, s)) q
          |> List.sort (fun (_, a) (_, b) -> Int.compare a.Tx.tx.Tx.seq_num b.Tx.tx.Tx.seq_num))
        :: acc)
      by_account []
  in
  let sorted =
    let out = ref [] in
    let remaining = ref (List.length txs) in
    while !remaining > 0 do
      (* Heads of all non-empty queues, ordered by hash this round. *)
      let heads =
        List.filter_map
          (fun q -> match !q with [] -> None | (h, _) :: _ -> Some (h, q))
          queues
        |> List.sort (fun (h1, _) (h2, _) -> String.compare h1 h2)
      in
      List.iter
        (fun (_, q) ->
          match !q with
          | (_, h) :: rest ->
              out := h :: !out;
              q := rest;
              decr remaining
          | [] -> ())
        heads
    done;
    List.rev !out
  in
  let slot = State.ledger_seq state in
  let state, results =
    List.fold_left
      (fun (state, acc) signed ->
        let state, outcome = apply_tx ctx state signed in
        if Stellar_obs.Sink.enabled obs then begin
          Stellar_obs.Sink.incr obs (outcome_metric outcome);
          Stellar_obs.Sink.emit obs
            (Stellar_obs.Event.Tx_applied
               {
                 tx = Stellar_crypto.Hex.encode (Tx.hash signed.Tx.tx);
                 slot;
                 ok = tx_succeeded outcome;
               });
          match outcome with
          | Tx_success rs -> Stellar_obs.Sink.add obs "ledger.ops.applied" (List.length rs)
          | _ -> ()
        end;
        (state, (signed, outcome) :: acc))
      (state, []) sorted
  in
  (state, List.rev results)
