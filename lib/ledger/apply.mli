(** Transaction validation and application (§5.2).

    A transaction set is applied as stellar-core does: fees are charged and
    sequence numbers consumed for every valid transaction first, then each
    transaction's operations run atomically — any operation failure rolls
    the whole transaction back (the fee is still consumed). *)

type op_result =
  | Op_success
  | Op_malformed
  | Op_underfunded  (** insufficient spendable balance *)
  | Op_low_reserve  (** would drop below the minimum XLM reserve (§5.1) *)
  | Op_no_destination
  | Op_no_trustline
  | Op_not_authorized
  | Op_line_full  (** receiving trustline limit exceeded *)
  | Op_no_issuer
  | Op_trust_non_empty  (** deleting a trustline with a balance *)
  | Op_offer_not_found
  | Op_cross_self
  | Op_too_few_offers  (** path payment could not be filled *)
  | Op_over_send_max
  | Op_has_sub_entries  (** merging an account that still owns entries *)
  | Op_immutable  (** auth flags locked by AUTH_IMMUTABLE *)
  | Op_bad_seq  (** BumpSequence target below current *)
  | Op_no_fees_to_distribute  (** Inflation with an empty pool or no winners *)

type tx_outcome =
  | Tx_success of op_result list
  | Tx_failed of op_result list  (** ops attempted; state rolled back *)
  | Tx_no_source
  | Tx_bad_seq
  | Tx_bad_auth
  | Tx_insufficient_fee
  | Tx_insufficient_balance
  | Tx_too_early
  | Tx_too_late
  | Tx_malformed

val tx_succeeded : tx_outcome -> bool
val pp_op_result : Format.formatter -> op_result -> unit
val pp_tx_outcome : Format.formatter -> tx_outcome -> unit

type ctx = { verify : public:string -> msg:string -> signature:string -> bool }

val sim_ctx : ctx
(** Verification via {!Stellar_crypto.Sim_sig}. *)

val ed25519_ctx : ctx

val validate : ctx -> State.t -> Tx.signed -> (unit, tx_outcome) result
(** Static checks: source exists, sequence number is next, fee and balance
    suffice, time bounds admit the current close time, signature weight
    meets the highest threshold needed by the operations. *)

val apply_tx : ctx -> State.t -> Tx.signed -> State.t * tx_outcome
(** Validate, charge fee + sequence, then run operations atomically. *)

val apply_tx_set :
  ?obs:Stellar_obs.Sink.t ->
  ctx ->
  State.t ->
  close_time:int ->
  Tx.signed list ->
  State.t * (Tx.signed * tx_outcome) list
(** Close one ledger: set header fields, charge all fees up front, then
    apply in deterministic (hash-shuffled) order, as stellar-core does.
    An enabled [obs] sink counts per-outcome transactions
    ([ledger.tx.success], [ledger.tx.bad_seq], ...) and applied operations
    ([ledger.ops.applied]), and emits one [Tx_applied] lifecycle trace
    event per transaction, keyed by the hex tx hash. *)
