type account_id = Asset.account_id

type flags = { auth_required : bool; auth_revocable : bool; auth_immutable : bool }

let default_flags = { auth_required = false; auth_revocable = false; auth_immutable = false }

type thresholds = { master_weight : int; low : int; medium : int; high : int }

let default_thresholds = { master_weight = 1; low = 0; medium = 0; high = 0 }

type signer = { key : string; weight : int }

type account = {
  id : account_id;
  balance : int;
  seq_num : int;
  num_sub_entries : int;
  flags : flags;
  thresholds : thresholds;
  signers : signer list;
  home_domain : string;
  inflation_dest : account_id option;
}

let new_account ~id ~balance ~seq_num =
  {
    id;
    balance;
    seq_num;
    num_sub_entries = 0;
    flags = default_flags;
    thresholds = default_thresholds;
    signers = [];
    home_domain = "";
    inflation_dest = None;
  }

type trustline = {
  account : account_id;
  asset : Asset.t;
  tl_balance : int;
  limit : int;
  authorized : bool;
}

type offer = {
  offer_id : int;
  seller : account_id;
  selling : Asset.t;
  buying : Asset.t;
  amount : int;
  price : Price.t;
  passive : bool;
}

type data = { owner : account_id; name : string; value : string }

type key =
  | Account_key of account_id
  | Trustline_key of account_id * Asset.t
  | Offer_key of int
  | Data_key of account_id * string

type entry =
  | Account_entry of account
  | Trustline_entry of trustline
  | Offer_entry of offer
  | Data_entry of data

let key_of_entry = function
  | Account_entry a -> Account_key a.id
  | Trustline_entry t -> Trustline_key (t.account, t.asset)
  | Offer_entry o -> Offer_key o.offer_id
  | Data_entry d -> Data_key (d.owner, d.name)

let compare_key a b =
  let rank = function
    | Account_key _ -> 0
    | Trustline_key _ -> 1
    | Offer_key _ -> 2
    | Data_key _ -> 3
  in
  match (a, b) with
  | Account_key x, Account_key y -> String.compare x y
  | Trustline_key (x1, x2), Trustline_key (y1, y2) ->
      let c = String.compare x1 y1 in
      if c <> 0 then c else Asset.compare x2 y2
  | Offer_key x, Offer_key y -> Int.compare x y
  | Data_key (x1, x2), Data_key (y1, y2) ->
      let c = String.compare x1 y1 in
      if c <> 0 then c else String.compare x2 y2
  | _ -> Int.compare (rank a) (rank b)

let encode_key = function
  | Account_key id -> "A:" ^ id
  | Trustline_key (id, asset) -> "T:" ^ id ^ ":" ^ Asset.encode asset
  | Offer_key id -> Printf.sprintf "O:%d" id
  | Data_key (id, name) -> "D:" ^ id ^ ":" ^ name

module Xdr = Stellar_xdr.Xdr

let signer_xdr =
  Xdr.conv
    (fun s -> (s.key, s.weight))
    (fun (key, weight) -> { key; weight })
    Xdr.(pair (str ()) hyper)

let flags_xdr =
  Xdr.conv
    (fun f -> (f.auth_required, (f.auth_revocable, f.auth_immutable)))
    (fun (auth_required, (auth_revocable, auth_immutable)) ->
      { auth_required; auth_revocable; auth_immutable })
    Xdr.(pair bool (pair bool bool))

let thresholds_xdr =
  Xdr.conv
    (fun t -> (t.master_weight, (t.low, (t.medium, t.high))))
    (fun (master_weight, (low, (medium, high))) -> { master_weight; low; medium; high })
    Xdr.(pair hyper (pair hyper (pair hyper hyper)))

let key_xdr =
  Xdr.union
    ~tag:(function Account_key _ -> 0 | Trustline_key _ -> 1 | Offer_key _ -> 2 | Data_key _ -> 3)
    ~write_arm:(fun w -> function
      | Account_key id -> Xdr.Writer.opaque_var w id
      | Trustline_key (id, asset) ->
          Xdr.Writer.opaque_var w id;
          Asset.xdr.Xdr.write w asset
      | Offer_key id -> Xdr.Writer.hyper w id
      | Data_key (id, name) ->
          Xdr.Writer.opaque_var w id;
          Xdr.Writer.opaque_var w name)
    ~read_arm:(fun tag r ->
      match tag with
      | 0 -> Account_key (Xdr.Reader.opaque_var r ())
      | 1 ->
          let id = Xdr.Reader.opaque_var r () in
          Trustline_key (id, Asset.xdr.Xdr.read r)
      | 2 -> Offer_key (Xdr.Reader.hyper r)
      | 3 ->
          let id = Xdr.Reader.opaque_var r () in
          Data_key (id, Xdr.Reader.opaque_var r ())
      | _ -> raise (Xdr.Error "Entry.key: bad discriminant"))

let account_xdr =
  let open Xdr in
  {
    write =
      (fun w a ->
        Writer.opaque_var w a.id;
        Writer.hyper w a.balance;
        Writer.hyper w a.seq_num;
        Writer.hyper w a.num_sub_entries;
        flags_xdr.write w a.flags;
        thresholds_xdr.write w a.thresholds;
        (list signer_xdr).write w a.signers;
        Writer.opaque_var w a.home_domain;
        (option (str ())).write w a.inflation_dest);
    read =
      (fun r ->
        let id = Reader.opaque_var r () in
        let balance = Reader.hyper r in
        let seq_num = Reader.hyper r in
        let num_sub_entries = Reader.hyper r in
        let flags = flags_xdr.read r in
        let thresholds = thresholds_xdr.read r in
        let signers = (list signer_xdr).read r in
        let home_domain = Reader.opaque_var r () in
        let inflation_dest = (option (str ())).read r in
        { id; balance; seq_num; num_sub_entries; flags; thresholds; signers;
          home_domain; inflation_dest });
  }

let trustline_xdr =
  let open Xdr in
  {
    write =
      (fun w t ->
        Writer.opaque_var w t.account;
        Asset.xdr.write w t.asset;
        Writer.hyper w t.tl_balance;
        Writer.hyper w t.limit;
        Writer.bool w t.authorized);
    read =
      (fun r ->
        let account = Reader.opaque_var r () in
        let asset = Asset.xdr.read r in
        let tl_balance = Reader.hyper r in
        let limit = Reader.hyper r in
        let authorized = Reader.bool r in
        { account; asset; tl_balance; limit; authorized });
  }

let offer_xdr =
  let open Xdr in
  {
    write =
      (fun w o ->
        Writer.hyper w o.offer_id;
        Writer.opaque_var w o.seller;
        Asset.xdr.write w o.selling;
        Asset.xdr.write w o.buying;
        Writer.hyper w o.amount;
        Price.xdr.write w o.price;
        Writer.bool w o.passive);
    read =
      (fun r ->
        let offer_id = Reader.hyper r in
        let seller = Reader.opaque_var r () in
        let selling = Asset.xdr.read r in
        let buying = Asset.xdr.read r in
        let amount = Reader.hyper r in
        let price = Price.xdr.read r in
        let passive = Reader.bool r in
        { offer_id; seller; selling; buying; amount; price; passive });
  }

let data_xdr =
  Xdr.conv
    (fun d -> (d.owner, (d.name, d.value)))
    (fun (owner, (name, value)) -> { owner; name; value })
    Xdr.(pair (str ()) (pair (str ()) (str ())))

let entry_xdr =
  Xdr.union
    ~tag:(function
      | Account_entry _ -> 0 | Trustline_entry _ -> 1 | Offer_entry _ -> 2 | Data_entry _ -> 3)
    ~write_arm:(fun w -> function
      | Account_entry a -> account_xdr.Xdr.write w a
      | Trustline_entry t -> trustline_xdr.Xdr.write w t
      | Offer_entry o -> offer_xdr.Xdr.write w o
      | Data_entry d -> data_xdr.Xdr.write w d)
    ~read_arm:(fun tag r ->
      match tag with
      | 0 -> Account_entry (account_xdr.Xdr.read r)
      | 1 -> Trustline_entry (trustline_xdr.Xdr.read r)
      | 2 -> Offer_entry (offer_xdr.Xdr.read r)
      | 3 -> Data_entry (data_xdr.Xdr.read r)
      | _ -> raise (Xdr.Error "Entry.entry: bad discriminant"))

let encode_entry e = Xdr.encode entry_xdr e

let pp_key fmt k =
  let short s = Stellar_crypto.Hex.encode (String.sub s 0 (min 4 (String.length s))) in
  match k with
  | Account_key id -> Format.fprintf fmt "account:%s" (short id)
  | Trustline_key (id, asset) -> Format.fprintf fmt "trust:%s:%a" (short id) Asset.pp asset
  | Offer_key id -> Format.fprintf fmt "offer:%d" id
  | Data_key (id, name) -> Format.fprintf fmt "data:%s:%s" (short id) name
