(** The four ledger-entry types (§5.1): accounts, trustlines, offers, and
    account data, plus the keys that identify them in the bucket list. *)

type account_id = Asset.account_id

type flags = {
  auth_required : bool;  (** issuer must authorize trustlines (KYC, §5.1) *)
  auth_revocable : bool;  (** issuer may later clear the authorized flag *)
  auth_immutable : bool;  (** these flags may never change again *)
}

val default_flags : flags

type thresholds = { master_weight : int; low : int; medium : int; high : int }

val default_thresholds : thresholds

type signer = { key : string; weight : int }

type account = {
  id : account_id;
  balance : int;  (** native XLM, in stroops *)
  seq_num : int;  (** last consumed sequence number *)
  num_sub_entries : int;  (** drives the reserve requirement *)
  flags : flags;
  thresholds : thresholds;
  signers : signer list;
  home_domain : string;
  inflation_dest : account_id option;
}

val new_account : id:account_id -> balance:int -> seq_num:int -> account

type trustline = {
  account : account_id;
  asset : Asset.t;
  tl_balance : int;
  limit : int;
  authorized : bool;
}

type offer = {
  offer_id : int;
  seller : account_id;
  selling : Asset.t;
  buying : Asset.t;
  amount : int;  (** remaining units of [selling] on offer *)
  price : Price.t;  (** units of [buying] per unit of [selling] *)
  passive : bool;
}

type data = { owner : account_id; name : string; value : string }

type key =
  | Account_key of account_id
  | Trustline_key of account_id * Asset.t
  | Offer_key of int
  | Data_key of account_id * string

type entry =
  | Account_entry of account
  | Trustline_entry of trustline
  | Offer_entry of offer
  | Data_entry of data

val key_of_entry : entry -> key
val compare_key : key -> key -> int

val encode_key : key -> string
(** Short printable key, for hashtable keys only — wire format is
    {!key_xdr}. *)

val key_xdr : key Stellar_xdr.Xdr.codec
val entry_xdr : entry Stellar_xdr.Xdr.codec

val encode_entry : entry -> string
(** Canonical XDR bytes of {!entry_xdr}; hashed into buckets and the ledger
    snapshot hash. *)

val pp_key : Format.formatter -> key -> unit
