type t = { n : int; d : int }

let limit = 1 lsl 31

let make ~n ~d =
  if n <= 0 || d <= 0 || n >= limit || d >= limit then
    invalid_arg "Price.make: components must be in (0, 2^31)";
  { n; d }

let one = { n = 1; d = 1 }
let compare a b = Int.compare (a.n * b.d) (b.n * a.d)
let equal a b = compare a b = 0
let inverse p = { n = p.d; d = p.n }
let to_float p = float_of_int p.n /. float_of_int p.d
let pp fmt p = Format.fprintf fmt "%d/%d" p.n p.d

(* Amounts are bounded by the caller (Tx validation caps them at 2^53 - 1),
   and price components are < 2^31, so x*n could still overflow; guard. *)
let checked_mul x y = if x <> 0 && abs y > max_int / abs x then None else Some (x * y)

let mul_floor x p =
  Option.map (fun v -> v / p.d) (checked_mul x p.n)

let mul_ceil x p =
  Option.map (fun v -> (v + p.d - 1) / p.d) (checked_mul x p.n)

let div_floor x p = mul_floor x (inverse p)
let div_ceil x p = mul_ceil x (inverse p)

let crosses ~taker ~maker = taker.n * maker.n <= taker.d * maker.d

module Xdr = Stellar_xdr.Xdr

let xdr =
  Xdr.conv
    (fun p -> (p.n, p.d))
    (fun (n, d) ->
      if n <= 0 || d <= 0 || n >= limit || d >= limit then
        raise (Xdr.Error "Price: components must be in (0, 2^31)");
      { n; d })
    (Xdr.pair Xdr.uint32 Xdr.uint32)
