(** Ledger headers (Fig. 3): each header chains to the previous one and
    commits to the SCP output, the applied transaction set, the transaction
    results, and a snapshot hash of the entire ledger state. *)

type t = {
  ledger_seq : int;
  prev_hash : string;  (** hash of the previous header *)
  scp_value_hash : string;  (** hash of the externalized consensus value *)
  tx_set_hash : string;
  results_hash : string;
  snapshot_hash : string;  (** bucket-list / full-state hash *)
  close_time : int;
  base_fee : int;
  base_reserve : int;
  protocol_version : int;
  fee_pool : int;  (** fees collected so far (recycled by vote, §5.2) *)
  id_pool : int;  (** next offer id *)
  skip_list : string list;  (** hashes at exponentially-spaced back-steps *)
}

val genesis_hash : string

val xdr : t Stellar_xdr.Xdr.codec

val encode : t -> string
(** Canonical XDR bytes. *)

val decode : string -> (t, string) result

val hash : t -> string
(** SHA-256 over {!encode}. *)

val make :
  prev:t option ->
  scp_value_hash:string ->
  tx_set_hash:string ->
  results_hash:string ->
  snapshot_hash:string ->
  state:State.t ->
  t
(** Builds the header for the state's current [ledger_seq]/[close_time],
    maintaining the skip list. *)

val verify_chain : t list -> bool
(** Checks [prev_hash] links across a list of headers ordered by sequence. *)

val pp : Format.formatter -> t -> unit
