(** A bucket: an immutable, key-sorted run of ledger entries (live or
    tombstoned), hashed once at construction (§5.1).

    Buckets are only ever read sequentially as part of merges — the paper
    notes random access by key is not required, which lets the structure
    relax LSM-tree constraints.  We keep a binary-search [find] anyway for
    the archive/catchup tests. *)

type item = { key : Stellar_ledger.Entry.key; entry : Stellar_ledger.Entry.entry option }
(** [entry = None] is a tombstone (the entry died). *)

type t

val empty : t
val is_empty : t -> bool
val size : t -> int

val of_items : item list -> t
(** Sorts and deduplicates by key (last write wins). *)

val items : t -> item list
val hash : t -> string
(** SHA-256 over the serialized run; the empty bucket hashes to a fixed
    sentinel. *)

val item_xdr : item Stellar_xdr.Xdr.codec

val xdr : t Stellar_xdr.Xdr.codec
(** Canonical XDR of the sorted run; decoding recomputes the hash. *)

val find : t -> Stellar_ledger.Entry.key -> item option

val merge : newer:t -> older:t -> keep_tombstones:bool -> t
(** Sequential merge-join: entries from [newer] shadow [older].  At the
    bottom level tombstones are dropped ([keep_tombstones = false]),
    reclaiming space for entries that died long ago. *)

val live_entries : t -> Stellar_ledger.Entry.entry list
