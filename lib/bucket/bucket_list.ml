type level = { bucket : Bucket.t; fill : int  (* batches absorbed since last spill *) }

type t = { levels : level array; spill_factor : int }

let create ?(levels = 10) ?(spill_factor = 4) () =
  if levels < 1 || spill_factor < 2 then invalid_arg "Bucket_list.create";
  { levels = Array.make levels { bucket = Bucket.empty; fill = 0 }; spill_factor }

let level_count t = Array.length t.levels
let level_bucket t i = t.levels.(i).bucket

let add_batch ?(obs = Stellar_obs.Sink.null) t batch =
  let observed = Stellar_obs.Sink.enabled obs in
  let levels = Array.copy t.levels in
  let nlevels = Array.length levels in
  (* Merge the new batch into level 0. *)
  let b0 = Bucket.of_items batch in
  levels.(0) <-
    {
      bucket = Bucket.merge ~newer:b0 ~older:levels.(0).bucket ~keep_tombstones:true;
      fill = levels.(0).fill + 1;
    };
  if observed then begin
    Stellar_obs.Sink.incr obs "bucket.merge";
    Stellar_obs.Sink.emit obs
      (Stellar_obs.Event.Bucket_merge { level = 0; entries = Bucket.size levels.(0).bucket })
  end;
  (* Cascade spills: a full level pushes its whole bucket down. *)
  let rec spill i =
    if i < nlevels - 1 && levels.(i).fill >= t.spill_factor then begin
      let bottom = i + 1 = nlevels - 1 in
      levels.(i + 1) <-
        {
          bucket =
            Bucket.merge ~newer:levels.(i).bucket ~older:levels.(i + 1).bucket
              ~keep_tombstones:(not bottom);
          fill = levels.(i + 1).fill + 1;
        };
      levels.(i) <- { bucket = Bucket.empty; fill = 0 };
      if observed then begin
        Stellar_obs.Sink.incr obs "bucket.spill";
        Stellar_obs.Sink.emit obs
          (Stellar_obs.Event.Bucket_merge
             { level = i + 1; entries = Bucket.size levels.(i + 1).bucket })
      end;
      spill (i + 1)
    end
  in
  spill 0;
  let t = { t with levels } in
  if observed then
    Stellar_obs.Sink.set_gauge obs "bucket.entries"
      (float_of_int (Array.fold_left (fun acc l -> acc + Bucket.size l.bucket) 0 levels));
  t

let hash t =
  let ctx = Stellar_crypto.Sha256.init () in
  Array.iter (fun l -> Stellar_crypto.Sha256.update ctx (Bucket.hash l.bucket)) t.levels;
  Stellar_crypto.Sha256.final ctx

let level_sizes t = Array.to_list (Array.map (fun l -> Bucket.size l.bucket) t.levels)
let total_entries t = Array.fold_left (fun acc l -> acc + Bucket.size l.bucket) 0 t.levels

let find t key =
  let rec go i =
    if i >= Array.length t.levels then None
    else
      match Bucket.find t.levels.(i).bucket key with
      | Some item -> Some item
      | None -> go (i + 1)
  in
  go 0

let live_entries t =
  (* Merge all levels newest-first, then keep live entries. *)
  let merged =
    Array.fold_left
      (fun acc l -> Bucket.merge ~newer:acc ~older:l.bucket ~keep_tombstones:false)
      Bucket.empty t.levels
  in
  Bucket.live_entries merged

let diff_levels a b =
  let n = max (level_count a) (level_count b) in
  let bucket_hash t i =
    if i < level_count t then Bucket.hash (level_bucket t i) else Bucket.hash Bucket.empty
  in
  List.filter
    (fun i -> not (String.equal (bucket_hash a i) (bucket_hash b i)))
    (List.init n Fun.id)

module Xdr = Stellar_xdr.Xdr

let level_xdr =
  Xdr.conv
    (fun l -> (l.bucket, l.fill))
    (fun (bucket, fill) -> { bucket; fill })
    Xdr.(pair Bucket.xdr uint32)

let xdr =
  Xdr.conv
    (fun t -> (t.spill_factor, Array.to_list t.levels))
    (fun (spill_factor, levels) ->
      if spill_factor < 2 || levels = [] then raise (Xdr.Error "Bucket_list: bad shape");
      { levels = Array.of_list levels; spill_factor })
    Xdr.(pair uint32 (list ~max:64 level_xdr))

let of_state state =
  let t = create () in
  let items =
    List.map
      (fun e -> { Bucket.key = Stellar_ledger.Entry.key_of_entry e; entry = Some e })
      (Stellar_ledger.State.all_entries state)
  in
  let levels = Array.copy t.levels in
  let bottom = Array.length levels - 1 in
  levels.(bottom) <- { bucket = Bucket.of_items items; fill = 0 };
  { t with levels }
