open Stellar_ledger

type item = { key : Entry.key; entry : Entry.entry option }

type t = { items : item array; hash : string }

module Xdr = Stellar_xdr.Xdr

let item_xdr =
  Xdr.conv
    (fun it -> (it.key, it.entry))
    (fun (key, entry) -> { key; entry })
    Xdr.(pair Entry.key_xdr (option Entry.entry_xdr))

let encode_item it = Xdr.encode item_xdr it

let compute_hash items =
  if Array.length items = 0 then Stellar_crypto.Sha256.digest "empty-bucket"
  else begin
    let ctx = Stellar_crypto.Sha256.init () in
    Array.iter (fun it -> Stellar_crypto.Sha256.update ctx (encode_item it)) items;
    Stellar_crypto.Sha256.final ctx
  end

let empty = { items = [||]; hash = compute_hash [||] }
let is_empty t = Array.length t.items = 0
let size t = Array.length t.items

let of_items list =
  (* Sort by key; on duplicates the later element of [list] wins. *)
  let tbl = Hashtbl.create (List.length list) in
  List.iteri (fun i it -> Hashtbl.replace tbl (Entry.encode_key it.key) (i, it)) list;
  let deduped = Hashtbl.fold (fun _ (_, it) acc -> it :: acc) tbl [] in
  let arr = Array.of_list deduped in
  Array.sort (fun a b -> Entry.compare_key a.key b.key) arr;
  { items = arr; hash = compute_hash arr }

let items t = Array.to_list t.items
let hash t = t.hash

let find t key =
  let lo = ref 0 and hi = ref (Array.length t.items - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Entry.compare_key t.items.(mid).key key in
    if c = 0 then found := Some t.items.(mid)
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let merge ~newer ~older ~keep_tombstones =
  let n = Array.length newer.items and m = Array.length older.items in
  let out = ref [] in
  let push it = if it.entry <> None || keep_tombstones then out := it :: !out in
  let i = ref 0 and j = ref 0 in
  while !i < n || !j < m do
    if !i >= n then begin
      push older.items.(!j);
      incr j
    end
    else if !j >= m then begin
      push newer.items.(!i);
      incr i
    end
    else begin
      let c = Entry.compare_key newer.items.(!i).key older.items.(!j).key in
      if c < 0 then begin
        push newer.items.(!i);
        incr i
      end
      else if c > 0 then begin
        push older.items.(!j);
        incr j
      end
      else begin
        (* same key: newer shadows older *)
        push newer.items.(!i);
        incr i;
        incr j
      end
    end
  done;
  let arr = Array.of_list (List.rev !out) in
  { items = arr; hash = compute_hash arr }

let live_entries t =
  Array.to_list t.items |> List.filter_map (fun it -> it.entry)

(* Items are written in their canonical sorted order, so decoding rebuilds
   the identical array (and hash) without re-sorting. *)
let xdr =
  Xdr.conv
    (fun t -> Array.to_list t.items)
    (fun items ->
      let arr = Array.of_list items in
      { items = arr; hash = compute_hash arr })
    (Xdr.list item_xdr)
