(** The bucket list (§5.1): ledger entries stratified by time of last
    modification into exponentially-sized levels, so that hashing and state
    reconciliation cost is proportional to recent churn rather than total
    ledger size.

    Level 0 receives each ledger's batch of changed entries; when a level
    has absorbed [spill_factor] batches it spills (merges) into the level
    below, giving level [i] a capacity of ~[spill_factor^i] ledgers of
    churn.  The cumulative hash of per-level bucket hashes is the snapshot
    hash committed in the ledger header; reconciling two bucket lists only
    transfers the levels whose hashes differ. *)

type t

val create : ?levels:int -> ?spill_factor:int -> unit -> t
(** Defaults: 10 levels, spill factor 4 (stellar-core's shape). *)

val add_batch : ?obs:Stellar_obs.Sink.t -> t -> Bucket.item list -> t
(** Absorb one ledger's changes; performs any due spills.  An enabled [obs]
    sink emits a [Bucket_merge] event per level touched, counts
    [bucket.merge]/[bucket.spill] and tracks the [bucket.entries] gauge. *)

val hash : t -> string
val level_count : t -> int
val level_bucket : t -> int -> Bucket.t
val level_sizes : t -> int list
val total_entries : t -> int

val find : t -> Stellar_ledger.Entry.key -> Bucket.item option
(** Newest-level match wins (may be a tombstone). *)

val live_entries : t -> Stellar_ledger.Entry.entry list
(** Reconstruct the full live ledger state (used in catchup). *)

val diff_levels : t -> t -> int list
(** Levels whose bucket hashes differ — the buckets a reconnecting node
    must download (§5.1: "downloading only buckets that differ"). *)

val xdr : t Stellar_xdr.Xdr.codec
(** Canonical XDR of the whole list (spill factor, per-level buckets and
    fill counters), used for archive checkpoint snapshots. *)

val of_state : Stellar_ledger.State.t -> t
(** Bootstrap a bucket list holding a full state snapshot in its bottom
    level. *)
