(** SCP message types: ballots, the four pledge kinds (NOMINATE / PREPARE /
    CONFIRM / EXTERNALIZE), statements and signed envelopes, following
    draft-mazieres-dinrg-scp-05.  Every statement carries its sender's full
    quorum set, per the paper: "Every node specifies its quorum slices in
    every message it sends." *)

type node_id = Quorum_set.node_id
type value = string

type ballot = { counter : int; value : value }

module Ballot : sig
  val compare : ballot -> ballot -> int
  (** Lexicographic on (counter, value). *)

  val equal : ballot -> ballot -> bool
  val compatible : ballot -> ballot -> bool
  (** Same value. *)

  val less_and_compatible : ballot -> ballot -> bool
  (** [less_and_compatible a b]: [a <= b] and same value. *)

  val less_and_incompatible : ballot -> ballot -> bool
  val pp : Format.formatter -> ballot -> unit

  val max_counter : int
  (** Stand-in for the draft's infinite counter. *)
end

type nomination = {
  votes : value list;  (** sorted, deduplicated *)
  accepted : value list;  (** sorted, deduplicated *)
}

type prepare = {
  ballot : ballot;  (** b: currently voting prepare(b) *)
  prepared : ballot option;  (** p: highest accepted prepared *)
  prepared_prime : ballot option;  (** p': next-highest, incompatible with p *)
  n_c : int;  (** lowest counter for which we vote commit, 0 if none *)
  n_h : int;  (** counter of highest confirmed-prepared ballot, 0 if none *)
}

type confirm = {
  ballot : ballot;  (** b *)
  n_prepared : int;  (** counter of highest accepted-prepared ballot *)
  n_commit : int;  (** lowest counter of accepted commit range *)
  n_h : int;  (** highest counter of accepted commit range *)
}

type externalize = {
  commit : ballot;  (** c: confirmed commit with lowest counter *)
  n_h : int;  (** highest confirmed commit counter *)
}

type pledge =
  | Nominate of nomination
  | Prepare of prepare
  | Confirm of confirm
  | Externalize of externalize

type statement = {
  node_id : node_id;
  slot : int;
  quorum_set : Quorum_set.t;
  pledge : pledge;
}

type envelope = { statement : statement; signature : string }

val statement_xdr : statement Stellar_xdr.Xdr.codec
val envelope_xdr : envelope Stellar_xdr.Xdr.codec

val statement_bytes : statement -> string
(** Canonical XDR serialization, signed to form envelopes and used for
    message-size accounting in the simulator. *)

val decode_statement : string -> (statement, string) result
val encode_envelope : envelope -> string
val decode_envelope : string -> (envelope, string) result

val envelope_size : envelope -> int
(** Exact wire size: [Bytes.length] of the {!envelope_xdr} encoding. *)

val pledge_kind : pledge -> string
val pp_statement : Format.formatter -> statement -> unit

(** Working-ballot counter of a ballot-protocol statement: its [b.counter],
    or [Ballot.max_counter] for EXTERNALIZE. *)
val statement_ballot_counter : statement -> int option
