(** Nested quorum sets (§6.1).

    A quorum set is a threshold [k] over [n] entries, where each entry is
    either a validator or, recursively, another quorum set.  Any [k] of the
    [n] entries form a quorum slice.  A quorum emerges from slices: a set of
    nodes [S] is a quorum when every member has some slice fully inside [S]
    (see {!Federation}). *)

type node_id = string
(** A validator identity: its 32-byte public key. *)

type t = { threshold : int; validators : node_id list; inner : t list }

val make : threshold:int -> ?inner:t list -> node_id list -> t
(** @raise Invalid_argument if the threshold is not in [\[1, n]]. *)

val singleton : node_id -> t

val majority : node_id list -> t
(** Simple-majority quorum set: threshold [⌊n/2⌋ + 1], as used by the
    paper's controlled experiments (§7.3). *)

val super_majority : node_id list -> t
(** Threshold [⌈2n/3⌉] rounded up per stellar-core's 67% rule. *)

val percent_threshold : int -> int -> int
(** [percent_threshold pct n] is stellar-core's rounding:
    [1 + (((n * pct) - 1) / 100)]. *)

val is_sane : t -> bool
(** Thresholds within range at every level, no duplicate validators, and no
    empty quorum sets. *)

val member_count : t -> int
val all_validators : t -> node_id list
(** All validators mentioned anywhere in the tree, deduplicated. *)

val is_quorum_slice : t -> (node_id -> bool) -> bool
(** [is_quorum_slice q in_set] — does the set described by the predicate
    contain at least one slice of [q]? *)

val is_v_blocking : t -> (node_id -> bool) -> bool
(** Does the predicate set intersect every slice of [q]?  Equivalently, can
    it deny [q]'s owner any quorum? *)

val weight : t -> node_id -> float
(** Fraction of slices containing the given node (§3.2.5); 0 if absent. *)

val xdr : t Stellar_xdr.Xdr.codec
(** Canonical XDR: threshold, validators, inner sets (recursive, depth ≤ 8;
    decoding re-checks the {!make} threshold invariant). *)

val encode : t -> string
(** Canonical XDR bytes, used for hashing and message sizing. *)

val decode : string -> (t, string) result

val hash : t -> string
(** SHA-256 of {!encode}. *)

val pp : names:(node_id -> string) -> Format.formatter -> t -> unit
