type node_id = string

type t = { threshold : int; validators : node_id list; inner : t list }

let member_count_shallow t = List.length t.validators + List.length t.inner

let make ~threshold ?(inner = []) validators =
  let t = { threshold; validators; inner } in
  if threshold < 1 || threshold > member_count_shallow t then
    invalid_arg "Quorum_set.make: threshold out of range";
  t

let singleton v = make ~threshold:1 [ v ]

let majority validators =
  make ~threshold:((List.length validators / 2) + 1) validators

(* stellar-core computes percentage thresholds as 1 + (n*pct - 1)/100. *)
let percent_threshold pct n = 1 + (((n * pct) - 1) / 100)

let super_majority validators =
  make ~threshold:(percent_threshold 67 (List.length validators)) validators

let member_count t = member_count_shallow t

let rec all_validators_acc t acc =
  let acc = List.fold_left (fun acc v -> v :: acc) acc t.validators in
  List.fold_left (fun acc q -> all_validators_acc q acc) acc t.inner

let all_validators t = List.sort_uniq String.compare (all_validators_acc t [])

let rec is_sane_depth depth t =
  depth <= 4
  && t.threshold >= 1
  && t.threshold <= member_count_shallow t
  && member_count_shallow t >= 1
  && List.for_all (is_sane_depth (depth + 1)) t.inner

let is_sane t =
  let vals = all_validators_acc t [] in
  List.length (List.sort_uniq String.compare vals) = List.length vals
  && is_sane_depth 0 t

let rec is_quorum_slice t in_set =
  let hits =
    List.length (List.filter in_set t.validators)
    + List.length (List.filter (fun q -> is_quorum_slice q in_set) t.inner)
  in
  hits >= t.threshold

(* A set blocks [t] iff fewer than [threshold] entries remain unblocked:
   then no slice can avoid the set. *)
let rec is_v_blocking t in_set =
  let unblocked =
    List.length (List.filter (fun v -> not (in_set v)) t.validators)
    + List.length (List.filter (fun q -> not (is_v_blocking q in_set)) t.inner)
  in
  unblocked < t.threshold

let rec weight t node =
  let n = member_count_shallow t in
  let direct = float_of_int t.threshold /. float_of_int n in
  if List.exists (String.equal node) t.validators then direct
  else
    (* take the maximum over inner sets containing the node *)
    List.fold_left
      (fun acc q ->
        let w = weight q node in
        if w > 0.0 then Float.max acc (direct *. w) else acc)
      0.0 t.inner

module Xdr = Stellar_xdr.Xdr

(* Nesting is bounded (stellar-core allows depth 2; we accept a bit more)
   so a malicious envelope cannot force unbounded recursion. *)
let max_depth = 8

let rec write_xdr w depth t =
  if depth > max_depth then raise (Xdr.Error "Quorum_set: nesting too deep");
  Xdr.Writer.uint32 w t.threshold;
  (Xdr.list (Xdr.str ())).Xdr.write w t.validators;
  Xdr.Writer.uint32 w (List.length t.inner);
  List.iter (write_xdr w (depth + 1)) t.inner

let rec read_xdr r depth =
  if depth > max_depth then raise (Xdr.Error "Quorum_set: nesting too deep");
  let threshold = Xdr.Reader.uint32 r in
  let validators = (Xdr.list (Xdr.str ())).Xdr.read r in
  let n_inner = Xdr.Reader.uint32 r in
  if n_inner * 4 > Xdr.Reader.remaining r then
    raise (Xdr.Error "Quorum_set: inner count exceeds buffer");
  let inner = List.init n_inner (fun _ -> read_xdr r (depth + 1)) in
  let t = { threshold; validators; inner } in
  if threshold < 1 || threshold > member_count_shallow t then
    raise (Xdr.Error "Quorum_set: threshold out of range");
  t

let xdr = { Xdr.write = (fun w t -> write_xdr w 0 t); read = (fun r -> read_xdr r 0) }

let encode t = Xdr.encode xdr t
let decode s = Xdr.decode xdr s

let hash t = Stellar_crypto.Sha256.digest (encode t)

let rec pp ~names fmt t =
  Format.fprintf fmt "@[<hov 2>%d-of-{%a%s%a}@]" t.threshold
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       (fun f v -> Format.pp_print_string f (names v)))
    t.validators
    (if t.validators <> [] && t.inner <> [] then ", " else "")
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       (pp ~names))
    t.inner
