(** The application interface to SCP.

    SCP agrees on opaque values; everything application-specific —
    validation, combining candidate values, signing, timers, and what to do
    with an externalized value — is supplied by the driver (in Stellar, the
    herder). *)

type validation = Invalid | Valid

type hooks = {
  on_nomination_round : slot:int -> round:int -> unit;
  on_ballot_bump : slot:int -> counter:int -> unit;
  on_timeout : slot:int -> kind:[ `Nomination | `Ballot ] -> unit;
  on_phase_change : slot:int -> phase:string -> unit;
}

val no_hooks : hooks

type t = {
  emit_envelope : Types.envelope -> unit;
      (** Broadcast a signed envelope to peers. *)
  sign : string -> string;
  verify : Types.node_id -> msg:string -> signature:string -> bool;
  validate_value : slot:int -> Types.value -> validation;
  combine_candidates : slot:int -> Types.value list -> Types.value option;
      (** Deterministically combine confirmed-nominated values into a single
          composite (§5.3). *)
  value_externalized : slot:int -> Types.value -> unit;
  nomination_timeout : round:int -> float;
  ballot_timeout : counter:int -> float;
  schedule : delay:float -> (unit -> unit) -> unit -> unit;
      (** [schedule ~delay f] starts a timer and returns its cancel
          function. *)
  hooks : hooks;
  obs : Stellar_obs.Sink.t;
      (** Observability sink; {!Stellar_obs.Sink.null} disables all
          instrumentation at the cost of one branch per site. *)
}

val make :
  emit_envelope:(Types.envelope -> unit) ->
  sign:(string -> string) ->
  verify:(Types.node_id -> msg:string -> signature:string -> bool) ->
  validate_value:(slot:int -> Types.value -> validation) ->
  combine_candidates:(slot:int -> Types.value list -> Types.value option) ->
  value_externalized:(slot:int -> Types.value -> unit) ->
  schedule:(delay:float -> (unit -> unit) -> unit -> unit) ->
  ?nomination_timeout:(round:int -> float) ->
  ?ballot_timeout:(counter:int -> float) ->
  ?hooks:hooks ->
  ?obs:Stellar_obs.Sink.t ->
  unit ->
  t
(** With an enabled [obs] sink, the driver interposes on [hooks] to emit
    trace events (nomination rounds, ballot bumps, confirm/externalize phase
    changes, timeouts) and bump the matching [scp.*] counters before calling
    the caller's hook. *)

val default_nomination_timeout : round:int -> float
(** stellar-core's schedule: [1 + round] seconds. *)

val default_ballot_timeout : counter:int -> float
(** stellar-core's schedule: [1 + counter] seconds. *)
