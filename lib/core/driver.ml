type validation = Invalid | Valid

type hooks = {
  on_nomination_round : slot:int -> round:int -> unit;
  on_ballot_bump : slot:int -> counter:int -> unit;
  on_timeout : slot:int -> kind:[ `Nomination | `Ballot ] -> unit;
  on_phase_change : slot:int -> phase:string -> unit;
}

let no_hooks =
  {
    on_nomination_round = (fun ~slot:_ ~round:_ -> ());
    on_ballot_bump = (fun ~slot:_ ~counter:_ -> ());
    on_timeout = (fun ~slot:_ ~kind:_ -> ());
    on_phase_change = (fun ~slot:_ ~phase:_ -> ());
  }

type t = {
  emit_envelope : Types.envelope -> unit;
  sign : string -> string;
  verify : Types.node_id -> msg:string -> signature:string -> bool;
  validate_value : slot:int -> Types.value -> validation;
  combine_candidates : slot:int -> Types.value list -> Types.value option;
  value_externalized : slot:int -> Types.value -> unit;
  nomination_timeout : round:int -> float;
  ballot_timeout : counter:int -> float;
  schedule : delay:float -> (unit -> unit) -> unit -> unit;
  hooks : hooks;
  obs : Stellar_obs.Sink.t;
}

let default_nomination_timeout ~round = float_of_int (1 + round)
let default_ballot_timeout ~counter = float_of_int (1 + counter)

(* Protocol internals already report through [hooks]; with an enabled sink we
   interpose once here so nomination/ballot code needs no obs plumbing. *)
let observe_hooks obs hooks =
  let module S = Stellar_obs.Sink in
  let module E = Stellar_obs.Event in
  if not (S.enabled obs) then hooks
  else
    {
      on_nomination_round =
        (fun ~slot ~round ->
          S.incr obs "scp.nomination.round";
          S.emit obs (E.Nomination_round { slot; round });
          hooks.on_nomination_round ~slot ~round);
      on_ballot_bump =
        (fun ~slot ~counter ->
          S.incr obs "scp.ballot.bump";
          S.emit obs (E.Ballot_bump { slot; counter });
          hooks.on_ballot_bump ~slot ~counter);
      on_timeout =
        (fun ~slot ~kind ->
          S.incr obs
            (match kind with
            | `Nomination -> "scp.timeout.nomination"
            | `Ballot -> "scp.timeout.ballot");
          S.emit obs (E.Timeout_fired { slot; kind });
          hooks.on_timeout ~slot ~kind);
      on_phase_change =
        (fun ~slot ~phase ->
          (match phase with
          | "confirm" ->
              S.incr obs "scp.phase.confirm";
              S.emit obs (E.Confirm_prepare { slot })
          | "externalize" ->
              S.incr obs "scp.phase.externalize";
              S.emit obs (E.Externalize { slot })
          | _ -> ());
          hooks.on_phase_change ~slot ~phase);
    }

let make ~emit_envelope ~sign ~verify ~validate_value ~combine_candidates
    ~value_externalized ~schedule ?(nomination_timeout = default_nomination_timeout)
    ?(ballot_timeout = default_ballot_timeout) ?(hooks = no_hooks)
    ?(obs = Stellar_obs.Sink.null) () =
  {
    emit_envelope;
    sign;
    verify;
    validate_value;
    combine_candidates;
    value_externalized;
    nomination_timeout;
    ballot_timeout;
    schedule;
    hooks = observe_hooks obs hooks;
    obs;
  }
