type node_id = Quorum_set.node_id
type value = string

type ballot = { counter : int; value : value }

module Ballot = struct
  let max_counter = max_int

  let compare a b =
    let c = Int.compare a.counter b.counter in
    if c <> 0 then c else String.compare a.value b.value

  let equal a b = compare a b = 0
  let compatible a b = String.equal a.value b.value
  let less_and_compatible a b = compare a b <= 0 && compatible a b
  let less_and_incompatible a b = compare a b <= 0 && not (compatible a b)

  let pp fmt b =
    let v =
      if String.length b.value >= 4 then Stellar_crypto.Hex.encode (String.sub b.value 0 4)
      else Stellar_crypto.Hex.encode b.value
    in
    if b.counter = max_counter then Format.fprintf fmt "<inf,%s>" v
    else Format.fprintf fmt "<%d,%s>" b.counter v
end

type nomination = { votes : value list; accepted : value list }

type prepare = {
  ballot : ballot;
  prepared : ballot option;
  prepared_prime : ballot option;
  n_c : int;
  n_h : int;
}

type confirm = { ballot : ballot; n_prepared : int; n_commit : int; n_h : int }

type externalize = { commit : ballot; n_h : int }

type pledge =
  | Nominate of nomination
  | Prepare of prepare
  | Confirm of confirm
  | Externalize of externalize

type statement = {
  node_id : node_id;
  slot : int;
  quorum_set : Quorum_set.t;
  pledge : pledge;
}

type envelope = { statement : statement; signature : string }

module Xdr = Stellar_xdr.Xdr

(* Ballot counters use hyper: the draft's "infinite" counter is represented
   as max_int, which does not fit an XDR uint32. *)
let ballot_xdr =
  Xdr.conv
    (fun b -> (b.counter, b.value))
    (fun (counter, value) -> { counter; value })
    Xdr.(pair hyper (str ()))

let pledge_xdr =
  let open Xdr in
  let value = str () in
  union
    ~tag:(function Nominate _ -> 0 | Prepare _ -> 1 | Confirm _ -> 2 | Externalize _ -> 3)
    ~write_arm:(fun w -> function
      | Nominate n ->
          (list value).write w n.votes;
          (list value).write w n.accepted
      | Prepare p ->
          ballot_xdr.write w p.ballot;
          (option ballot_xdr).write w p.prepared;
          (option ballot_xdr).write w p.prepared_prime;
          Writer.hyper w p.n_c;
          Writer.hyper w p.n_h
      | Confirm c ->
          ballot_xdr.write w c.ballot;
          Writer.hyper w c.n_prepared;
          Writer.hyper w c.n_commit;
          Writer.hyper w c.n_h
      | Externalize e ->
          ballot_xdr.write w e.commit;
          Writer.hyper w e.n_h)
    ~read_arm:(fun tag r ->
      match tag with
      | 0 ->
          let votes = (list value).read r in
          let accepted = (list value).read r in
          Nominate { votes; accepted }
      | 1 ->
          let ballot = ballot_xdr.read r in
          let prepared = (option ballot_xdr).read r in
          let prepared_prime = (option ballot_xdr).read r in
          let n_c = Reader.hyper r in
          let n_h = Reader.hyper r in
          Prepare { ballot; prepared; prepared_prime; n_c; n_h }
      | 2 ->
          let ballot = ballot_xdr.read r in
          let n_prepared = Reader.hyper r in
          let n_commit = Reader.hyper r in
          let n_h = Reader.hyper r in
          Confirm { ballot; n_prepared; n_commit; n_h }
      | 3 ->
          let commit = ballot_xdr.read r in
          let n_h = Reader.hyper r in
          Externalize { commit; n_h }
      | _ -> raise (Xdr.Error "Scp.Types.pledge: bad discriminant"))

let statement_xdr =
  let open Xdr in
  {
    write =
      (fun w st ->
        Writer.opaque_var w st.node_id;
        Writer.hyper w st.slot;
        Quorum_set.xdr.write w st.quorum_set;
        pledge_xdr.write w st.pledge);
    read =
      (fun r ->
        let node_id = Reader.opaque_var r () in
        let slot = Reader.hyper r in
        let quorum_set = Quorum_set.xdr.read r in
        let pledge = pledge_xdr.read r in
        { node_id; slot; quorum_set; pledge });
  }

let envelope_xdr =
  Xdr.conv
    (fun e -> (e.statement, e.signature))
    (fun (statement, signature) -> { statement; signature })
    Xdr.(pair statement_xdr (str ()))

let statement_bytes st = Xdr.encode statement_xdr st
let decode_statement s = Xdr.decode statement_xdr s
let encode_envelope env = Xdr.encode envelope_xdr env
let decode_envelope s = Xdr.decode envelope_xdr s

let envelope_size env = Xdr.encoded_length envelope_xdr env

let pledge_kind = function
  | Nominate _ -> "nominate"
  | Prepare _ -> "prepare"
  | Confirm _ -> "confirm"
  | Externalize _ -> "externalize"

let statement_ballot_counter st =
  match st.pledge with
  | Nominate _ -> None
  | Prepare p -> Some p.ballot.counter
  | Confirm c -> Some c.ballot.counter
  | Externalize _ -> Some Ballot.max_counter

let pp_statement fmt st =
  let short id =
    Stellar_crypto.Hex.encode (String.sub id 0 (min 4 (String.length id)))
  in
  match st.pledge with
  | Nominate n ->
      Format.fprintf fmt "[%s slot=%d NOMINATE votes=%d accepted=%d]" (short st.node_id)
        st.slot (List.length n.votes) (List.length n.accepted)
  | Prepare p ->
      Format.fprintf fmt "[%s slot=%d PREPARE b=%a p=%a p'=%a c=%d h=%d]" (short st.node_id)
        st.slot Ballot.pp p.ballot
        (Format.pp_print_option Ballot.pp)
        p.prepared
        (Format.pp_print_option Ballot.pp)
        p.prepared_prime p.n_c p.n_h
  | Confirm c ->
      Format.fprintf fmt "[%s slot=%d CONFIRM b=%a p=%d c=%d h=%d]" (short st.node_id)
        st.slot Ballot.pp c.ballot c.n_prepared c.n_commit c.n_h
  | Externalize e ->
      Format.fprintf fmt "[%s slot=%d EXTERNALIZE c=%a h=%d]" (short st.node_id) st.slot
        Ballot.pp e.commit e.n_h
