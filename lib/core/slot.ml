type t = {
  index : int;
  local_id : Types.node_id;
  driver : Driver.t;
  nomination : Nomination.t;
  ballot : Ballot.t;
}

let create ~index ~local_id ~get_qset ~driver =
  let ballot = Ballot.create ~slot:index ~local_id ~get_qset ~driver in
  let nomination =
    Nomination.create ~slot:index ~local_id ~get_qset ~driver
      ~on_candidates:(fun composite ->
        Ballot.on_nomination_composite ballot composite;
        ignore (Ballot.bump ballot ~value:composite ~force:false))
  in
  { index; local_id; driver; nomination; ballot }

let index t = t.index

(* Nomination stops once balloting reaches the commit phase (the composite
   can no longer influence this slot). *)
let sync_nomination t =
  if Ballot.phase t.ballot <> Ballot.Prepare_phase then Nomination.stop t.nomination

let nominate t ~value ~prev =
  if Ballot.phase t.ballot = Ballot.Prepare_phase then begin
    let obs = t.driver.Driver.obs in
    if Stellar_obs.Sink.enabled obs then begin
      Stellar_obs.Sink.incr obs "scp.nominate.start";
      Stellar_obs.Sink.emit obs (Stellar_obs.Event.Nominate_start { slot = t.index })
    end;
    Nomination.nominate t.nomination ~value ~prev;
    sync_nomination t
  end

(* Dotted metric name for a received statement's pledge type. *)
let envelope_metric = function
  | Types.Nominate _ -> "scp.nominate.recv"
  | Types.Prepare _ -> "scp.ballot.prepare"
  | Types.Confirm _ -> "scp.ballot.confirm"
  | Types.Externalize _ -> "scp.ballot.externalize"

let process_envelope t env =
  let st = env.Types.statement in
  if st.Types.slot <> t.index then `Invalid
  else if String.equal st.Types.node_id t.local_id then `Stale
  else if not (Quorum_set.is_sane st.Types.quorum_set) then `Invalid
  else if
    not
      (t.driver.Driver.verify st.Types.node_id ~msg:(Types.statement_bytes st)
         ~signature:env.Types.signature)
  then `Invalid
  else begin
    Stellar_obs.Sink.incr t.driver.Driver.obs (envelope_metric st.Types.pledge);
    let result =
      match st.Types.pledge with
      | Types.Nominate _ -> Nomination.process_envelope t.nomination env
      | _ -> Ballot.process_envelope t.ballot env
    in
    sync_nomination t;
    result
  end

let phase t = Ballot.phase t.ballot
let externalized_value t = Ballot.externalized_value t.ballot

let ballot_counter t =
  match Ballot.current_ballot t.ballot with Some b -> b.Types.counter | None -> 0

let nomination_round t = Nomination.round t.nomination
let heard_from_quorum t = Ballot.heard_from_quorum t.ballot

let latest_statements t =
  Nomination.latest_statements t.nomination @ Ballot.latest_statements t.ballot

let latest_envelopes t =
  (* ballot envelopes first: an EXTERNALIZE is what completes a straggler *)
  Ballot.latest_envelopes t.ballot @ Nomination.latest_envelopes t.nomination

let reevaluate t =
  Nomination.reevaluate t.nomination;
  Ballot.reevaluate t.ballot;
  sync_nomination t
