(** RFC 4506 XDR: canonical binary wire format.

    Every serialized item occupies a multiple of 4 bytes; integers are
    big-endian; variable-length data carries a 4-byte length prefix and is
    zero-padded to the next 4-byte boundary.  Decoding is strict: padding
    must be zero, lengths are bounds-checked against the buffer and any
    declared maximum, and a top-level decode must consume the whole input.
    This makes encodings canonical — a value has exactly one encoding, so
    content hashes computed over encoded bytes are well-defined. *)

exception Error of string
(** Raised on malformed input (bounds, padding, bad discriminant, range). *)

(** Output stream: an append-only buffer obeying XDR alignment. *)
module Writer : sig
  type t

  val create : ?initial_size:int -> unit -> t
  val length : t -> int

  val int32 : t -> int -> unit
  (** Signed 32-bit, big-endian. @raise Error outside [-2^31, 2^31). *)

  val uint32 : t -> int -> unit
  (** Unsigned 32-bit. @raise Error outside [0, 2^32). *)

  val hyper : t -> int -> unit
  (** Signed 64-bit (every OCaml int fits). *)

  val bool : t -> bool -> unit
  (** Encoded as uint32 0 / 1. *)

  val opaque_fixed : t -> string -> unit
  (** Raw bytes, zero-padded to a 4-byte boundary (no length prefix). *)

  val opaque_var : t -> ?max:int -> string -> unit
  (** Length prefix + bytes + zero padding. @raise Error if longer than
      [max]. XDR strings share this representation. *)

  val contents : t -> string
end

(** Input stream over an immutable string, with bounds checking. *)
module Reader : sig
  type t

  val of_string : string -> t
  val pos : t -> int
  val remaining : t -> int

  val int32 : t -> int
  val uint32 : t -> int
  val hyper : t -> int
  val bool : t -> bool
  val opaque_fixed : t -> int -> string
  val opaque_var : t -> ?max:int -> unit -> string

  val expect_end : t -> unit
  (** @raise Error if any input remains. *)
end

type 'a codec = { write : Writer.t -> 'a -> unit; read : Reader.t -> 'a }
(** A codec pairs one encoder with one decoder so that round-tripping is
    checked by construction: [decode c (encode c v)] must return a value
    that re-encodes to the same bytes. *)

(* ---- primitive codecs ---- *)

val int32 : int codec
val uint32 : int codec
val hyper : int codec
val bool : bool codec

val str : ?max:int -> unit -> string codec
(** Variable-length opaque/string. *)

val opaque : int -> string codec
(** Fixed-length opaque of exactly [n] bytes. *)

(* ---- combinators ---- *)

val list : ?max:int -> 'a codec -> 'a list codec
(** Variable-length array: uint32 count then elements.  [max] bounds the
    declared count before any element is decoded. *)

val option : 'a codec -> 'a option codec
(** XDR optional-data: bool discriminant then the value if present. *)

val pair : 'a codec -> 'b codec -> ('a * 'b) codec

val conv : ('a -> 'b) -> ('b -> 'a) -> 'b codec -> 'a codec
(** [conv project inject c] maps a codec across an isomorphism. *)

val union :
  tag:('a -> int) ->
  write_arm:(Writer.t -> 'a -> unit) ->
  read_arm:(int -> Reader.t -> 'a) ->
  'a codec
(** Discriminated union: uint32 tag then the arm body.  [read_arm] should
    raise {!Error} on an unknown tag. *)

val fix : ('a codec -> 'a codec) -> 'a codec
(** Recursive codec. *)

(* ---- top-level entry points ---- *)

val encode : 'a codec -> 'a -> string

val encoded_length : 'a codec -> 'a -> int
(** Exact length in bytes of [encode c v] (always a multiple of 4). *)

val decode : 'a codec -> string -> ('a, string) result
(** Strict: the whole input must be consumed. *)

val decode_exn : 'a codec -> string -> 'a
(** @raise Error on malformed input or trailing bytes. *)

val round_trips : 'a codec -> 'a -> bool
(** [round_trips c v]: encoding, decoding and re-encoding [v] reproduces
    the same bytes.  The property every domain codec must satisfy. *)
