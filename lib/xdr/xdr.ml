exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let padding len = (4 - (len land 3)) land 3

module Writer = struct
  type t = Buffer.t

  let create ?(initial_size = 256) () = Buffer.create initial_size
  let length = Buffer.length

  let int32 t v =
    if v < -0x8000_0000 || v > 0x7fff_ffff then error "Xdr.Writer.int32: %d out of range" v;
    Buffer.add_int32_be t (Int32.of_int v)

  let uint32 t v =
    if v < 0 || v > 0xffff_ffff then error "Xdr.Writer.uint32: %d out of range" v;
    (* Int32.of_int truncates to the low 32 bits, which is exactly the
       unsigned representation we want. *)
    Buffer.add_int32_be t (Int32.of_int v)

  let hyper t v = Buffer.add_int64_be t (Int64.of_int v)

  let bool t b = uint32 t (if b then 1 else 0)

  let add_padding t len =
    for _ = 1 to padding len do
      Buffer.add_char t '\000'
    done

  let opaque_fixed t s =
    Buffer.add_string t s;
    add_padding t (String.length s)

  let opaque_var t ?max s =
    let len = String.length s in
    (match max with
    | Some m when len > m -> error "Xdr.Writer.opaque_var: length %d exceeds max %d" len m
    | _ -> ());
    uint32 t len;
    opaque_fixed t s

  let contents = Buffer.contents
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let pos t = t.pos
  let remaining t = String.length t.data - t.pos

  let need t n =
    if n < 0 || remaining t < n then
      error "Xdr.Reader: need %d bytes at offset %d, have %d" n t.pos (remaining t)

  let uint32 t =
    need t 4;
    let b i = Char.code t.data.[t.pos + i] in
    let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    t.pos <- t.pos + 4;
    v

  let int32 t =
    let v = uint32 t in
    if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

  let hyper t =
    need t 8;
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code t.data.[t.pos + i]))
    done;
    t.pos <- t.pos + 8;
    Int64.to_int !v

  let bool t =
    match uint32 t with
    | 0 -> false
    | 1 -> true
    | v -> error "Xdr.Reader.bool: discriminant %d" v

  let skip_padding t len =
    let pad = padding len in
    need t pad;
    for i = 0 to pad - 1 do
      if t.data.[t.pos + i] <> '\000' then
        error "Xdr.Reader: nonzero padding at offset %d" (t.pos + i)
    done;
    t.pos <- t.pos + pad

  let opaque_fixed t n =
    need t n;
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    skip_padding t n;
    s

  let opaque_var t ?max () =
    let len = uint32 t in
    (match max with
    | Some m when len > m -> error "Xdr.Reader.opaque_var: length %d exceeds max %d" len m
    | _ -> ());
    opaque_fixed t len

  let expect_end t =
    if remaining t <> 0 then error "Xdr.Reader: %d trailing bytes" (remaining t)
end

type 'a codec = { write : Writer.t -> 'a -> unit; read : Reader.t -> 'a }

let int32 = { write = Writer.int32; read = Reader.int32 }
let uint32 = { write = Writer.uint32; read = Reader.uint32 }
let hyper = { write = Writer.hyper; read = Reader.hyper }
let bool = { write = Writer.bool; read = Reader.bool }

let str ?max () =
  { write = (fun w s -> Writer.opaque_var w ?max s); read = (fun r -> Reader.opaque_var r ?max ()) }

let opaque n =
  {
    write =
      (fun w s ->
        if String.length s <> n then
          error "Xdr.opaque: expected %d bytes, got %d" n (String.length s);
        Writer.opaque_fixed w s);
    read = (fun r -> Reader.opaque_fixed r n);
  }

let list ?max c =
  {
    write =
      (fun w xs ->
        let len = List.length xs in
        (match max with
        | Some m when len > m -> error "Xdr.list: %d elements exceeds max %d" len m
        | _ -> ());
        Writer.uint32 w len;
        List.iter (c.write w) xs);
    read =
      (fun r ->
        let len = Reader.uint32 r in
        (match max with
        | Some m when len > m -> error "Xdr.list: %d elements exceeds max %d" len m
        | _ -> ());
        (* Each element consumes at least 4 bytes, so bound the declared
           count by what the buffer could possibly hold. *)
        if len * 4 > Reader.remaining r then
          error "Xdr.list: declared %d elements, only %d bytes remain" len (Reader.remaining r);
        List.init len (fun _ -> c.read r));
  }

let option c =
  {
    write =
      (fun w v ->
        match v with
        | None -> Writer.bool w false
        | Some x ->
            Writer.bool w true;
            c.write w x);
    read = (fun r -> if Reader.bool r then Some (c.read r) else None);
  }

let pair a b =
  {
    write =
      (fun w (x, y) ->
        a.write w x;
        b.write w y);
    read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        (x, y));
  }

let conv project inject c =
  { write = (fun w v -> c.write w (project v)); read = (fun r -> inject (c.read r)) }

let union ~tag ~write_arm ~read_arm =
  {
    write =
      (fun w v ->
        Writer.uint32 w (tag v);
        write_arm w v);
    read =
      (fun r ->
        let t = Reader.uint32 r in
        read_arm t r);
  }

let fix f =
  let rec lazy_c =
    lazy
      (f
         {
           write = (fun w v -> (Lazy.force lazy_c).write w v);
           read = (fun r -> (Lazy.force lazy_c).read r);
         })
  in
  Lazy.force lazy_c

let encode c v =
  let w = Writer.create () in
  c.write w v;
  Writer.contents w

let encoded_length c v =
  let w = Writer.create () in
  c.write w v;
  Writer.length w

let decode_exn c s =
  let r = Reader.of_string s in
  let v = c.read r in
  Reader.expect_end r;
  v

let decode c s = match decode_exn c s with v -> Ok v | exception Error msg -> Error msg

let round_trips c v =
  match encode c v with
  | bytes -> (
      match decode c bytes with
      | Ok v' -> ( match encode c v' with bytes' -> String.equal bytes bytes' | exception Error _ -> false)
      | Error _ -> false)
  | exception Error _ -> false
