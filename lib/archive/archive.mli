(** Write-only history archive (§5.4): every confirmed transaction set, all
    headers, and periodic bucket snapshots.  New nodes bootstrap from the
    latest checkpoint and replay forward; anyone can look up a transaction
    from two years ago.

    The paper stores archives as flat files on blob stores (S3/Glacier);
    here the archive is an in-memory store with the same access pattern —
    append-only publication, checkpoint-granular reads. *)

type t

val create : ?checkpoint_frequency:int -> unit -> t
(** Default checkpoint every 8 ledgers (stellar-core uses 64). *)

val record_ledger :
  t ->
  header:Stellar_ledger.Header.t ->
  tx_set:Stellar_herder.Tx_set.t ->
  buckets:Stellar_bucket.Bucket_list.t ->
  unit
(** Publish one closed ledger.  Ledgers must arrive in sequence order. *)

val latest_seq : t -> int option
val header : t -> int -> Stellar_ledger.Header.t option
val tx_set_for : t -> int -> Stellar_herder.Tx_set.t option
val find_tx : t -> string -> (int * Stellar_ledger.Tx.signed) option
(** Look a transaction up by hash: (ledger seq, tx). *)

type checkpoint = {
  seq : int;
  chk_header : Stellar_ledger.Header.t;
  chk_buckets : Stellar_bucket.Bucket_list.t;
}

val latest_checkpoint : t -> checkpoint option
val checkpoint_count : t -> int

val catchup :
  t ->
  ( Stellar_ledger.State.t * Stellar_bucket.Bucket_list.t * Stellar_ledger.Header.t list,
    string )
  result
(** Bootstrap a new node: rebuild the ledger state from the latest
    checkpoint's buckets, verify it against the header's snapshot hash, then
    replay the archived transaction sets up to the tip, folding each
    ledger's changes into the bucket list and checking every header's
    snapshot hash and chain link along the way.  Returns the state, the
    bucket list at the tip (level structure identical to a node that closed
    those ledgers live — required to agree on future snapshot hashes), and
    the full header chain (oldest first). *)

val size_bytes : t -> int
(** Exact archived volume: the XDR-encoded bytes of every published header,
    transaction set and checkpoint snapshot (§7.4-style cost accounting). *)

val to_blob : t -> string
(** The whole archive as one canonical XDR blob, as it would be laid out on
    a blob store. *)

val of_blob : string -> (t, string) result
(** Strict inverse of {!to_blob}: a written archive re-reads to structurally
    equal contents, and [to_blob] of the result is bit-for-bit identical. *)
