open Stellar_ledger
module Xdr = Stellar_xdr.Xdr

type checkpoint = {
  seq : int;
  chk_header : Header.t;
  chk_buckets : Stellar_bucket.Bucket_list.t;
}

type t = {
  checkpoint_frequency : int;
  headers : (int, Header.t) Hashtbl.t;
  tx_sets : (int, Stellar_herder.Tx_set.t) Hashtbl.t;
  tx_index : (string, int) Hashtbl.t;  (* tx hash -> ledger seq *)
  mutable checkpoints : checkpoint list;  (* newest first *)
  mutable latest : int option;
  mutable archived_bytes : int;  (* XDR bytes published so far *)
}

let create ?(checkpoint_frequency = 8) () =
  {
    checkpoint_frequency;
    headers = Hashtbl.create 256;
    tx_sets = Hashtbl.create 256;
    tx_index = Hashtbl.create 1024;
    checkpoints = [];
    latest = None;
    archived_bytes = 0;
  }

let record_ledger t ~header ~tx_set ~buckets =
  let seq = header.Header.ledger_seq in
  (match t.latest with
  | Some prev when seq <> prev + 1 ->
      invalid_arg (Printf.sprintf "Archive.record_ledger: out of order (%d after %d)" seq prev)
  | _ -> ());
  Hashtbl.replace t.headers seq header;
  Hashtbl.replace t.tx_sets seq tx_set;
  List.iter
    (fun signed -> Hashtbl.replace t.tx_index (Tx.hash signed.Tx.tx) seq)
    (Stellar_herder.Tx_set.txs tx_set);
  t.archived_bytes <-
    t.archived_bytes
    + Xdr.encoded_length Header.xdr header
    + Stellar_herder.Tx_set.size_bytes tx_set;
  if seq mod t.checkpoint_frequency = 0 then begin
    t.checkpoints <- { seq; chk_header = header; chk_buckets = buckets } :: t.checkpoints;
    t.archived_bytes <-
      t.archived_bytes + Xdr.encoded_length Stellar_bucket.Bucket_list.xdr buckets
  end;
  t.latest <- Some seq

let latest_seq t = t.latest
let header t seq = Hashtbl.find_opt t.headers seq
let tx_set_for t seq = Hashtbl.find_opt t.tx_sets seq

let find_tx t hash =
  match Hashtbl.find_opt t.tx_index hash with
  | None -> None
  | Some seq -> (
      match Hashtbl.find_opt t.tx_sets seq with
      | None -> None
      | Some ts ->
          Stellar_herder.Tx_set.txs ts
          |> List.find_opt (fun s -> String.equal (Tx.hash s.Tx.tx) hash)
          |> Option.map (fun s -> (seq, s)))

let latest_checkpoint t = match t.checkpoints with c :: _ -> Some c | [] -> None
let checkpoint_count t = List.length t.checkpoints

let catchup t =
  let ( let* ) = Result.bind in
  match latest_checkpoint t with
  | None -> Error "no checkpoint available"
  | Some { seq; chk_header; chk_buckets } ->
      (* rebuild state from the checkpoint's buckets *)
      let* () =
        if String.equal (Stellar_bucket.Bucket_list.hash chk_buckets) chk_header.Header.snapshot_hash
        then Ok ()
        else Error "checkpoint bucket hash does not match header"
      in
      let entries = Stellar_bucket.Bucket_list.live_entries chk_buckets in
      let state =
        State.of_entries ~ledger_seq:seq ~close_time:chk_header.Header.close_time
          ~base_fee:chk_header.Header.base_fee ~base_reserve:chk_header.Header.base_reserve
          ~protocol_version:chk_header.Header.protocol_version
          ~fee_pool:chk_header.Header.fee_pool ~id_pool:chk_header.Header.id_pool entries
      in
      (* replay forward to the tip, folding each ledger's changes into the
         bucket list exactly as the herder did when it closed them — the
         level structure (not just the live entries) feeds the snapshot
         hash, so a catching-up node must reproduce it to agree with the
         network's future headers *)
      let tip = Option.value ~default:seq t.latest in
      let rec replay state buckets acc n =
        if n > tip then Ok (state, buckets, List.rev acc)
        else
          let* h =
            Option.to_result ~none:(Printf.sprintf "missing header %d" n) (header t n)
          in
          let* ts =
            Option.to_result ~none:(Printf.sprintf "missing tx set %d" n) (tx_set_for t n)
          in
          let state, _results =
            Apply.apply_tx_set Apply.sim_ctx state ~close_time:h.Header.close_time
              (Stellar_herder.Tx_set.txs ts)
          in
          let state = State.with_params ~base_fee:h.Header.base_fee
              ~base_reserve:h.Header.base_reserve ~protocol_version:h.Header.protocol_version
              state
          in
          let state, dirty = State.take_dirty state in
          let batch =
            List.map
              (fun key -> { Stellar_bucket.Bucket.key; entry = State.lookup state key })
              dirty
          in
          let buckets = Stellar_bucket.Bucket_list.add_batch buckets batch in
          let* () =
            if String.equal (Stellar_bucket.Bucket_list.hash buckets) h.Header.snapshot_hash
            then Ok ()
            else Error (Printf.sprintf "replayed snapshot hash mismatch at ledger %d" n)
          in
          replay state buckets (h :: acc) (n + 1)
      in
      let* state, buckets, replayed = replay state chk_buckets [] (seq + 1) in
      (* collect the full chain back to the earliest archived header *)
      let rec back acc n =
        match header t n with Some h -> back (h :: acc) (n - 1) | None -> acc
      in
      let chain = back [] seq @ replayed in
      let* () =
        if Header.verify_chain chain then Ok () else Error "header chain broken"
      in
      Ok (state, buckets, chain)

let size_bytes t = t.archived_bytes

(* ---- XDR blob serialization (§5.4: archives are flat files on blob
   stores; here, one blob for the whole archive) ---- *)

let record_xdr = Xdr.pair Header.xdr Stellar_herder.Tx_set.xdr

let checkpoint_xdr =
  Xdr.conv
    (fun c -> (c.seq, (c.chk_header, c.chk_buckets)))
    (fun (seq, (chk_header, chk_buckets)) -> { seq; chk_header; chk_buckets })
    Xdr.(pair hyper (pair Header.xdr Stellar_bucket.Bucket_list.xdr))

let blob_xdr =
  Xdr.(pair uint32 (pair (list record_xdr) (list checkpoint_xdr)))

let to_blob t =
  let seqs = Hashtbl.fold (fun seq _ acc -> seq :: acc) t.headers [] |> List.sort Int.compare in
  let records =
    List.map
      (fun seq -> (Hashtbl.find t.headers seq, Hashtbl.find t.tx_sets seq))
      seqs
  in
  Xdr.encode blob_xdr (t.checkpoint_frequency, (records, t.checkpoints))

let of_blob s =
  match Xdr.decode blob_xdr s with
  | Error e -> Error e
  | Ok (checkpoint_frequency, (records, checkpoints)) ->
      if checkpoint_frequency < 1 then Error "archive blob: bad checkpoint frequency"
      else begin
        let t = create ~checkpoint_frequency () in
        let ordered = ref true in
        List.iter
          (fun (header, tx_set) ->
            let seq = header.Header.ledger_seq in
            (match t.latest with
            | Some prev when seq <> prev + 1 -> ordered := false
            | _ -> ());
            Hashtbl.replace t.headers seq header;
            Hashtbl.replace t.tx_sets seq tx_set;
            List.iter
              (fun signed -> Hashtbl.replace t.tx_index (Tx.hash signed.Tx.tx) seq)
              (Stellar_herder.Tx_set.txs tx_set);
            t.archived_bytes <-
              t.archived_bytes
              + Xdr.encoded_length Header.xdr header
              + Stellar_herder.Tx_set.size_bytes tx_set;
            t.latest <- Some seq)
          records;
        t.checkpoints <- checkpoints;
        List.iter
          (fun c ->
            t.archived_bytes <-
              t.archived_bytes + Xdr.encoded_length Stellar_bucket.Bucket_list.xdr c.chk_buckets)
          checkpoints;
        if not !ordered then Error "archive blob: ledgers out of order" else Ok t
      end
