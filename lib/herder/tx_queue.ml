open Stellar_ledger

type t = {
  by_hash : (string, Tx.signed) Hashtbl.t;
  by_account : (string, Tx.signed list ref) Hashtbl.t;  (* sorted by seq *)
}

let create () = { by_hash = Hashtbl.create 256; by_account = Hashtbl.create 64 }

let add t signed =
  let h = Tx.hash signed.Tx.tx in
  if Hashtbl.mem t.by_hash h then false
  else begin
    Hashtbl.replace t.by_hash h signed;
    let src = signed.Tx.tx.Tx.source in
    let q =
      match Hashtbl.find_opt t.by_account src with
      | Some q -> q
      | None ->
          let q = ref [] in
          Hashtbl.replace t.by_account src q;
          q
    in
    q :=
      List.sort
        (fun a b -> Int.compare a.Tx.tx.Tx.seq_num b.Tx.tx.Tx.seq_num)
        (signed :: !q);
    true
  end

let size t = Hashtbl.length t.by_hash

let fee_rate s = s.Tx.tx.Tx.fee / max 1 (Tx.operation_count s.Tx.tx)

let candidates t ~state ~max_ops =
  (* Under congestion the scarce resource is operations per ledger; include
     the highest fee-per-operation account chains first (§5.2's surge
     pricing / Dutch auction behaviour). *)
  let chains =
    Hashtbl.fold
      (fun src q acc ->
        match State.account state src with
        | None -> acc
        | Some acct ->
            let rec chain next = function
              | s :: rest when s.Tx.tx.Tx.seq_num = next -> s :: chain (next + 1) rest
              | s :: rest when s.Tx.tx.Tx.seq_num <= next -> chain next rest (* stale *)
              | _ -> []
            in
            (match chain (acct.Entry.seq_num + 1) !q with [] -> acc | c -> c :: acc))
      t.by_account []
  in
  let sorted =
    List.sort
      (fun a b -> Int.compare (fee_rate (List.hd b)) (fee_rate (List.hd a)))
      chains
  in
  let ops = ref 0 in
  let picked = ref [] in
  List.iter
    (fun chain ->
      let rec take = function
        | s :: rest when !ops + Tx.operation_count s.Tx.tx <= max_ops || !ops = 0 ->
            ops := !ops + Tx.operation_count s.Tx.tx;
            picked := s :: !picked;
            if !ops < max_ops then take rest
        | _ -> ()
      in
      if !ops < max_ops then take chain)
    sorted;
  !picked

let remove_one t signed =
  let h = Tx.hash signed.Tx.tx in
  if Hashtbl.mem t.by_hash h then begin
    Hashtbl.remove t.by_hash h;
    let src = signed.Tx.tx.Tx.source in
    match Hashtbl.find_opt t.by_account src with
    | None -> ()
    | Some q ->
        q := List.filter (fun s -> not (String.equal (Tx.hash s.Tx.tx) h)) !q;
        if !q = [] then Hashtbl.remove t.by_account src
  end

let remove_applied t txs = List.iter (remove_one t) txs

let purge_invalid t ~state =
  let stale = ref [] in
  Hashtbl.iter
    (fun src q ->
      let current =
        match State.account state src with
        | Some a -> a.Entry.seq_num
        | None -> max_int (* account gone: everything is stale *)
      in
      List.iter
        (fun s -> if s.Tx.tx.Tx.seq_num <= current then stale := s :: !stale)
        !q)
    t.by_account;
  List.iter (remove_one t) !stale;
  !stale
