(** Pending-transaction queue: holds flooded transactions until they are
    included in a ledger, keeping per-account sequence chains intact. *)

type t

val create : unit -> t
val add : t -> Stellar_ledger.Tx.signed -> bool
(** [false] if already present. *)

val size : t -> int

val candidates : t -> state:Stellar_ledger.State.t -> max_ops:int -> Stellar_ledger.Tx.signed list
(** Build a transaction-set candidate: for each account, the longest prefix
    of its queued transactions whose sequence numbers chain from the
    account's current one, until [max_ops] operations are gathered.  Under
    congestion, chains with the highest fee per operation win the scarce
    slots (§5.2's surge pricing). *)

val remove_applied : t -> Stellar_ledger.Tx.signed list -> unit

val purge_invalid : t -> state:Stellar_ledger.State.t -> Stellar_ledger.Tx.signed list
(** Drop transactions whose sequence numbers can no longer apply; returns
    the dropped transactions (so the herder can emit [Tx_dropped] trace
    events for them). *)
