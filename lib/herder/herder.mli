(** The herder drives one validator's replicated state machine (§5): it
    builds transaction sets from the pending queue, triggers SCP once per
    ledger interval, validates and combines consensus values, and applies
    externalized transaction sets to the ledger, the bucket list and the
    header chain.

    The herder is transport-agnostic: the node layer supplies callbacks for
    flooding and timers (in the simulator or, in principle, a real
    network). *)

type ledger_stats = {
  seq : int;
  close_time : int;
  tx_count : int;
  op_count : int;
  nomination_s : float;  (** virtual time: nomination start → first ballot *)
  balloting_s : float;  (** virtual time: first ballot → externalize *)
  apply_s : float;  (** real CPU time to apply the tx set + buckets *)
  total_s : float;  (** virtual time: trigger → externalize *)
  header : Stellar_ledger.Header.t;
}

type callbacks = {
  broadcast_envelope : Scp.Types.envelope -> unit;
  broadcast_tx_set : Tx_set.t -> unit;
  broadcast_tx : Stellar_ledger.Tx.signed -> unit;
  schedule : delay:float -> (unit -> unit) -> unit -> unit;
  now : unit -> float;
  on_ledger_closed : ledger_stats -> unit;
  on_timeout : kind:[ `Nomination | `Ballot ] -> unit;
}

type config = {
  seed : string;  (** 32 bytes of key material *)
  qset : Scp.Quorum_set.t;
  is_validator : bool;
  is_governing : bool;  (** participates in upgrade governance (§5.3) *)
  desired_upgrades : Value.upgrade list;
  ledger_interval : float;  (** the 5-second target *)
  max_ops_per_ledger : int;
}

val default_config : seed:string -> qset:Scp.Quorum_set.t -> config

type t

val create :
  config ->
  callbacks ->
  genesis:Stellar_ledger.State.t ->
  ?buckets:Stellar_bucket.Bucket_list.t ->
  ?headers:Stellar_ledger.Header.t list ->
  ?obs:Stellar_obs.Sink.t ->
  unit ->
  t
(** [buckets] lets many simulated validators share one precomputed bucket
    list for the same genesis instead of re-hashing it per node.
    [headers] (most recent first) seeds the header chain when bootstrapping
    from an archive checkpoint rather than from ledger 1 (§5.4).
    [obs] (default disabled) instruments the whole close path: it is handed
    to the SCP driver, ledger apply and bucket merges, and the herder itself
    emits [First_vote]/[Apply_begin]/[Apply_end] events, the per-transaction
    lifecycle events ([Tx_submit], [Tx_in_txset], [Tx_externalized],
    [Tx_dropped]; [Tx_applied] comes from ledger apply), plus the
    [ledger.apply_ms] CPU histogram and [herder.queue.size] gauge. *)

val node_id : t -> Scp.Types.node_id
val state : t -> Stellar_ledger.State.t
val buckets : t -> Stellar_bucket.Bucket_list.t
val headers : t -> Stellar_ledger.Header.t list
(** Most recent first. *)

val last_header : t -> Stellar_ledger.Header.t option
val ledger_seq : t -> int
val queue_size : t -> int
val set_quorum_set : t -> Scp.Quorum_set.t -> unit

val start : t -> unit
(** Begin triggering ledger closes every [ledger_interval]. *)

val stop : t -> unit

val submit_tx : t -> Stellar_ledger.Tx.signed -> [ `Queued | `Duplicate ]
(** Local submission: queue and flood. *)

val receive_tx : t -> Stellar_ledger.Tx.signed -> [ `New | `Duplicate ]
val receive_tx_set : t -> Tx_set.t -> unit
val receive_envelope : t -> Scp.Types.envelope -> unit
(** Envelopes whose transaction sets have not arrived yet are buffered and
    replayed when the set shows up. *)

val tx_set : t -> string -> Tx_set.t option

val recent_envelopes : t -> Scp.Types.envelope list
(** This node's latest envelopes for the in-flight slot and the one just
    closed — the payload a fault-injected Byzantine re-flooder rebroadcasts. *)

val help_straggler : t -> slot:int -> Scp.Types.envelope list * Tx_set.t list
(** Envelopes (and the transaction sets their externalized values need) to
    send a peer that is still working on an already-closed slot — the fix
    for the §6 production incident where validators moved on without
    helping stragglers finish the previous ledger. *)
