(** A transaction set: the batch of transactions one ledger applies.  SCP
    agrees only on its hash (§5.3); the set itself floods separately. *)

type t

val make : prev_header_hash:string -> Stellar_ledger.Tx.signed list -> t
val txs : t -> Stellar_ledger.Tx.signed list

val hash : t -> string
(** SHA-256 of the canonical XDR encoding, which binds the transactions AND
    the previous ledger header (§5.3: "including a hash of the previous
    ledger header"). *)

val xdr : t Stellar_xdr.Xdr.codec
(** Decoding re-canonicalizes through {!make}, so a decoded set re-encodes
    to the same bytes and carries the same hash. *)

val encode : t -> string
val decode : string -> (t, string) result

val prev_header_hash : t -> string
val op_count : t -> int
val total_fees : t -> int

val size_bytes : t -> int
(** Exact wire size: [Bytes.length] of {!encode}. *)

val tx_count : t -> int
