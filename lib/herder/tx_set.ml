open Stellar_ledger
module Xdr = Stellar_xdr.Xdr

type t = {
  prev_header_hash : string;
  txs : Tx.signed list;
  hash : string;
  op_count : int;
  total_fees : int;
  size_bytes : int;
}

let write_components w ~prev_header_hash txs =
  Xdr.Writer.opaque_var w prev_header_hash;
  (Xdr.list Tx.signed_xdr).Xdr.write w txs

let make ~prev_header_hash txs =
  (* Canonical order: by hash, so identical sets have identical bytes. *)
  let txs =
    List.map (fun s -> (Tx.hash s.Tx.tx, s)) txs
    |> List.sort (fun (h1, _) (h2, _) -> String.compare h1 h2)
    |> List.map snd
  in
  let w = Xdr.Writer.create ~initial_size:1024 () in
  write_components w ~prev_header_hash txs;
  let encoded = Xdr.Writer.contents w in
  {
    prev_header_hash;
    txs;
    hash = Stellar_crypto.Sha256.digest encoded;
    op_count = List.fold_left (fun acc s -> acc + Tx.operation_count s.Tx.tx) 0 txs;
    total_fees = List.fold_left (fun acc s -> acc + s.Tx.tx.Tx.fee) 0 txs;
    size_bytes = String.length encoded;
  }

let xdr =
  {
    Xdr.write = (fun w t -> write_components w ~prev_header_hash:t.prev_header_hash t.txs);
    read =
      (fun r ->
        let prev_header_hash = Xdr.Reader.opaque_var r () in
        let txs = (Xdr.list Tx.signed_xdr).Xdr.read r in
        make ~prev_header_hash txs);
  }

let encode t = Xdr.encode xdr t
let decode s = Xdr.decode xdr s

let txs t = t.txs
let hash t = t.hash
let prev_header_hash t = t.prev_header_hash
let op_count t = t.op_count
let total_fees t = t.total_fees
let size_bytes t = t.size_bytes
let tx_count t = List.length t.txs
