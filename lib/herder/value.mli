(** The value SCP agrees on for each ledger (§5.3): a transaction-set hash,
    a close time, and a set of upgrades, with the combination rules used
    during nomination. *)

type upgrade =
  | Upgrade_base_fee of int
  | Upgrade_base_reserve of int
  | Upgrade_protocol_version of int

type t = { tx_set_hash : string; close_time : int; upgrades : upgrade list }

val xdr : t Stellar_xdr.Xdr.codec

val encode : t -> string
(** Canonical XDR bytes (upgrades sorted by tag). *)

val decode : string -> t option
(** Strict decode: [None] on malformed input or trailing bytes. *)

val hash : t -> string
(** SHA-256 of {!encode}. *)

val combine : t list -> t option
(** §5.3: take the transaction set with the most operations (ties broken by
    total fees, then by hash), the union of all upgrades (higher values
    supersede), and the highest close time.  Needs the op/fee counts, so
    callers pass a lookup. *)

val combine_with :
  lookup:(string -> Tx_set.t option) -> t list -> t option
(** Full §5.3 combination; values whose tx set is unknown are skipped. *)

val upgrade_tag : upgrade -> int
val apply_upgrades : Stellar_ledger.State.t -> upgrade list -> Stellar_ledger.State.t

val valid_upgrade : upgrade -> bool
(** Sanity bounds a validator is willing to go along with. *)

val pp : Format.formatter -> t -> unit
