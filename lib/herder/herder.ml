open Stellar_ledger

type ledger_stats = {
  seq : int;
  close_time : int;
  tx_count : int;
  op_count : int;
  nomination_s : float;
  balloting_s : float;
  apply_s : float;
  total_s : float;
  header : Header.t;
}

type callbacks = {
  broadcast_envelope : Scp.Types.envelope -> unit;
  broadcast_tx_set : Tx_set.t -> unit;
  broadcast_tx : Tx.signed -> unit;
  schedule : delay:float -> (unit -> unit) -> unit -> unit;
  now : unit -> float;
  on_ledger_closed : ledger_stats -> unit;
  on_timeout : kind:[ `Nomination | `Ballot ] -> unit;
}

type config = {
  seed : string;
  qset : Scp.Quorum_set.t;
  is_validator : bool;
  is_governing : bool;
  desired_upgrades : Value.upgrade list;
  ledger_interval : float;
  max_ops_per_ledger : int;
}

let default_config ~seed ~qset =
  {
    seed;
    qset;
    is_validator = true;
    is_governing = false;
    desired_upgrades = [];
    ledger_interval = 5.0;
    max_ops_per_ledger = 10_000;
  }

(* Per-slot timing for the latency metrics of §7.3. *)
type slot_timing = {
  mutable t_trigger : float;
  mutable t_first_ballot : float option;
  mutable externalized : bool;
}

type t = {
  config : config;
  cb : callbacks;
  obs : Stellar_obs.Sink.t;
  secret : Stellar_crypto.Sim_sig.secret;
  id : Scp.Types.node_id;
  scp : Scp.Protocol.t;
  queue : Tx_queue.t;
  tx_sets : (string, Tx_set.t) Hashtbl.t;
  pending_envs : (string, Scp.Types.envelope list ref) Hashtbl.t;
      (* envelopes waiting for a tx set, keyed by tx-set hash *)
  timings : (int, slot_timing) Hashtbl.t;
  mutable state : State.t;
  mutable buckets : Stellar_bucket.Bucket_list.t;
  mutable headers : Header.t list;
  mutable pending_apply : (int * Value.t) list;  (* externalized, tx set missing *)
  mutable running : bool;
  mutable trigger_cancel : (unit -> unit) option;
  mutable last_trigger : float;
}

let node_id t = t.id
let state t = t.state
let buckets t = t.buckets
let headers t = t.headers
let last_header t = match t.headers with h :: _ -> Some h | [] -> None
let ledger_seq t = State.ledger_seq t.state
let queue_size t = Tx_queue.size t.queue
let tx_set t h = Hashtbl.find_opt t.tx_sets h
let set_quorum_set t q = Scp.Protocol.set_quorum_set t.scp q

let timing t slot =
  match Hashtbl.find_opt t.timings slot with
  | Some x -> x
  | None ->
      let x = { t_trigger = t.cb.now (); t_first_ballot = None; externalized = false } in
      Hashtbl.add t.timings slot x;
      x

let prev_header_hash t =
  match t.headers with h :: _ -> Header.hash h | [] -> Header.genesis_hash

(* Transaction-lifecycle trace events are keyed by the lowercase-hex tx
   hash, the same key Horizon-style APIs expose. *)
let tx_hex signed = Stellar_crypto.Hex.encode (Tx.hash signed.Tx.tx)

(* ---- value validation & combination (§5.3) ---- *)

let validate_value t ~slot raw =
  match Value.decode raw with
  | None -> Scp.Driver.Invalid
  | Some v ->
      if not (List.for_all Value.valid_upgrade v.Value.upgrades) then Scp.Driver.Invalid
      else if slot = State.ledger_seq t.state + 1 then begin
        (* we are in sync with this slot: check fully *)
        let close_ok =
          v.Value.close_time > State.close_time t.state
          && float_of_int v.Value.close_time <= t.cb.now () +. 60.0
        in
        match Hashtbl.find_opt t.tx_sets v.Value.tx_set_hash with
        | Some ts when close_ok ->
            if String.equal (Tx_set.prev_header_hash ts) (prev_header_hash t) then
              Scp.Driver.Valid
            else Scp.Driver.Invalid
        | _ -> Scp.Driver.Invalid
      end
      else Scp.Driver.Valid (* not tracking this slot closely *)

let combine_candidates t ~slot:_ raws =
  let values = List.filter_map Value.decode raws in
  match Value.combine_with ~lookup:(fun h -> Hashtbl.find_opt t.tx_sets h) values with
  | Some v -> Some (Value.encode v)
  | None -> None

(* ---- ledger close ---- *)

let results_hash results =
  let ctx = Stellar_crypto.Sha256.init () in
  List.iter
    (fun (signed, outcome) ->
      Stellar_crypto.Sha256.update ctx (Tx.hash signed.Tx.tx);
      Stellar_crypto.Sha256.update ctx (Format.asprintf "%a" Apply.pp_tx_outcome outcome))
    results;
  Stellar_crypto.Sha256.final ctx

let rec close_ledger t slot (v : Value.t) =
  match Hashtbl.find_opt t.tx_sets v.Value.tx_set_hash with
  | None ->
      (* confirmed by the network but we lack the data: wait for the set *)
      t.pending_apply <- (slot, v) :: t.pending_apply
  | Some ts ->
      let cpu0 = Sys.time () in
      let txs = Tx_set.txs ts in
      (* Apply_begin/Apply_end carry tx/op counts at the (single) simulated
         instant of application; CPU time goes to the ledger.apply_ms
         histogram, keeping the trace deterministic. *)
      if Stellar_obs.Sink.enabled t.obs then begin
        (* the network decided this slot: every tx in the winning set is
           externalized at this node's close instant *)
        List.iter
          (fun signed ->
            Stellar_obs.Sink.emit t.obs
              (Stellar_obs.Event.Tx_externalized { tx = tx_hex signed; slot }))
          txs;
        Stellar_obs.Sink.emit t.obs
          (Stellar_obs.Event.Apply_begin
             { slot; txs = Tx_set.tx_count ts; ops = Tx_set.op_count ts })
      end;
      let state', results =
        Apply.apply_tx_set ~obs:t.obs Apply.sim_ctx t.state ~close_time:v.Value.close_time
          txs
      in
      let state' = Value.apply_upgrades state' v.Value.upgrades in
      (* fold this ledger's changes into the bucket list *)
      let state', dirty = State.take_dirty state' in
      let batch =
        List.map
          (fun key -> { Stellar_bucket.Bucket.key; entry = State.lookup state' key })
          dirty
      in
      let buckets' = Stellar_bucket.Bucket_list.add_batch ~obs:t.obs t.buckets batch in
      let header =
        Header.make
          ~prev:(last_header t)
          ~scp_value_hash:(Value.hash v) ~tx_set_hash:v.Value.tx_set_hash
          ~results_hash:(results_hash results)
          ~snapshot_hash:(Stellar_bucket.Bucket_list.hash buckets')
          ~state:state'
      in
      let apply_s = Sys.time () -. cpu0 in
      if Stellar_obs.Sink.enabled t.obs then begin
        Stellar_obs.Sink.emit t.obs
          (Stellar_obs.Event.Apply_end
             { slot; txs = Tx_set.tx_count ts; ops = Tx_set.op_count ts });
        Stellar_obs.Sink.observe t.obs "ledger.apply_ms" (apply_s *. 1000.0);
        Stellar_obs.Sink.incr t.obs "ledger.closed"
      end;
      t.state <- state';
      t.buckets <- buckets';
      t.headers <- header :: t.headers;
      Tx_queue.remove_applied t.queue txs;
      let purged = Tx_queue.purge_invalid t.queue ~state:t.state in
      if Stellar_obs.Sink.enabled t.obs then
        List.iter
          (fun signed ->
            Stellar_obs.Sink.emit t.obs
              (Stellar_obs.Event.Tx_dropped { tx = tx_hex signed; reason = `Stale }))
          purged;
      if Stellar_obs.Sink.enabled t.obs then
        Stellar_obs.Sink.set_gauge t.obs "herder.queue.size"
          (float_of_int (Tx_queue.size t.queue));
      Scp.Protocol.purge_slots t.scp ~below:(slot - 32);
      (* stats *)
      let tm = timing t slot in
      tm.externalized <- true;
      let now = t.cb.now () in
      let first_ballot = Option.value ~default:now tm.t_first_ballot in
      t.cb.on_ledger_closed
        {
          seq = State.ledger_seq t.state;
          close_time = v.Value.close_time;
          tx_count = Tx_set.tx_count ts;
          op_count = Tx_set.op_count ts;
          nomination_s = Float.max 0.0 (first_ballot -. tm.t_trigger);
          balloting_s = Float.max 0.0 (now -. first_ballot);
          apply_s;
          total_s = now -. tm.t_trigger;
          header;
        };
      Hashtbl.remove t.timings slot;
      (* schedule the next ledger to hold the 5-second cadence *)
      (if t.running && t.config.is_validator then begin
         let elapsed = now -. t.last_trigger in
         let delay = Float.max 0.0 (t.config.ledger_interval -. elapsed) in
         Option.iter (fun c -> c ()) t.trigger_cancel;
         t.trigger_cancel <- Some (t.cb.schedule ~delay (fun () -> trigger_next_ledger t))
       end);
      (* cascade: while catching up, successor slots may already have
         externalized values waiting *)
      let next = State.ledger_seq t.state + 1 in
      match List.assoc_opt next t.pending_apply with
      | Some v when Hashtbl.mem t.tx_sets v.Value.tx_set_hash ->
          t.pending_apply <- List.remove_assoc next t.pending_apply;
          close_ledger t next v
      | _ -> ()

and trigger_next_ledger t =
  if t.running && t.config.is_validator then begin
    let slot = State.ledger_seq t.state + 1 in
    t.last_trigger <- t.cb.now ();
    let tm = timing t slot in
    tm.t_trigger <- t.cb.now ();
    (* build and flood our transaction-set candidate *)
    let txs =
      Tx_queue.candidates t.queue ~state:t.state ~max_ops:t.config.max_ops_per_ledger
    in
    let ts = Tx_set.make ~prev_header_hash:(prev_header_hash t) txs in
    if Stellar_obs.Sink.enabled t.obs then
      List.iter
        (fun signed ->
          Stellar_obs.Sink.emit t.obs
            (Stellar_obs.Event.Tx_in_txset { tx = tx_hex signed; slot }))
        txs;
    Hashtbl.replace t.tx_sets (Tx_set.hash ts) ts;
    t.cb.broadcast_tx_set ts;
    let close_time = max (int_of_float (t.cb.now ())) (State.close_time t.state + 1) in
    let upgrades = if t.config.is_governing then t.config.desired_upgrades else [] in
    let value = Value.{ tx_set_hash = Tx_set.hash ts; close_time; upgrades } in
    let prev =
      match last_header t with Some h -> Header.hash h | None -> Header.genesis_hash
    in
    Scp.Protocol.nominate t.scp ~slot ~value:(Value.encode value) ~prev
  end

(* ---- construction ---- *)

let create config cb ~genesis ?buckets ?(headers = []) ?(obs = Stellar_obs.Sink.null) () =
  let secret, id = Stellar_crypto.Sim_sig.keypair ~seed:config.seed in
  let rec t =
    lazy
      (let driver =
         Scp.Driver.make
           ~emit_envelope:(fun env -> cb.broadcast_envelope env)
           ~sign:(fun msg -> Stellar_crypto.Sim_sig.sign secret msg)
           ~verify:(fun node_id ~msg ~signature ->
             Stellar_crypto.Sim_sig.verify ~public:node_id ~msg ~signature)
           ~validate_value:(fun ~slot raw -> validate_value (Lazy.force t) ~slot raw)
           ~combine_candidates:(fun ~slot raws -> combine_candidates (Lazy.force t) ~slot raws)
           ~value_externalized:(fun ~slot raw ->
             let h = Lazy.force t in
             match Value.decode raw with
             | Some v ->
                 let next = State.ledger_seq h.state + 1 in
                 if slot = next then close_ledger h slot v
                 else if slot > next && not (List.mem_assoc slot h.pending_apply) then
                   (* we are behind: remember the decision until we get there *)
                   h.pending_apply <- (slot, v) :: h.pending_apply
             | None -> ())
           ~schedule:(fun ~delay f -> cb.schedule ~delay f)
           ~obs
           ~hooks:
             {
               Scp.Driver.on_nomination_round = (fun ~slot:_ ~round:_ -> ());
               on_ballot_bump =
                 (fun ~slot ~counter ->
                   let h = Lazy.force t in
                   let tm = timing h slot in
                   if tm.t_first_ballot = None then begin
                     tm.t_first_ballot <- Some (cb.now ());
                     (* the nomination → balloting boundary of the phase
                        breakdown (Report.slot_phases) *)
                     if Stellar_obs.Sink.enabled obs then
                       Stellar_obs.Sink.emit obs
                         (Stellar_obs.Event.First_vote { slot; counter })
                   end);
               on_timeout = (fun ~slot:_ ~kind -> cb.on_timeout ~kind);
               on_phase_change = (fun ~slot:_ ~phase:_ -> ());
             }
           ()
       in
       {
         config;
         cb;
         obs;
         secret;
         id;
         scp = Scp.Protocol.create ~driver ~local_id:id ~qset:config.qset;
         queue = Tx_queue.create ();
         tx_sets = Hashtbl.create 64;
         pending_envs = Hashtbl.create 16;
         timings = Hashtbl.create 8;
         state = genesis;
         headers;
         buckets =
           (match buckets with
           | Some b -> b
           | None -> Stellar_bucket.Bucket_list.of_state genesis);
         pending_apply = [];
         running = false;
         trigger_cancel = None;
         last_trigger = 0.0;
       })
  in
  Lazy.force t

let start t =
  if not t.running then begin
    t.running <- true;
    if t.config.is_validator then
      t.trigger_cancel <- Some (t.cb.schedule ~delay:0.0 (fun () -> trigger_next_ledger t))
  end

let stop t =
  t.running <- false;
  Option.iter (fun c -> c ()) t.trigger_cancel;
  t.trigger_cancel <- None

(* ---- ingress ---- *)

let receive_tx t signed =
  if Tx_queue.add t.queue signed then `New
  else begin
    if Stellar_obs.Sink.enabled t.obs then
      Stellar_obs.Sink.emit t.obs
        (Stellar_obs.Event.Tx_dropped { tx = tx_hex signed; reason = `Duplicate });
    `Duplicate
  end

let submit_tx t signed =
  match receive_tx t signed with
  | `New ->
      if Stellar_obs.Sink.enabled t.obs then
        Stellar_obs.Sink.emit t.obs (Stellar_obs.Event.Tx_submit { tx = tx_hex signed });
      t.cb.broadcast_tx signed;
      `Queued
  | `Duplicate -> `Duplicate

(* Tx-set hashes referenced by a statement's values. *)
let referenced_tx_sets st =
  let values =
    match st.Scp.Types.pledge with
    | Scp.Types.Nominate n -> n.Scp.Types.votes @ n.Scp.Types.accepted
    | Scp.Types.Prepare p -> [ p.Scp.Types.ballot.Scp.Types.value ]
    | Scp.Types.Confirm c -> [ c.Scp.Types.ballot.Scp.Types.value ]
    | Scp.Types.Externalize e -> [ e.Scp.Types.commit.Scp.Types.value ]
  in
  List.filter_map
    (fun raw -> Option.map (fun v -> v.Value.tx_set_hash) (Value.decode raw))
    values

let rec receive_envelope t env =
  let missing =
    List.filter
      (fun h -> not (Hashtbl.mem t.tx_sets h))
      (referenced_tx_sets env.Scp.Types.statement)
  in
  match missing with
  | [] -> ignore (Scp.Protocol.receive_envelope t.scp env)
  | h :: _ ->
      let q =
        match Hashtbl.find_opt t.pending_envs h with
        | Some q -> q
        | None ->
            let q = ref [] in
            Hashtbl.replace t.pending_envs h q;
            q
      in
      q := env :: !q

and receive_tx_set t ts =
  let h = Tx_set.hash ts in
  if not (Hashtbl.mem t.tx_sets h) then begin
    Hashtbl.replace t.tx_sets h ts;
    (* wake buffered envelopes *)
    (match Hashtbl.find_opt t.pending_envs h with
    | Some q ->
        let envs = List.rev !q in
        Hashtbl.remove t.pending_envs h;
        List.iter (receive_envelope t) envs
    | None -> ());
    (* and any externalized-but-unapplied value *)
    let ready, waiting =
      List.partition (fun (_, v) -> String.equal v.Value.tx_set_hash h) t.pending_apply
    in
    t.pending_apply <- waiting;
    List.iter
      (fun (slot, v) -> if slot = State.ledger_seq t.state + 1 then close_ledger t slot v)
      (List.sort (fun (a, _) (b, _) -> Int.compare a b) ready)
  end

(* §6: help a peer finish an old slot after lost messages — the production
   incident was caused by validators moving on without doing this. *)
let help_straggler t ~slot =
  if slot <= State.ledger_seq t.state then begin
    let envs = Scp.Protocol.latest_envelopes t.scp ~slot in
    let tx_sets =
      List.filter_map
        (fun env ->
          match env.Scp.Types.statement.Scp.Types.pledge with
          | Scp.Types.Externalize e -> (
              match Value.decode e.Scp.Types.commit.Scp.Types.value with
              | Some v -> Hashtbl.find_opt t.tx_sets v.Value.tx_set_hash
              | None -> None)
          | _ -> None)
        envs
    in
    (envs, tx_sets)
  end
  else ([], [])

(* Everything this node would currently assert about the in-flight slot and
   the one it just closed — what a (simulated) Byzantine re-flooder blasts
   at the network over and over. *)
let recent_envelopes t =
  let seq = State.ledger_seq t.state in
  Scp.Protocol.latest_envelopes t.scp ~slot:(seq + 1)
  @ Scp.Protocol.latest_envelopes t.scp ~slot:seq
