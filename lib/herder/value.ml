type upgrade =
  | Upgrade_base_fee of int
  | Upgrade_base_reserve of int
  | Upgrade_protocol_version of int

type t = { tx_set_hash : string; close_time : int; upgrades : upgrade list }

let upgrade_tag = function
  | Upgrade_base_fee _ -> 0
  | Upgrade_base_reserve _ -> 1
  | Upgrade_protocol_version _ -> 2

let upgrade_value = function
  | Upgrade_base_fee v | Upgrade_base_reserve v | Upgrade_protocol_version v -> v

module Xdr = Stellar_xdr.Xdr

let upgrade_xdr =
  Xdr.union ~tag:upgrade_tag
    ~write_arm:(fun w u -> Xdr.Writer.hyper w (upgrade_value u))
    ~read_arm:(fun tag r ->
      let v = Xdr.Reader.hyper r in
      match tag with
      | 0 -> Upgrade_base_fee v
      | 1 -> Upgrade_base_reserve v
      | 2 -> Upgrade_protocol_version v
      | _ -> raise (Xdr.Error "Value.upgrade: bad discriminant"))

let xdr =
  let open Xdr in
  {
    write =
      (fun w v ->
        Writer.opaque_var w v.tx_set_hash;
        Writer.hyper w v.close_time;
        (* sorted by tag, so the encoding is canonical *)
        let upgrades =
          List.sort (fun a b -> Int.compare (upgrade_tag a) (upgrade_tag b)) v.upgrades
        in
        (list ~max:16 upgrade_xdr).write w upgrades);
    read =
      (fun r ->
        let tx_set_hash = Reader.opaque_var r () in
        let close_time = Reader.hyper r in
        let upgrades = (list ~max:16 upgrade_xdr).read r in
        { tx_set_hash; close_time; upgrades });
  }

let encode v = Xdr.encode xdr v
let decode s = match Xdr.decode xdr s with Ok v -> Some v | Error _ -> None

let hash v = Stellar_crypto.Sha256.digest (encode v)

let merge_upgrades values =
  (* Union; on conflicting values for the same parameter the higher wins
     (§5.3: "higher fees and protocol version numbers supersede"). *)
  let best = Hashtbl.create 4 in
  List.iter
    (fun v ->
      List.iter
        (fun u ->
          let tag = upgrade_tag u in
          match Hashtbl.find_opt best tag with
          | Some u' when upgrade_value u' >= upgrade_value u -> ()
          | _ -> Hashtbl.replace best tag u)
        v.upgrades)
    values;
  Hashtbl.fold (fun _ u acc -> u :: acc) best []
  |> List.sort (fun a b -> Int.compare (upgrade_tag a) (upgrade_tag b))

let combine_with ~lookup values =
  let known = List.filter (fun v -> lookup v.tx_set_hash <> None) values in
  match known with
  | [] -> None
  | _ ->
      let score v =
        match lookup v.tx_set_hash with
        | Some ts -> (Tx_set.op_count ts, Tx_set.total_fees ts, v.tx_set_hash)
        | None -> (0, 0, v.tx_set_hash)
      in
      let best =
        List.fold_left
          (fun acc v -> if compare (score v) (score acc) > 0 then v else acc)
          (List.hd known) (List.tl known)
      in
      let close_time = List.fold_left (fun acc v -> max acc v.close_time) 0 known in
      Some { tx_set_hash = best.tx_set_hash; close_time; upgrades = merge_upgrades known }

let combine values =
  combine_with ~lookup:(fun _ -> None) values
  |> fun r ->
  match (r, values) with
  | Some v, _ -> Some v
  | None, [] -> None
  | None, v :: rest ->
      (* no lookup available: fall back to highest tx-set hash *)
      let best = List.fold_left (fun a b -> if b.tx_set_hash > a.tx_set_hash then b else a) v rest in
      let close_time = List.fold_left (fun acc v -> max acc v.close_time) 0 values in
      Some { tx_set_hash = best.tx_set_hash; close_time; upgrades = merge_upgrades values }

let valid_upgrade = function
  | Upgrade_base_fee v -> v >= 1 && v <= 10_000
  | Upgrade_base_reserve v -> v >= 1 && v <= 100_000_000
  | Upgrade_protocol_version v -> v >= 1 && v <= 100

let apply_upgrades state upgrades =
  List.fold_left
    (fun state u ->
      match u with
      | Upgrade_base_fee v -> Stellar_ledger.State.with_params ~base_fee:v state
      | Upgrade_base_reserve v -> Stellar_ledger.State.with_params ~base_reserve:v state
      | Upgrade_protocol_version v ->
          Stellar_ledger.State.with_params ~protocol_version:v state)
    state upgrades

let pp fmt v =
  Format.fprintf fmt "value{txset=%s close=%d upgrades=%d}"
    (String.sub (Stellar_crypto.Hex.encode v.tx_set_hash) 0 8)
    v.close_time (List.length v.upgrades)
