module SS = Set.Make (String)
module IS = Set.Make (Int)

type msg =
  | Request of string
  | Preprepare of { view : int; seq : int; value : string }
  | Prepare of { view : int; seq : int; digest : string; node : int }
  | Commit of { view : int; seq : int; digest : string; node : int }
  | View_change of { new_view : int; node : int }

let msg_size = function
  | Request v -> 64 + String.length v
  | Preprepare p -> 96 + String.length p.value
  | Prepare _ | Commit _ -> 112
  | View_change _ -> 80

type replica = {
  index : int;
  mutable view : int;
  mutable last_seq : int;  (* as primary *)
  log : (int * int, string) Hashtbl.t;  (* (view, seq) -> value *)
  prepares : (int * int * string, IS.t) Hashtbl.t;
  commits : (int * int * string, IS.t) Hashtbl.t;
  mutable decided : (int * string) list;  (* newest first *)
  decided_seqs : (int, unit) Hashtbl.t;
  mutable pending : SS.t;  (* client values not yet decided *)
  pending_values : (string, string) Hashtbl.t;  (* digest -> value *)
  view_changes : (int, IS.t) Hashtbl.t;
  mutable timer : (unit -> unit) option;
}

type cluster = {
  engine : Stellar_sim.Engine.t;
  net : msg Stellar_sim.Network.t;
  replicas : replica array;
  f : int;
  view_timeout : float;
  on_decide : seq:int -> string -> unit;
}

let digest v = Stellar_crypto.Sha256.digest v
let primary_of c view = view mod Array.length c.replicas

(* highest view any live replica has adopted *)
let view c =
  Array.fold_left
    (fun acc (r : replica) ->
      if Stellar_sim.Network.is_down c.net r.index then acc else max acc r.view)
    0 c.replicas

let primary c = primary_of c (view c)
let message_count c = Stellar_sim.Network.total_messages c.net
let decided c i = List.rev c.replicas.(i).decided

let broadcast c src m =
  for j = 0 to Array.length c.replicas - 1 do
    if j <> src then Stellar_sim.Network.send c.net ~src ~dst:j ~size:(msg_size m) m
  done

let cancel_timer r =
  Option.iter (fun f -> f ()) r.timer;
  r.timer <- None

(* polymorphic in the key type, so it must live outside the rec group *)
let add_vote tbl key node =
  let set = Option.value ~default:IS.empty (Hashtbl.find_opt tbl key) in
  let set = IS.add node set in
  Hashtbl.replace tbl key set;
  IS.cardinal set

let rec arm_timer c r =
  cancel_timer r;
  let t = Stellar_sim.Engine.schedule c.engine ~delay:c.view_timeout (fun () -> on_timeout c r) in
  r.timer <- Some (fun () -> Stellar_sim.Engine.cancel t)

and on_timeout c r =
  (* progress stalled with pending requests: ask for a view change *)
  if not (SS.is_empty r.pending) then begin
    let new_view = r.view + 1 in
    let m = View_change { new_view; node = r.index } in
    broadcast c r.index m;
    handle c r.index m ~src:r.index;
    arm_timer c r
  end

and propose_pending c r =
  (* the (new) primary proposes every undecided client value *)
  if primary_of c r.view = r.index then
    SS.iter
      (fun d ->
        match Hashtbl.find_opt r.pending_values d with
        | Some value ->
            r.last_seq <- r.last_seq + 1;
            let m = Preprepare { view = r.view; seq = r.last_seq; value } in
            broadcast c r.index m;
            handle c r.index m ~src:r.index
        | None -> ())
      r.pending

and handle c i m ~src =
  let r = c.replicas.(i) in
  ignore src;
  match m with
  | Request value ->
      let d = digest value in
      if not (Hashtbl.mem r.pending_values d) then begin
        Hashtbl.replace r.pending_values d value;
        r.pending <- SS.add d r.pending;
        if r.timer = None then arm_timer c r
      end;
      if primary_of c r.view = i then propose_pending c r
  | Preprepare { view; seq; value } ->
      if view = r.view && not (Hashtbl.mem r.log (view, seq)) then begin
        Hashtbl.replace r.log (view, seq) value;
        let d = digest value in
        (* remember the value in case we become primary later *)
        if not (Hashtbl.mem r.pending_values d) then begin
          Hashtbl.replace r.pending_values d value;
          r.pending <- SS.add d r.pending
        end;
        let pm = Prepare { view; seq; digest = d; node = i } in
        broadcast c i pm;
        handle c i pm ~src:i
      end
  | Prepare { view; seq; digest = d; node } ->
      if view = r.view then begin
        let count = add_vote r.prepares (view, seq, d) node in
        (* 2f prepares + the pre-prepare = prepared certificate *)
        if count = 2 * c.f && Hashtbl.mem r.log (view, seq) then begin
          let cm = Commit { view; seq; digest = d; node = i } in
          broadcast c i cm;
          handle c i cm ~src:i
        end
      end
  | Commit { view; seq; digest = d; node } ->
      let count = add_vote r.commits (view, seq, d) node in
      if count = (2 * c.f) + 1 && not (Hashtbl.mem r.decided_seqs seq) then begin
        match Hashtbl.find_opt r.log (view, seq) with
        | Some value when String.equal (digest value) d ->
            Hashtbl.replace r.decided_seqs seq ();
            r.decided <- (seq, value) :: r.decided;
            r.pending <- SS.remove d r.pending;
            if SS.is_empty r.pending then cancel_timer r else arm_timer c r;
            c.on_decide ~seq value
        | _ -> ()
      end
  | View_change { new_view; node } ->
      if new_view > r.view then begin
        let count = add_vote r.view_changes new_view node in
        if count >= (2 * c.f) + 1 then begin
          r.view <- new_view;
          propose_pending c r
        end
      end

let create ~engine ~rng ~n ~latency ?(view_timeout = 3.0) ~on_decide () =
  if n < 4 then invalid_arg "Pbft.create: need n >= 4";
  let net = Stellar_sim.Network.create ~engine ~rng ~n ~latency () in
  let replicas =
    Array.init n (fun index ->
        {
          index;
          view = 0;
          last_seq = 0;
          log = Hashtbl.create 64;
          prepares = Hashtbl.create 64;
          commits = Hashtbl.create 64;
          decided = [];
          decided_seqs = Hashtbl.create 64;
          pending = SS.empty;
          pending_values = Hashtbl.create 64;
          view_changes = Hashtbl.create 8;
          timer = None;
        })
  in
  let c = { engine; net; replicas; f = (n - 1) / 3; view_timeout; on_decide } in
  Array.iteri
    (fun i _ -> Stellar_sim.Network.set_handler net i (fun ~src ~info:_ m -> handle c i m ~src))
    replicas;
  c

let propose c value =
  (* a client sends the request to every replica; the primary proposes,
     backups start their timers *)
  Array.iteri
    (fun i _ ->
      if not (Stellar_sim.Network.is_down c.net i) then handle c i (Request value) ~src:i)
    c.replicas

let crash c i = Stellar_sim.Network.set_down c.net i true
