(** Overlay wire messages: SCP envelopes, transaction sets and transactions
    flooded among peers (§5.4, §7.5: a naive flooding protocol).  The flood
    wrapper is an XDR union, so its overhead is the measured 4-byte
    discriminant plus the member's canonical encoding — no estimates. *)

type t =
  | Envelope of Scp.Types.envelope
  | Tx_set_msg of Stellar_herder.Tx_set.t
  | Tx_msg of Stellar_ledger.Tx.signed

val xdr : t Stellar_xdr.Xdr.codec

val encode : t -> string
(** Canonical XDR bytes of the flood wrapper. *)

val encode_count : unit -> int
(** Process-wide number of {!encode} calls so far.  The flood path
    serializes each message exactly once (the same bytes feed the dedup
    hash and the wire); tests diff this counter to pin that invariant. *)

val decode : string -> (t, string) result

val size : t -> int
(** Serialized size in bytes, for bandwidth accounting (§7.4): exactly
    [String.length (encode m)]. *)

val dedup_key : t -> string
(** Hash used by flood deduplication: SHA-256 over {!encode}. *)

val kind_name : t -> string
(** Short stable label ("envelope" | "txset" | "tx") for trace events. *)
