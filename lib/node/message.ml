module Xdr = Stellar_xdr.Xdr

type t =
  | Envelope of Scp.Types.envelope
  | Tx_set_msg of Stellar_herder.Tx_set.t
  | Tx_msg of Stellar_ledger.Tx.signed

let xdr =
  Xdr.union
    ~tag:(function Envelope _ -> 0 | Tx_set_msg _ -> 1 | Tx_msg _ -> 2)
    ~write_arm:(fun w -> function
      | Envelope env -> Scp.Types.envelope_xdr.Xdr.write w env
      | Tx_set_msg ts -> Stellar_herder.Tx_set.xdr.Xdr.write w ts
      | Tx_msg signed -> Stellar_ledger.Tx.signed_xdr.Xdr.write w signed)
    ~read_arm:(fun tag r ->
      match tag with
      | 0 -> Envelope (Scp.Types.envelope_xdr.Xdr.read r)
      | 1 -> Tx_set_msg (Stellar_herder.Tx_set.xdr.Xdr.read r)
      | 2 -> Tx_msg (Stellar_ledger.Tx.signed_xdr.Xdr.read r)
      | _ -> raise (Xdr.Error "Message: bad discriminant"))

(* Global encode counter: the flood path is supposed to serialize each
   message exactly once (encode → hash for dedup → same bytes on the wire),
   and the regression test pins that invariant here. *)
let encode_calls = ref 0
let encode_count () = !encode_calls

let encode m =
  incr encode_calls;
  Xdr.encode xdr m

let decode s = Xdr.decode xdr s

let size m = Xdr.encoded_length xdr m

let dedup_key m = Stellar_crypto.Sha256.digest (encode m)

let kind_name = function
  | Envelope _ -> "envelope"
  | Tx_set_msg _ -> "txset"
  | Tx_msg _ -> "tx"
