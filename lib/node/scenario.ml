open Stellar_ledger

type params = {
  spec : Topology.spec;
  n_accounts : int;
  tx_rate : float;
  duration : float;
  latency : Stellar_sim.Latency.t;
  processing : int -> float;
  seed : int;
  ledger_interval : float;
  max_ops_per_ledger : int;
  warmup_ledgers : int;
  observe : bool;
  trace_capacity : int option;
  faults : Fault.schedule;
}

let default ~spec =
  {
    spec;
    n_accounts = 1_000;
    tx_rate = 20.0;
    duration = 60.0;
    latency = Stellar_sim.Latency.datacenter;
    processing = (fun size -> 0.0001 +. (float_of_int size *. 8.0 /. 1e9));
    seed = 1;
    ledger_interval = 5.0;
    max_ops_per_ledger = 10_000;
    warmup_ledgers = 2;
    observe = false;
    trace_capacity = None;
    faults = [];
  }

type report = {
  ledgers_closed : int;
  nomination : Metrics.summary;
  balloting : Metrics.summary;
  apply : Metrics.summary;
  total : Metrics.summary;
  close_interval : Metrics.summary;
  txs_per_ledger : Metrics.summary;
  txs_submitted : int;
  txs_applied : int;
  nomination_timeouts_per_ledger : Metrics.summary;
  ballot_timeouts_per_ledger : Metrics.summary;
  envelopes_per_ledger : float;
  msgs_per_second_per_node : float;
  bytes_in_total : int;
  bytes_out_total : int;
  bytes_in_per_second : float;
  bytes_out_per_second : float;
  diverged : bool;
  chains : (int * string list) list;
  converged : bool;
  wall_seconds : float;
  final_ledger_seq : int;
  telemetry : Stellar_obs.Collector.t option;
}

let scheme =
  (module Stellar_crypto.Sim_sig : Stellar_crypto.Sig_intf.SCHEME with type secret = string)

let run p =
  (match Fault.validate ~n_nodes:p.spec.Topology.n_nodes p.faults with
  | Ok () -> ()
  | Error e -> failwith ("Scenario: invalid fault schedule: " ^ e));
  let wall0 = Unix.gettimeofday () in
  let engine = Stellar_sim.Engine.create () in
  let rng = Stellar_sim.Rng.create ~seed:p.seed in
  let telemetry =
    if p.observe then begin
      let c =
        Stellar_obs.Collector.create ?trace_capacity:p.trace_capacity
          ~n:p.spec.Topology.n_nodes
          ~now:(fun () -> Stellar_sim.Engine.now engine)
          ()
      in
      Stellar_sim.Engine.set_obs engine (Stellar_obs.Collector.sim_sink c);
      Some c
    end
    else None
  in
  let obs_sink i =
    match telemetry with
    | Some c -> Stellar_obs.Collector.sink c i
    | None -> Stellar_obs.Sink.null
  in
  let network =
    Stellar_sim.Network.create ~engine ~rng ~n:p.spec.Topology.n_nodes ~latency:p.latency
      ~processing:p.processing
      ?obs:(Option.map (fun c -> Stellar_obs.Collector.sink c) telemetry)
      ()
  in
  let genesis, accounts = Genesis.make ~n_accounts:p.n_accounts () in
  let shared_buckets = Stellar_bucket.Bucket_list.of_state genesis in
  (* per-ledger stats from node 0; timeout counters per node *)
  let ledger_log = ref [] in
  let nom_timeouts = ref 0 and ballot_timeouts = ref 0 in
  let timeouts_per_ledger = ref [] in
  (* Fault runs keep a history archive fed from node 0's closes, so a
     restarted validator has a §5.4 checkpoint to bootstrap from.  A short
     checkpoint frequency keeps the replay tail small at simulation scale. *)
  let archive =
    if p.faults = [] then None
    else Some (Stellar_archive.Archive.create ~checkpoint_frequency:4 ())
  in
  let v0 = ref None in
  let record_in_archive stats =
    match (archive, !v0) with
    | Some a, Some v ->
        let header = stats.Stellar_herder.Herder.header in
        (* in-sequence guard: if node 0 itself was down for some closes, the
           archive just stops at the gap rather than tripping the
           append-only order check *)
        let expected =
          match Stellar_archive.Archive.latest_seq a with
          | Some s -> s + 1
          | None -> header.Header.ledger_seq
        in
        if header.Header.ledger_seq = expected then
          Option.iter
            (fun tx_set ->
              Stellar_archive.Archive.record_ledger a ~header ~tx_set
                ~buckets:(Stellar_herder.Herder.buckets (Validator.herder v)))
            (Stellar_herder.Herder.tx_set (Validator.herder v) header.Header.tx_set_hash)
    | _ -> ()
  in
  let validators =
    Array.init p.spec.Topology.n_nodes (fun i ->
        let config =
          {
            (Stellar_herder.Herder.default_config ~seed:(p.spec.Topology.validator_seed i)
               ~qset:(p.spec.Topology.qset_of i))
            with
            Stellar_herder.Herder.is_validator = p.spec.Topology.is_validator i;
            ledger_interval = p.ledger_interval;
            max_ops_per_ledger = p.max_ops_per_ledger;
          }
        in
        let on_ledger_closed =
          if i = 0 then fun stats ->
            begin
              ledger_log := stats :: !ledger_log;
              timeouts_per_ledger := (!nom_timeouts, !ballot_timeouts) :: !timeouts_per_ledger;
              nom_timeouts := 0;
              ballot_timeouts := 0;
              record_in_archive stats
            end
          else fun _ -> ()
        in
        let on_timeout =
          if i = 0 then fun ~kind ->
            match kind with
            | `Nomination -> incr nom_timeouts
            | `Ballot -> incr ballot_timeouts
          else fun ~kind:_ -> ()
        in
        Validator.create ~network ~index:i ~peers:(p.spec.Topology.peers_of i) ~config
          ~genesis ~buckets:shared_buckets ~on_ledger_closed ~on_timeout ~obs:(obs_sink i)
          ())
  in
  v0 := Some validators.(0);
  Array.iter Validator.start validators;
  (* ---- fault schedule interpretation ---- *)
  let sim_sink =
    match telemetry with
    | Some c -> Stellar_obs.Collector.sim_sink c
    | None -> Stellar_obs.Sink.null
  in
  List.iter
    (fun ev ->
      let at delay f = ignore (Stellar_sim.Engine.schedule engine ~delay f) in
      match ev with
      | Fault.Crash { node; at = t } -> at t (fun () -> Validator.crash validators.(node))
      | Fault.Restart { node; at = t } ->
          at t (fun () -> Validator.restart ?archive validators.(node))
      | Fault.Partition { at = t; groups } ->
          at t (fun () ->
              let arr = Array.make p.spec.Topology.n_nodes 0 in
              List.iter (fun (node, g) -> arr.(node) <- g) groups;
              Stellar_sim.Network.set_partition network (fun i -> arr.(i));
              if Stellar_obs.Sink.enabled sim_sink then
                Stellar_obs.Sink.emit sim_sink
                  (Stellar_obs.Event.Partition_begin { groups = Array.to_list arr }))
      | Fault.Heal { at = t } ->
          at t (fun () ->
              Stellar_sim.Network.set_partition network (fun _ -> 0);
              if Stellar_obs.Sink.enabled sim_sink then
                Stellar_obs.Sink.emit sim_sink Stellar_obs.Event.Partition_heal)
      | Fault.Loss { rate; from_; until_ } ->
          at from_ (fun () -> Stellar_sim.Network.set_loss_rate network rate);
          at until_ (fun () -> Stellar_sim.Network.set_loss_rate network 0.0)
      | Fault.Reflood { node; at = t; copies } ->
          at t (fun () -> Validator.reflood validators.(node) ~copies))
    p.faults;
  (* ---- load generation: Poisson arrivals of single-payment txs ---- *)
  let seqs = Array.make (max 1 (Array.length accounts)) 0 in
  let submitted = ref 0 in
  let validator_indices =
    List.filter p.spec.Topology.is_validator (List.init p.spec.Topology.n_nodes Fun.id)
    |> Array.of_list
  in
  let next_account = ref 0 in
  let submit_one () =
    if Array.length accounts >= 2 then begin
      let src_i = !next_account mod Array.length accounts in
      next_account := !next_account + 1;
      let dst_i = Stellar_sim.Rng.int rng (Array.length accounts) in
      let dst_i = if dst_i = src_i then (dst_i + 1) mod Array.length accounts else dst_i in
      let src = accounts.(src_i) and dst = accounts.(dst_i) in
      seqs.(src_i) <- seqs.(src_i) + 1;
      let tx =
        Tx.make ~source:src.Genesis.public ~seq_num:seqs.(src_i)
          [
            Tx.op
              (Tx.Payment
                 { destination = dst.Genesis.public; asset = Asset.native; amount = 1000 });
          ]
      in
      let signed = Tx.sign tx ~secret:src.Genesis.secret ~public:src.Genesis.public ~scheme in
      let target = Stellar_sim.Rng.pick rng validator_indices in
      Validator.submit_tx validators.(target) signed;
      incr submitted
    end
  in
  let rec arrival () =
    if Stellar_sim.Engine.now engine < p.duration && p.tx_rate > 0.0 then begin
      submit_one ();
      let gap = Stellar_sim.Rng.exponential rng ~mean:(1.0 /. p.tx_rate) in
      ignore (Stellar_sim.Engine.schedule engine ~delay:gap arrival)
    end
  in
  if p.tx_rate > 0.0 then ignore (Stellar_sim.Engine.schedule engine ~delay:0.1 arrival);
  (* run under load, then drain a few more ledgers *)
  Stellar_sim.Engine.run ~until:(p.duration +. (4.0 *. p.ledger_interval)) engine;
  Array.iter Validator.stop validators;
  (* ---- collect ---- *)
  let stats = List.rev !ledger_log in
  let t_per_ledger = List.rev !timeouts_per_ledger in
  let drop_warmup l = if List.length l > p.warmup_ledgers then
      List.filteri (fun i _ -> i >= p.warmup_ledgers) l
    else l
  in
  let stats' = drop_warmup stats in
  let t_per_ledger' = drop_warmup t_per_ledger in
  let fl f = List.map f stats' in
  let close_intervals =
    let rec go = function
      | a :: (b :: _ as rest) ->
          float_of_int (b.Stellar_herder.Herder.close_time - a.Stellar_herder.Herder.close_time)
          :: go rest
      | _ -> []
    in
    go stats'
  in
  let txs_applied =
    List.fold_left (fun acc s -> acc + s.Stellar_herder.Herder.tx_count) 0 stats
  in
  let virtual_elapsed = Stellar_sim.Engine.now engine in
  let node0 = Stellar_sim.Network.stats network 0 in
  let n_ledgers_all = List.length stats in
  (* logical envelopes per ledger: count envelope floods originated by
     node 0 (its own emissions) per closed ledger *)
  let envelopes_per_ledger =
    if n_ledgers_all = 0 then 0.0
    else float_of_int (Validator.own_envelopes validators.(0)) /. float_of_int n_ledgers_all
  in
  (* per-validator header chains, oldest first, as hex hashes *)
  let chains =
    Array.to_list validators
    |> List.filter (fun v -> p.spec.Topology.is_validator (Validator.index v))
    |> List.map (fun v ->
           ( Validator.index v,
             List.rev_map
               (fun h -> Stellar_crypto.Hex.encode (Header.hash h))
               (Stellar_herder.Herder.headers (Validator.herder v)) ))
  in
  (* compare validators at the same ledger seq: use min common length *)
  let common_prefix_equal cs =
    match cs with
    | [] -> true
    | first :: rest ->
        let common =
          List.fold_left (fun acc c -> min acc (List.length c)) (List.length first) rest
        in
        let prefix c = List.filteri (fun i _ -> i < common) c in
        let p0 = prefix first in
        List.for_all (fun c -> prefix c = p0) rest
  in
  let diverged = not (common_prefix_equal (List.map snd chains)) in
  (* Convergence after faults, judged over the validators that are up at the
     end of the run: everyone closed ledgers, nobody is more than one close
     behind (the cutoff can land mid-spread), and all chains agree on the
     common prefix. *)
  let converged =
    let up = List.filter (fun (i, _) -> not (Stellar_sim.Network.is_down network i)) chains in
    match up with
    | [] -> false
    | _ ->
        let lens = List.map (fun (_, c) -> List.length c) up in
        let minl = List.fold_left min (List.hd lens) lens in
        let maxl = List.fold_left max (List.hd lens) lens in
        minl > 0 && maxl - minl <= 1 && common_prefix_equal (List.map snd up)
  in
  {
    ledgers_closed = List.length stats;
    nomination = Metrics.summarize (fl (fun s -> s.Stellar_herder.Herder.nomination_s));
    balloting = Metrics.summarize (fl (fun s -> s.Stellar_herder.Herder.balloting_s));
    apply = Metrics.summarize (fl (fun s -> s.Stellar_herder.Herder.apply_s));
    total = Metrics.summarize (fl (fun s -> s.Stellar_herder.Herder.total_s));
    close_interval = Metrics.summarize close_intervals;
    txs_per_ledger =
      Metrics.summarize (fl (fun s -> float_of_int s.Stellar_herder.Herder.tx_count));
    txs_submitted = !submitted;
    txs_applied;
    nomination_timeouts_per_ledger =
      Metrics.summarize (List.map (fun (n, _) -> float_of_int n) t_per_ledger');
    ballot_timeouts_per_ledger =
      Metrics.summarize (List.map (fun (_, b) -> float_of_int b) t_per_ledger');
    envelopes_per_ledger;
    msgs_per_second_per_node =
      (if virtual_elapsed > 0.0 then
         float_of_int node0.Stellar_sim.Network.msgs_sent /. virtual_elapsed
       else 0.0);
    bytes_in_total = node0.Stellar_sim.Network.bytes_received;
    bytes_out_total = node0.Stellar_sim.Network.bytes_sent;
    bytes_in_per_second =
      (if virtual_elapsed > 0.0 then
         float_of_int node0.Stellar_sim.Network.bytes_received /. virtual_elapsed
       else 0.0);
    bytes_out_per_second =
      (if virtual_elapsed > 0.0 then
         float_of_int node0.Stellar_sim.Network.bytes_sent /. virtual_elapsed
       else 0.0);
    diverged;
    chains;
    converged;
    wall_seconds = Unix.gettimeofday () -. wall0;
    final_ledger_seq = Stellar_herder.Herder.ledger_seq (Validator.herder validators.(0));
    telemetry;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>ledgers closed     : %d (final seq %d)%s@,\
     nomination         : %a@,\
     balloting          : %a@,\
     ledger update      : %a@,\
     end-to-end         : %a@,\
     close interval     : mean %.2fs@,\
     txs/ledger         : mean %.1f (applied %d / submitted %d)@,\
     SCP envelopes/ledger (node 0): %.1f@,\
     node-0 traffic     : %.0f msg/s, in %.2f Mbit/s, out %.2f Mbit/s@,\
     wall time          : %.2fs@]"
    r.ledgers_closed r.final_ledger_seq
    (if r.diverged then "  !! DIVERGED !!" else "")
    Metrics.pp_ms r.nomination Metrics.pp_ms r.balloting Metrics.pp_ms r.apply
    Metrics.pp_ms r.total r.close_interval.Metrics.mean r.txs_per_ledger.Metrics.mean
    r.txs_applied r.txs_submitted r.envelopes_per_ledger r.msgs_per_second_per_node
    (r.bytes_in_per_second *. 8.0 /. 1_000_000.0)
    (r.bytes_out_per_second *. 8.0 /. 1_000_000.0)
    r.wall_seconds
