module Obs = Stellar_obs

type t = {
  network : Message.t Stellar_sim.Network.t;
  index : int;
  peers : int list;
  config : Stellar_herder.Herder.config;
  genesis : Stellar_ledger.State.t;
  genesis_buckets : Stellar_bucket.Bucket_list.t option;
  user_on_ledger_closed : Stellar_herder.Herder.ledger_stats -> unit;
  user_on_timeout : kind:[ `Nomination | `Ballot ] -> unit;
  obs : Obs.Sink.t;
  mutable herder : Stellar_herder.Herder.t;
  mutable generation : int;
      (* bumped on every crash and restart: callbacks and timers close over
         the generation they were created in and go inert when it changes,
         so a stale SCP ballot timer can never fire into a dead herder or
         re-broadcast from beyond the grave *)
  mutable crashed : bool;
  seen : (string, int) Hashtbl.t;  (* flood dedup: key -> expiry slot *)
  helped : (int * int, unit) Hashtbl.t;  (* (peer, slot) straggler replies sent *)
  mutable floods_seen : int;
  mutable floods_forwarded : int;
  mutable own_envelopes : int;
}

let index t = t.index
let herder t = t.herder
let node_id t = Stellar_herder.Herder.node_id t.herder
let floods_seen t = t.floods_seen
let floods_forwarded t = t.floods_forwarded
let own_envelopes t = t.own_envelopes
let helped_size t = Hashtbl.length t.helped
let seen_size t = Hashtbl.length t.seen
let is_crashed t = t.crashed

(* The straggler-reply memo only has to suppress duplicate help within the
   life of a slot: once slot [upto] is externalized locally, memos for it and
   everything older can go, keeping the table bounded over long runs. *)
let prune_helped t ~upto =
  let stale =
    Hashtbl.fold (fun ((_, slot) as k) () acc -> if slot <= upto then k :: acc else acc)
      t.helped []
  in
  List.iter (Hashtbl.remove t.helped) stale;
  if Obs.Sink.enabled t.obs then
    Obs.Sink.set_gauge t.obs "validator.helped.size" (float_of_int (Hashtbl.length t.helped))

(* How long a dedup entry stays useful.  Envelopes are only ever re-flooded
   while their slot is live, so they expire right after it closes (+2 slots
   of margin for stragglers still receiving late externalize copies).
   Transactions and tx sets carry no slot, so they get a fixed horizon past
   the ledger at which they were first seen — by then any copy still in
   flight has long been delivered or dropped. *)
let seen_ttl = 8

let expiry_of t = function
  | Message.Envelope env -> env.Scp.Types.statement.Scp.Types.slot + 2
  | Message.Tx_set_msg _ | Message.Tx_msg _ ->
      Stellar_herder.Herder.ledger_seq t.herder + seen_ttl

(* Dedup entries whose expiry slot is now closed can go: any further copy of
   those messages is late-externalize noise that [expiry_of]'s margin already
   covered.  Without this the table grows with every message ever flooded. *)
let prune_seen t ~upto =
  let stale =
    Hashtbl.fold (fun k expiry acc -> if expiry <= upto then k :: acc else acc) t.seen []
  in
  List.iter (Hashtbl.remove t.seen) stale;
  if Obs.Sink.enabled t.obs then
    Obs.Sink.set_gauge t.obs "validator.seen.size" (float_of_int (Hashtbl.length t.seen))

(* [force] lets a node re-broadcast its own identical message (a straggler
   re-announcing its last statement must not be silenced by its own dedup
   table).  [encoded] is the message's canonical bytes, produced exactly once
   by the caller: dedup key and wire size both come from it. *)
let flood_encoded t ?except ?(force = false) ~encoded msg =
  let key = Stellar_crypto.Sha256.digest encoded in
  if force || not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key (expiry_of t msg);
    let size = String.length encoded in
    (* One monotone id per flood decision: every fanout copy carries it, so
       each Flood_recv downstream names this exact Flood_send (the causal
       edge the critical-path report walks). *)
    let msg_id = Stellar_sim.Network.alloc_msg_id t.network in
    let fanout = ref 0 in
    List.iter
      (fun peer ->
        if Some peer <> except && peer <> t.index then begin
          incr fanout;
          t.floods_forwarded <- t.floods_forwarded + 1;
          Stellar_sim.Network.send t.network ~src:t.index ~dst:peer ~size ~msg_id msg
        end)
      t.peers;
    if Obs.Sink.enabled t.obs then begin
      Obs.Sink.add t.obs "flood.forwarded" !fanout;
      Obs.Sink.emit t.obs
        (Obs.Event.Flood_send
           { kind = Message.kind_name msg; bytes = size; fanout = !fanout; msg_id })
    end
  end

let flood t ?except ?force msg =
  flood_encoded t ?except ?force ~encoded:(Message.encode msg) msg

(* Point-to-point (non-flooded) send, used for straggler help: still tagged
   and traced as a fanout-1 Flood_send so every delivery in the trace
   resolves to exactly one send. *)
let send_direct t ~dst msg =
  let size = Message.size msg in
  let msg_id = Stellar_sim.Network.alloc_msg_id t.network in
  if Obs.Sink.enabled t.obs then
    Obs.Sink.emit t.obs
      (Obs.Event.Flood_send { kind = Message.kind_name msg; bytes = size; fanout = 1; msg_id });
  Stellar_sim.Network.send t.network ~src:t.index ~dst ~size ~msg_id msg

(* A peer still voting on a slot we already closed gets our retained
   envelopes (and the tx sets they reference) directly — the §6 fix. *)
let maybe_help_straggler t ~src env =
  let slot = env.Scp.Types.statement.Scp.Types.slot in
  let is_externalize =
    match env.Scp.Types.statement.Scp.Types.pledge with
    | Scp.Types.Externalize _ -> true
    | _ -> false
  in
  if
    (not is_externalize)
    && slot <= Stellar_herder.Herder.ledger_seq t.herder
    && not (Hashtbl.mem t.helped (src, slot))
  then begin
    Hashtbl.replace t.helped (src, slot) ();
    Obs.Sink.incr t.obs "flood.straggler_helped";
    let envs, tx_sets = Stellar_herder.Herder.help_straggler t.herder ~slot in
    List.iter (fun ts -> send_direct t ~dst:src (Message.Tx_set_msg ts)) tx_sets;
    List.iter (fun e -> send_direct t ~dst:src (Message.Envelope e)) envs
  end

let handle t ~src ~(info : Stellar_sim.Network.delivery) msg =
  if t.crashed then ()
  else begin
    t.floods_seen <- t.floods_seen + 1;
    (* Encode exactly once per delivery: the dedup key, the traced byte
       counts and (on forward) the wire size all come from these bytes. *)
    let encoded = Message.encode msg in
    let key = Stellar_crypto.Sha256.digest encoded in
    if not (Hashtbl.mem t.seen key) then begin
      if Obs.Sink.enabled t.obs then begin
        Obs.Sink.incr t.obs "flood.unique";
        Obs.Sink.emit t.obs
          (Obs.Event.Flood_recv
             {
               kind = Message.kind_name msg;
               bytes = String.length encoded;
               src;
               send_id = info.Stellar_sim.Network.msg_id;
               link_s = info.Stellar_sim.Network.link_s;
               wait_s = info.Stellar_sim.Network.wait_s;
               proc_s = info.Stellar_sim.Network.proc_s;
             });
        (* first sight of a transaction at this node: a tx-lifecycle mark for
           the flood-propagation view (the origin emits its own in
           broadcast_tx) *)
        match msg with
        | Message.Tx_msg signed ->
            Obs.Sink.emit t.obs
              (Obs.Event.Tx_flooded
                 {
                   tx =
                     Stellar_crypto.Hex.encode (Stellar_ledger.Tx.hash signed.Stellar_ledger.Tx.tx);
                 })
        | _ -> ()
      end;
      (* process locally, then forward to our peers (flood with dedup) *)
      (match msg with
      | Message.Envelope env ->
          Stellar_herder.Herder.receive_envelope t.herder env;
          maybe_help_straggler t ~src env
      | Message.Tx_set_msg ts -> Stellar_herder.Herder.receive_tx_set t.herder ts
      | Message.Tx_msg signed -> ignore (Stellar_herder.Herder.receive_tx t.herder signed));
      flood_encoded t ~except:src ~encoded msg
    end
    else if Obs.Sink.enabled t.obs then begin
      let bytes = String.length encoded in
      Obs.Sink.incr t.obs "flood.dup_dropped";
      Obs.Sink.add t.obs "flood.dup_bytes" bytes;
      Obs.Sink.emit t.obs (Obs.Event.Dedup_drop { kind = Message.kind_name msg; src; bytes })
    end
  end

(* Herder callbacks for generation [gen].  Every one of them re-checks the
   validator's current generation before acting: after a crash or restart
   bumps it, timers and broadcasts created under the old herder fall
   silent instead of acting on dead state. *)
let callbacks_for ~engine ~gen get_t =
  Stellar_herder.Herder.
    {
      broadcast_envelope =
        (fun env ->
          let v = get_t () in
          if v.generation = gen then begin
            v.own_envelopes <- v.own_envelopes + 1;
            Obs.Sink.incr v.obs "flood.own_envelopes";
            flood v ~force:true (Message.Envelope env)
          end);
      broadcast_tx_set =
        (fun ts ->
          let v = get_t () in
          if v.generation = gen then flood v (Message.Tx_set_msg ts));
      broadcast_tx =
        (fun signed ->
          let v = get_t () in
          if v.generation = gen then begin
            if Obs.Sink.enabled v.obs then
              Obs.Sink.emit v.obs
                (Obs.Event.Tx_flooded
                   {
                     tx =
                       Stellar_crypto.Hex.encode
                         (Stellar_ledger.Tx.hash signed.Stellar_ledger.Tx.tx);
                   });
            flood v (Message.Tx_msg signed)
          end);
      schedule =
        (fun ~delay f ->
          let timer =
            Stellar_sim.Engine.schedule engine ~delay (fun () ->
                if (get_t ()).generation = gen then f ())
          in
          fun () -> Stellar_sim.Engine.cancel timer);
      now = (fun () -> Stellar_sim.Engine.now engine);
      on_ledger_closed =
        (fun stats ->
          let v = get_t () in
          if v.generation = gen then begin
            prune_helped v ~upto:stats.Stellar_herder.Herder.seq;
            prune_seen v ~upto:stats.Stellar_herder.Herder.seq;
            v.user_on_ledger_closed stats
          end);
      on_timeout =
        (fun ~kind ->
          let v = get_t () in
          if v.generation = gen then v.user_on_timeout ~kind);
    }

let create ~network ~index ~peers ~config ~genesis ?buckets ?headers
    ?(on_ledger_closed = fun _ -> ()) ?(on_timeout = fun ~kind:_ -> ())
    ?(obs = Obs.Sink.null) () =
  let engine = Stellar_sim.Network.engine network in
  let rec t =
    lazy
      (let cb = callbacks_for ~engine ~gen:0 (fun () -> Lazy.force t) in
       {
         network;
         index;
         peers;
         config;
         genesis;
         genesis_buckets = buckets;
         user_on_ledger_closed = on_ledger_closed;
         user_on_timeout = on_timeout;
         obs;
         herder = Stellar_herder.Herder.create config cb ~genesis ?buckets ?headers ~obs ();
         generation = 0;
         crashed = false;
         seen = Hashtbl.create 1024;
         helped = Hashtbl.create 64;
         floods_seen = 0;
         floods_forwarded = 0;
         own_envelopes = 0;
       })
  in
  let t = Lazy.force t in
  Stellar_sim.Network.set_handler network index (fun ~src ~info msg -> handle t ~src ~info msg);
  t

let start t = Stellar_herder.Herder.start t.herder
let stop t = Stellar_herder.Herder.stop t.herder

let submit_tx t signed =
  if not t.crashed then
    match Stellar_herder.Herder.submit_tx t.herder signed with `Queued | `Duplicate -> ()

(* ---- fault injection ---- *)

let crash t =
  if not t.crashed then begin
    Stellar_herder.Herder.stop t.herder;
    t.crashed <- true;
    t.generation <- t.generation + 1;
    Stellar_sim.Network.set_down t.network t.index true;
    if Obs.Sink.enabled t.obs then begin
      Obs.Sink.incr t.obs "fault.crashes";
      Obs.Sink.emit t.obs Obs.Event.Node_crash
    end
  end

let restart ?archive t =
  if t.crashed then begin
    t.crashed <- false;
    t.generation <- t.generation + 1;
    (* the process died: its dedup/memo tables did not survive *)
    Hashtbl.reset t.seen;
    Hashtbl.reset t.helped;
    Stellar_sim.Network.set_down t.network t.index false;
    if Obs.Sink.enabled t.obs then begin
      Obs.Sink.incr t.obs "fault.restarts";
      Obs.Sink.emit t.obs Obs.Event.Node_restart
    end;
    (* §5.4 bootstrap: rebuild state from the archive's latest checkpoint and
       replay forward to its tip; whatever closed after the archive tip is
       recovered live via straggler help once we rejoin consensus. *)
    let bootstrap =
      match archive with
      | None -> None
      | Some a -> (
          match Stellar_archive.Archive.catchup a with
          | Ok (state, buckets, chain) ->
              let from_seq =
                match Stellar_archive.Archive.latest_checkpoint a with
                | Some c -> c.Stellar_archive.Archive.seq
                | None -> 0
              in
              Some (from_seq, state, buckets, chain)
          | Error _ -> None)
    in
    let from_seq = match bootstrap with Some (f, _, _, _) -> f | None -> 0 in
    if Obs.Sink.enabled t.obs then
      Obs.Sink.emit t.obs (Obs.Event.Catchup_begin { from_seq });
    let engine = Stellar_sim.Network.engine t.network in
    let cb = callbacks_for ~engine ~gen:t.generation (fun () -> t) in
    let to_seq, replayed =
      match bootstrap with
      | Some (from_seq, state, buckets, chain) ->
          let to_seq = Stellar_ledger.State.ledger_seq state in
          t.herder <-
            Stellar_herder.Herder.create t.config cb ~genesis:state ~buckets
              ~headers:(List.rev chain) ~obs:t.obs ();
          (to_seq, max 0 (to_seq - from_seq))
      | None ->
          t.herder <-
            Stellar_herder.Herder.create t.config cb ~genesis:t.genesis
              ?buckets:t.genesis_buckets ~obs:t.obs ();
          (0, 0)
    in
    if Obs.Sink.enabled t.obs then
      Obs.Sink.emit t.obs (Obs.Event.Catchup_done { to_seq; replayed });
    Stellar_herder.Herder.start t.herder
  end

(* Byzantine-style pressure: re-broadcast our latest envelopes [copies]
   times, bypassing our own dedup table.  Correct peers drop every copy
   after the first — the interesting measurement is the wasted bytes. *)
let reflood t ~copies =
  if not t.crashed then begin
    Obs.Sink.incr t.obs "fault.refloods";
    let envs = Stellar_herder.Herder.recent_envelopes t.herder in
    for _ = 1 to copies do
      List.iter (fun e -> flood t ~force:true (Message.Envelope e)) envs
    done
  end
