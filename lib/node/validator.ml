module Obs = Stellar_obs

type t = {
  network : Message.t Stellar_sim.Network.t;
  index : int;
  peers : int list;
  herder : Stellar_herder.Herder.t;
  obs : Obs.Sink.t;
  seen : (string, unit) Hashtbl.t;
  helped : (int * int, unit) Hashtbl.t;  (* (peer, slot) straggler replies sent *)
  mutable floods_seen : int;
  mutable floods_forwarded : int;
  mutable own_envelopes : int;
}

let index t = t.index
let herder t = t.herder
let node_id t = Stellar_herder.Herder.node_id t.herder
let floods_seen t = t.floods_seen
let floods_forwarded t = t.floods_forwarded
let own_envelopes t = t.own_envelopes
let helped_size t = Hashtbl.length t.helped

(* The straggler-reply memo only has to suppress duplicate help within the
   life of a slot: once slot [upto] is externalized locally, memos for it and
   everything older can go, keeping the table bounded over long runs. *)
let prune_helped t ~upto =
  let stale =
    Hashtbl.fold (fun ((_, slot) as k) () acc -> if slot <= upto then k :: acc else acc)
      t.helped []
  in
  List.iter (Hashtbl.remove t.helped) stale;
  if Obs.Sink.enabled t.obs then
    Obs.Sink.set_gauge t.obs "validator.helped.size" (float_of_int (Hashtbl.length t.helped))

(* [force] lets a node re-broadcast its own identical message (a straggler
   re-announcing its last statement must not be silenced by its own dedup
   table). *)
let flood t ?except ?(force = false) msg =
  (* Encode once: the dedup key and the wire size both come from the same
     canonical bytes. *)
  let encoded = Message.encode msg in
  let key = Stellar_crypto.Sha256.digest encoded in
  if force || not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    let size = String.length encoded in
    (* One monotone id per flood decision: every fanout copy carries it, so
       each Flood_recv downstream names this exact Flood_send (the causal
       edge the critical-path report walks). *)
    let msg_id = Stellar_sim.Network.alloc_msg_id t.network in
    let fanout = ref 0 in
    List.iter
      (fun peer ->
        if Some peer <> except && peer <> t.index then begin
          incr fanout;
          t.floods_forwarded <- t.floods_forwarded + 1;
          Stellar_sim.Network.send t.network ~src:t.index ~dst:peer ~size ~msg_id msg
        end)
      t.peers;
    if Obs.Sink.enabled t.obs then begin
      Obs.Sink.add t.obs "flood.forwarded" !fanout;
      Obs.Sink.emit t.obs
        (Obs.Event.Flood_send
           { kind = Message.kind_name msg; bytes = size; fanout = !fanout; msg_id })
    end
  end

(* Point-to-point (non-flooded) send, used for straggler help: still tagged
   and traced as a fanout-1 Flood_send so every delivery in the trace
   resolves to exactly one send. *)
let send_direct t ~dst msg =
  let size = Message.size msg in
  let msg_id = Stellar_sim.Network.alloc_msg_id t.network in
  if Obs.Sink.enabled t.obs then
    Obs.Sink.emit t.obs
      (Obs.Event.Flood_send { kind = Message.kind_name msg; bytes = size; fanout = 1; msg_id });
  Stellar_sim.Network.send t.network ~src:t.index ~dst ~size ~msg_id msg

(* A peer still voting on a slot we already closed gets our retained
   envelopes (and the tx sets they reference) directly — the §6 fix. *)
let maybe_help_straggler t ~src env =
  let slot = env.Scp.Types.statement.Scp.Types.slot in
  let is_externalize =
    match env.Scp.Types.statement.Scp.Types.pledge with
    | Scp.Types.Externalize _ -> true
    | _ -> false
  in
  if
    (not is_externalize)
    && slot <= Stellar_herder.Herder.ledger_seq t.herder
    && not (Hashtbl.mem t.helped (src, slot))
  then begin
    Hashtbl.replace t.helped (src, slot) ();
    Obs.Sink.incr t.obs "flood.straggler_helped";
    let envs, tx_sets = Stellar_herder.Herder.help_straggler t.herder ~slot in
    List.iter (fun ts -> send_direct t ~dst:src (Message.Tx_set_msg ts)) tx_sets;
    List.iter (fun e -> send_direct t ~dst:src (Message.Envelope e)) envs
  end

let handle t ~src ~(info : Stellar_sim.Network.delivery) msg =
  t.floods_seen <- t.floods_seen + 1;
  let key = Message.dedup_key msg in
  if not (Hashtbl.mem t.seen key) then begin
    if Obs.Sink.enabled t.obs then begin
      Obs.Sink.incr t.obs "flood.unique";
      Obs.Sink.emit t.obs
        (Obs.Event.Flood_recv
           {
             kind = Message.kind_name msg;
             bytes = Message.size msg;
             src;
             send_id = info.Stellar_sim.Network.msg_id;
             link_s = info.Stellar_sim.Network.link_s;
             wait_s = info.Stellar_sim.Network.wait_s;
             proc_s = info.Stellar_sim.Network.proc_s;
           });
      (* first sight of a transaction at this node: a tx-lifecycle mark for
         the flood-propagation view (the origin emits its own in
         broadcast_tx) *)
      match msg with
      | Message.Tx_msg signed ->
          Obs.Sink.emit t.obs
            (Obs.Event.Tx_flooded
               {
                 tx =
                   Stellar_crypto.Hex.encode (Stellar_ledger.Tx.hash signed.Stellar_ledger.Tx.tx);
               })
      | _ -> ()
    end;
    (* process locally, then forward to our peers (flood with dedup) *)
    (match msg with
    | Message.Envelope env ->
        Stellar_herder.Herder.receive_envelope t.herder env;
        maybe_help_straggler t ~src env
    | Message.Tx_set_msg ts -> Stellar_herder.Herder.receive_tx_set t.herder ts
    | Message.Tx_msg signed -> ignore (Stellar_herder.Herder.receive_tx t.herder signed));
    flood t ~except:src msg
  end
  else if Obs.Sink.enabled t.obs then begin
    let bytes = Message.size msg in
    Obs.Sink.incr t.obs "flood.dup_dropped";
    Obs.Sink.add t.obs "flood.dup_bytes" bytes;
    Obs.Sink.emit t.obs (Obs.Event.Dedup_drop { kind = Message.kind_name msg; src; bytes })
  end

let create ~network ~index ~peers ~config ~genesis ?buckets ?headers
    ?(on_ledger_closed = fun _ -> ()) ?(on_timeout = fun ~kind:_ -> ())
    ?(obs = Obs.Sink.null) () =
  let engine = Stellar_sim.Network.engine network in
  let rec t =
    lazy
      (let cb =
         Stellar_herder.Herder.
           {
             broadcast_envelope =
               (fun env ->
                 let v = Lazy.force t in
                 v.own_envelopes <- v.own_envelopes + 1;
                 Obs.Sink.incr v.obs "flood.own_envelopes";
                 flood v ~force:true (Message.Envelope env));
             broadcast_tx_set = (fun ts -> flood (Lazy.force t) (Message.Tx_set_msg ts));
             broadcast_tx =
               (fun signed ->
                 let v = Lazy.force t in
                 if Obs.Sink.enabled v.obs then
                   Obs.Sink.emit v.obs
                     (Obs.Event.Tx_flooded
                        {
                          tx =
                            Stellar_crypto.Hex.encode
                              (Stellar_ledger.Tx.hash signed.Stellar_ledger.Tx.tx);
                        });
                 flood v (Message.Tx_msg signed));
             schedule =
               (fun ~delay f ->
                 let timer = Stellar_sim.Engine.schedule engine ~delay f in
                 fun () -> Stellar_sim.Engine.cancel timer);
             now = (fun () -> Stellar_sim.Engine.now engine);
             on_ledger_closed =
               (fun stats ->
                 let v = Lazy.force t in
                 prune_helped v ~upto:stats.Stellar_herder.Herder.seq;
                 on_ledger_closed stats);
             on_timeout;
           }
       in
       {
         network;
         index;
         peers;
         herder = Stellar_herder.Herder.create config cb ~genesis ?buckets ?headers ~obs ();
         obs;
         seen = Hashtbl.create 1024;
         helped = Hashtbl.create 64;
         floods_seen = 0;
         floods_forwarded = 0;
         own_envelopes = 0;
       })
  in
  let t = Lazy.force t in
  Stellar_sim.Network.set_handler network index (fun ~src ~info msg -> handle t ~src ~info msg);
  t

let start t = Stellar_herder.Herder.start t.herder
let stop t = Stellar_herder.Herder.stop t.herder

let submit_tx t signed =
  match Stellar_herder.Herder.submit_tx t.herder signed with `Queued | `Duplicate -> ()
