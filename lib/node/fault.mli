(** Declarative fault schedules for {!Scenario} runs: crash/restart a
    validator, split the network into groups that later heal, open a
    transient message-loss window, or turn a node into a Byzantine
    re-flooder.  The schedule is plain data; {!Scenario.run} interprets it
    by scheduling engine events, so two runs with the same seed and schedule
    are byte-identical. *)

type event =
  | Crash of { node : int; at : float }  (** take [node] down at time [at] *)
  | Restart of { node : int; at : float }
      (** bring a crashed [node] back up; it catches up from the scenario
          archive and rejoins consensus *)
  | Partition of { at : float; groups : (int * int) list }
      (** split the network: [(node, group)] for every node; messages
          between different groups are dropped *)
  | Heal of { at : float }  (** drop all partition groups *)
  | Loss of { rate : float; from_ : float; until_ : float }
      (** independent per-message drop probability [rate] during the window *)
  | Reflood of { node : int; at : float; copies : int }
      (** [node] re-broadcasts its latest envelopes [copies] times,
          bypassing its own dedup (a chatty-but-not-equivocating Byzantine
          peer) *)

type schedule = event list

val validate : n_nodes:int -> schedule -> (unit, string) result
(** Reject malformed schedules: node indices out of range, negative times,
    loss rates outside [0,1], empty loss windows, partition assignments that
    do not cover every node exactly once, non-positive reflood copies, and
    crash/restart sequences that do not alternate per node in time order
    (restart without a prior crash, double crash). *)
