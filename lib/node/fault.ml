type event =
  | Crash of { node : int; at : float }
  | Restart of { node : int; at : float }
  | Partition of { at : float; groups : (int * int) list }
  | Heal of { at : float }
  | Loss of { rate : float; from_ : float; until_ : float }
  | Reflood of { node : int; at : float; copies : int }

type schedule = event list

let time_of = function
  | Crash { at; _ } | Restart { at; _ } | Partition { at; _ } | Heal { at }
  | Reflood { at; _ } ->
      at
  | Loss { from_; _ } -> from_

let validate ~n_nodes schedule =
  let in_range node = node >= 0 && node < n_nodes in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  (* structural checks per event *)
  let rec check_events = function
    | [] -> Ok ()
    | Crash { node; at } :: rest ->
        if not (in_range node) then err "crash: node %d out of range" node
        else if at < 0.0 then err "crash: negative time %g" at
        else check_events rest
    | Restart { node; at } :: rest ->
        if not (in_range node) then err "restart: node %d out of range" node
        else if at < 0.0 then err "restart: negative time %g" at
        else check_events rest
    | Partition { at; groups } :: rest ->
        if at < 0.0 then err "partition: negative time %g" at
        else if List.length groups <> n_nodes then
          err "partition: %d group assignments for %d nodes" (List.length groups) n_nodes
        else if List.exists (fun (node, _) -> not (in_range node)) groups then
          err "partition: node out of range"
        else if
          List.sort_uniq compare (List.map fst groups) |> List.length <> n_nodes
        then err "partition: duplicate node in group assignment"
        else check_events rest
    | Heal { at } :: rest ->
        if at < 0.0 then err "heal: negative time %g" at else check_events rest
    | Loss { rate; from_; until_ } :: rest ->
        if rate < 0.0 || rate > 1.0 then err "loss: rate %g outside [0,1]" rate
        else if from_ < 0.0 then err "loss: negative start %g" from_
        else if until_ <= from_ then err "loss: empty window [%g,%g]" from_ until_
        else check_events rest
    | Reflood { node; at; copies } :: rest ->
        if not (in_range node) then err "reflood: node %d out of range" node
        else if at < 0.0 then err "reflood: negative time %g" at
        else if copies <= 0 then err "reflood: copies must be positive"
        else check_events rest
  in
  (* per-node crash/restart alternation, in time order: a restart must follow
     a crash of the same node, and a crashed node must not crash again *)
  let check_alternation () =
    let down = Array.make n_nodes false in
    let ordered =
      List.stable_sort (fun a b -> compare (time_of a) (time_of b)) schedule
    in
    let rec go = function
      | [] -> Ok ()
      | Crash { node; at } :: rest ->
          if down.(node) then err "crash: node %d already down at %g" node at
          else begin
            down.(node) <- true;
            go rest
          end
      | Restart { node; at } :: rest ->
          if not down.(node) then err "restart: node %d not down at %g" node at
          else begin
            down.(node) <- false;
            go rest
          end
      | _ :: rest -> go rest
    in
    go ordered
  in
  match check_events schedule with Ok () -> check_alternation () | Error _ as e -> e
