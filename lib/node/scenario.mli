(** End-to-end simulation scenarios: the testbed behind every figure in §7.

    A scenario builds a genesis ledger with N accounts, boots a topology of
    validators over the simulated network, generates Poisson payment load at
    a target rate (the [generateload] analogue), runs the virtual clock, and
    collects the same measurements the paper reports: nomination, balloting
    and ledger-update latency, transactions per ledger, close rate, SCP
    message counts and bandwidth. *)

type params = {
  spec : Topology.spec;
  n_accounts : int;
  tx_rate : float;  (** payments per second *)
  duration : float;  (** seconds of virtual time under load *)
  latency : Stellar_sim.Latency.t;
  processing : int -> float;
      (** receiver-side per-message CPU cost; default models envelope
          verification (~100us) plus 1 Gbps deserialization *)
  seed : int;
  ledger_interval : float;
  max_ops_per_ledger : int;
  warmup_ledgers : int;  (** ledgers excluded from the stats *)
  observe : bool;
      (** collect a structured trace and per-node metric registries
          ({!report.telemetry}); default off — instrumentation then costs
          one branch per site *)
  trace_capacity : int option;
      (** bound the shared trace to this many events; once full, further
          events are dropped and counted under [obs.trace.dropped].
          Default unbounded *)
  faults : Fault.schedule;
      (** fault events to inject during the run (default none).  When
          non-empty, the scenario keeps a history archive fed from node 0's
          closes so restarted validators can bootstrap from a checkpoint
          (§5.4); invalid schedules (see {!Fault.validate}) make {!run}
          fail fast *)
}

val default : spec:Topology.spec -> params

type report = {
  ledgers_closed : int;
  nomination : Metrics.summary;
  balloting : Metrics.summary;
  apply : Metrics.summary;
  total : Metrics.summary;
  close_interval : Metrics.summary;  (** time between consecutive closes *)
  txs_per_ledger : Metrics.summary;
  txs_submitted : int;
  txs_applied : int;
  nomination_timeouts_per_ledger : Metrics.summary;
  ballot_timeouts_per_ledger : Metrics.summary;
  envelopes_per_ledger : float;  (** logical SCP envelopes emitted per ledger *)
  msgs_per_second_per_node : float;
  bytes_in_total : int;  (** XDR bytes received by node 0 over the run *)
  bytes_out_total : int;
  bytes_in_per_second : float;  (** observed at node 0 *)
  bytes_out_per_second : float;
  diverged : bool;  (** any two validators on different header chains *)
  chains : (int * string list) list;
      (** per-validator header chains, oldest first, as hex hashes *)
  converged : bool;
      (** all validators still up at the end closed ledgers, are within one
          close of each other, and agree on the common chain prefix — the
          post-fault recovery criterion *)
  wall_seconds : float;  (** real time the simulation took *)
  final_ledger_seq : int;
  telemetry : Stellar_obs.Collector.t option;
      (** the run's trace + registries when [observe] was set *)
}

val run : params -> report

val pp_report : Format.formatter -> report -> unit
