(** A full validator on the simulated overlay: a {!Stellar_herder.Herder}
    wired to peers through flood-with-dedup gossip (Fig. 5's stellar-core
    box, minus the SQL database). *)

type t

val create :
  network:Message.t Stellar_sim.Network.t ->
  index:int ->
  peers:int list ->
  config:Stellar_herder.Herder.config ->
  genesis:Stellar_ledger.State.t ->
  ?buckets:Stellar_bucket.Bucket_list.t ->
  ?headers:Stellar_ledger.Header.t list ->
  ?on_ledger_closed:(Stellar_herder.Herder.ledger_stats -> unit) ->
  ?on_timeout:(kind:[ `Nomination | `Ballot ] -> unit) ->
  ?obs:Stellar_obs.Sink.t ->
  unit ->
  t
(** [obs] (default disabled) instruments the flood path — [Flood_send],
    [Flood_recv] and [Dedup_drop] events plus [flood.*] counters — and is
    passed down to the herder/SCP/ledger stack. *)

val index : t -> int
val herder : t -> Stellar_herder.Herder.t
val node_id : t -> Scp.Types.node_id
val start : t -> unit
val stop : t -> unit

val submit_tx : t -> Stellar_ledger.Tx.signed -> unit
(** Client-facing submission (what horizon forwards, Fig. 5). *)

val floods_seen : t -> int
val floods_forwarded : t -> int

val own_envelopes : t -> int
(** SCP envelopes this validator itself emitted (the paper's 6-7 logical
    messages per ledger, §7.2). *)

val helped_size : t -> int
(** Entries in the (peer, slot) straggler-reply memo table.  The table is
    pruned whenever a ledger closes (memos for externalized slots are
    dropped), so it stays bounded over long simulations; its size is also
    exported as the [validator.helped.size] gauge. *)

val seen_size : t -> int
(** Entries in the flood dedup table.  Each entry carries an expiry slot
    (an envelope's statement slot plus a small margin; a fixed horizon for
    transactions and tx sets) and is dropped when a ledger at or past that
    slot closes, so the table stays bounded over long simulations; its size
    is exported as the [validator.seen.size] gauge. *)

(** {2 Fault injection}

    A crash/restart models losing the whole process: the herder (and all its
    SCP timers) is abandoned, the dedup and straggler-memo tables are lost,
    and the network marks the node down.  Restart rebuilds a fresh herder —
    from the archive's latest checkpoint plus replay when an [archive] is
    supplied (§5.4), from genesis otherwise — and rejoins consensus, closing
    any remaining gap live through the §6 straggler-help protocol.  An
    internal generation counter keeps timers and broadcasts created before
    the fault from acting on the new incarnation. *)

val crash : t -> unit
(** Stop the herder, mark the node down, emit [Node_crash].  Idempotent. *)

val restart : ?archive:Stellar_archive.Archive.t -> t -> unit
(** Bring a crashed node back: emits [Node_restart], [Catchup_begin] (with
    the checkpoint seq, 0 when restarting from genesis) and [Catchup_done]
    (archive tip and replayed-ledger count), then starts the rebuilt herder.
    No-op if the node is not crashed. *)

val is_crashed : t -> bool

val reflood : t -> copies:int -> unit
(** Byzantine-style fault: re-broadcast this node's latest envelopes
    [copies] times, bypassing its own dedup table.  Peers' dedup tables
    absorb every copy after the first; counted as [fault.refloods]. *)
