(** The trace event taxonomy: everything the experiments of §7 need to
    observe about a running validator, as typed constructors rather than log
    strings.  Events are stamped with simulated time and node id by
    {!Trace.record} (via {!Sink.emit}); the payload here is only the
    protocol-level fact.

    Two event families carry causal identity:

    - Flood events: every {!Flood_send} carries a globally monotone
      [msg_id]; the {!Flood_recv} it produces at the destination records
      that id as [send_id] plus the delivery's latency decomposition
      (link transit, receiver CPU-queue wait, modeled processing cost).
      Together they turn the trace into a cross-node causal DAG that
      {!Report.critical_paths} walks.
    - Transaction lifecycle events ([Tx_submit] → [Tx_flooded] →
      [Tx_in_txset] → [Tx_externalized] → [Tx_applied], or [Tx_dropped]),
      keyed by the lowercase-hex transaction hash, from which
      {!Report.tx_lives} and {!Report.e2e_latency} derive per-payment
      submit→apply latency (§7.3's end-to-end figure). *)

type timeout_kind = [ `Nomination | `Ballot ]

type drop_reason = [ `Duplicate | `Stale ]
(** Why a queued transaction was discarded: resubmitted while already
    pending, or its sequence number can no longer apply. *)

type t =
  | Nominate_start of { slot : int }  (** herder triggered nomination *)
  | Nomination_round of { slot : int; round : int }
  | First_vote of { slot : int; counter : int }
      (** first ballot vote for the slot: the nomination → balloting
          boundary used by the Fig.-style phase breakdown *)
  | Ballot_bump of { slot : int; counter : int }
  | Confirm_prepare of { slot : int }  (** ballot protocol entered confirm *)
  | Externalize of { slot : int }
  | Timeout_fired of { slot : int; kind : timeout_kind }
  | Flood_send of { kind : string; bytes : int; fanout : int; msg_id : int }
      (** one flood decision: [fanout] peer copies of a [bytes]-sized msg,
          all tagged with the same monotone [msg_id] *)
  | Flood_recv of {
      kind : string;
      bytes : int;
      src : int;
      send_id : int;  (** [msg_id] of the {!Flood_send} that produced this *)
      link_s : float;  (** sampled link transit *)
      wait_s : float;  (** receiver CPU-queue wait before processing *)
      proc_s : float;  (** modeled per-message processing cost *)
    }  (** first delivery of a payload to this node *)
  | Dedup_drop of { kind : string; src : int; bytes : int }
      (** duplicate delivery suppressed by the flood dedup table; [bytes]
          is the wasted payload size (it still crossed the wire) *)
  | Apply_begin of { slot : int; txs : int; ops : int }
  | Apply_end of { slot : int; txs : int; ops : int }
  | Bucket_merge of { level : int; entries : int }
      (** a bucket-list level absorbed a batch/spill of [entries] entries *)
  | Span_begin of { name : string; slot : int }
  | Span_end of { name : string; slot : int; dur_s : float }
  | Tx_submit of { tx : string }  (** client submitted at this node *)
  | Tx_flooded of { tx : string }
      (** this node first saw the transaction and flooded it onward *)
  | Tx_in_txset of { tx : string; slot : int }
      (** included in this node's nominated tx-set candidate for [slot] *)
  | Tx_externalized of { tx : string; slot : int }
      (** the slot whose externalized tx set contains the tx closed here *)
  | Tx_applied of { tx : string; slot : int; ok : bool }
      (** applied to the ledger ([ok] = success outcome) *)
  | Tx_dropped of { tx : string; reason : drop_reason }
  | Node_crash  (** validator went down (fault injection); node id from stamp *)
  | Node_restart  (** validator came back up and began catching up *)
  | Partition_begin of { groups : int list }
      (** network split; [groups] is the partition-group id of each node *)
  | Partition_heal  (** all partition groups rejoined *)
  | Catchup_begin of { from_seq : int }
      (** restart bootstrap: rebuilding state from the checkpoint at
          [from_seq] (0 = no archive, restarting from genesis) *)
  | Catchup_done of { to_seq : int; replayed : int }
      (** archive replay finished at [to_seq] after re-applying [replayed]
          ledgers; slots beyond this are recovered live via straggler help *)

val name : t -> string
(** Stable dotted event name ("flood.send", "tx.applied", ...). *)

val timeout_kind_name : timeout_kind -> string
val drop_reason_name : drop_reason -> string

val fields : t -> string
(** Payload as a comma-prefixed JSON fragment; deterministic formatting. *)
