(** The trace event taxonomy: everything the experiments of §7 need to
    observe about a running validator, as typed constructors rather than log
    strings.  Events are stamped with simulated time and node id by
    {!Trace.record} (via {!Sink.emit}); the payload here is only the
    protocol-level fact. *)

type timeout_kind = [ `Nomination | `Ballot ]

type t =
  | Nominate_start of { slot : int }  (** herder triggered nomination *)
  | Nomination_round of { slot : int; round : int }
  | First_vote of { slot : int; counter : int }
      (** first ballot vote for the slot: the nomination → balloting
          boundary used by the Fig.-style phase breakdown *)
  | Ballot_bump of { slot : int; counter : int }
  | Confirm_prepare of { slot : int }  (** ballot protocol entered confirm *)
  | Externalize of { slot : int }
  | Timeout_fired of { slot : int; kind : timeout_kind }
  | Flood_send of { kind : string; bytes : int; fanout : int }
      (** one flood decision: [fanout] peer copies of a [bytes]-sized msg *)
  | Flood_recv of { kind : string; bytes : int; src : int }
      (** first delivery of a payload to this node *)
  | Dedup_drop of { kind : string; src : int }
      (** duplicate delivery suppressed by the flood dedup table *)
  | Apply_begin of { slot : int; txs : int; ops : int }
  | Apply_end of { slot : int; txs : int; ops : int }
  | Bucket_merge of { level : int; entries : int }
      (** a bucket-list level absorbed a batch/spill of [entries] entries *)
  | Span_begin of { name : string; slot : int }
  | Span_end of { name : string; slot : int; dur_s : float }

val name : t -> string
(** Stable dotted event name ("flood.send", "phase.externalize", ...). *)

val timeout_kind_name : timeout_kind -> string

val fields : t -> string
(** Payload as a comma-prefixed JSON fragment; deterministic formatting. *)
