(** Structured trace: an append-only sequence of typed {!Event.t}s stamped
    with simulated time, node id and a global sequence number.

    Because the simulator is deterministic, two runs with the same seed
    produce byte-identical {!to_jsonl} output — the property the
    reproducibility tests and [BENCH_*.json] artifacts rely on.

    A trace may be created with a [capacity]: once full, further events are
    counted in {!dropped} instead of retained, so a long simulator run
    cannot grow the trace without bound.  {!Sink.emit} surfaces drops as
    the [obs.trace.dropped] counter in the emitting node's registry. *)

type stamped = { seq : int; time : float; node : int; event : Event.t }

type t

val create : ?capacity:int -> unit -> t
(** Without [capacity] the trace is unbounded (the default). *)

val record : t -> time:float -> node:int -> Event.t -> unit

val try_record : t -> time:float -> node:int -> Event.t -> bool
(** [false] when the event was discarded because the trace is at capacity. *)

val length : t -> int
(** Events retained (excludes dropped ones). *)

val dropped : t -> int
(** Events discarded because the trace was at capacity. *)

val events : t -> stamped list
(** In record order (chronological: the engine fires events in time order). *)

val iter : t -> (stamped -> unit) -> unit

val to_jsonl : t -> string
(** One JSON object per line: [{"seq":..,"t":..,"node":..,"ev":"...",...}]. *)

val output_jsonl : out_channel -> t -> unit
