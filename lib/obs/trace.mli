(** Structured trace: an append-only sequence of typed {!Event.t}s stamped
    with simulated time, node id and a global sequence number.

    Because the simulator is deterministic, two runs with the same seed
    produce byte-identical {!to_jsonl} output — the property the
    reproducibility tests and [BENCH_phases.json] rely on. *)

type stamped = { seq : int; time : float; node : int; event : Event.t }

type t

val create : unit -> t

val record : t -> time:float -> node:int -> Event.t -> unit

val length : t -> int

val events : t -> stamped list
(** In record order (chronological: the engine fires events in time order). *)

val iter : t -> (stamped -> unit) -> unit

val to_jsonl : t -> string
(** One JSON object per line: [{"seq":..,"t":..,"node":..,"ev":"...",...}]. *)

val output_jsonl : out_channel -> t -> unit
