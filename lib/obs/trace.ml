type stamped = { seq : int; time : float; node : int; event : Event.t }

type t = {
  mutable rev_events : stamped list;
  mutable n : int;
  capacity : int option;
  mutable dropped : int;
}

let create ?capacity () = { rev_events = []; n = 0; capacity; dropped = 0 }

let try_record t ~time ~node event =
  match t.capacity with
  | Some cap when t.n >= cap ->
      t.dropped <- t.dropped + 1;
      false
  | _ ->
      t.rev_events <- { seq = t.n; time; node; event } :: t.rev_events;
      t.n <- t.n + 1;
      true

let record t ~time ~node event = ignore (try_record t ~time ~node event)

let length t = t.n
let dropped t = t.dropped
let events t = List.rev t.rev_events
let iter t f = List.iter f (events t)

let line s =
  Printf.sprintf {|{"seq":%d,"t":%.6f,"node":%d,"ev":"%s"%s}|} s.seq s.time s.node
    (Event.name s.event) (Event.fields s.event)

let to_jsonl t =
  let buf = Buffer.create (t.n * 64) in
  iter t (fun s ->
      Buffer.add_string buf (line s);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let output_jsonl oc t =
  iter t (fun s ->
      output_string oc (line s);
      output_char oc '\n')
