type stamped = { seq : int; time : float; node : int; event : Event.t }

type t = { mutable rev_events : stamped list; mutable n : int }

let create () = { rev_events = []; n = 0 }

let record t ~time ~node event =
  t.rev_events <- { seq = t.n; time; node; event } :: t.rev_events;
  t.n <- t.n + 1

let length t = t.n
let events t = List.rev t.rev_events
let iter t f = List.iter f (events t)

let line s =
  Printf.sprintf {|{"seq":%d,"t":%.6f,"node":%d,"ev":"%s"%s}|} s.seq s.time s.node
    (Event.name s.event) (Event.fields s.event)

let to_jsonl t =
  let buf = Buffer.create (t.n * 64) in
  iter t (fun s ->
      Buffer.add_string buf (line s);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let output_jsonl oc t =
  iter t (fun s ->
      output_string oc (line s);
      output_char oc '\n')
