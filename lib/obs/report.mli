(** Turn a {!Trace.t} into the paper's evaluation artifacts: the per-slot
    ledger-close phase breakdown (nomination vs. balloting vs. apply, §7.3)
    and per-node flood amplification (§7.2).

    Everything here is derived from simulated-time stamps and event payloads
    only, so reports are deterministic for a fixed simulation seed. *)

type phases = {
  slot : int;
  nomination_s : float;  (** nominate-start → first ballot vote *)
  ballot_s : float;  (** first ballot vote → externalize *)
  apply_s : float;  (** modeled apply cost (see {!default_apply_cost}) *)
  total_s : float;
}

val default_apply_cost : txs:int -> ops:int -> float
(** Deterministic apply-cost model (~0.2 ms + 20 µs/op) used in place of
    measured CPU time so the breakdown is reproducible; real CPU time is
    reported separately through the "ledger.apply_ms" histogram. *)

val slot_phases :
  ?node:int -> ?apply_cost:(txs:int -> ops:int -> float) -> Trace.t -> phases list
(** Phase durations for every slot [node] (default 0) both nominated and
    externalized, sorted by slot. *)

val percentile : float list -> float -> float
(** Exact nearest-rank percentile (same convention as
    [Stellar_node.Metrics.percentile]). *)

type quantiles = { n : int; mean : float; p50 : float; p99 : float; max : float }

val quantiles : float list -> quantiles

type breakdown = {
  n_slots : int;
  nomination : quantiles;
  ballot : quantiles;
  apply : quantiles;
  total : quantiles;
}

val breakdown :
  ?node:int -> ?apply_cost:(txs:int -> ops:int -> float) -> Trace.t -> breakdown

type flood = {
  sent_copies : int;  (** per-peer copies pushed (sum of flood fanouts) *)
  received : int;  (** distinct payloads delivered *)
  dup_dropped : int;  (** duplicate deliveries suppressed *)
  dup_bytes : int;  (** wasted bandwidth: payload bytes of suppressed dups *)
  amplification : float;  (** (received + dup_dropped) / received *)
}

val flood_stats : Trace.t -> (int * flood) list
(** Per node id, sorted. *)

(** {2 Causal critical path}

    Every [Flood_send] carries a globally monotone message id and every
    [Flood_recv] names the send that produced it, so the trace forms a
    cross-node causal DAG.  [critical_paths] walks that DAG backwards from
    each externalize event to nomination start, attributing every interval
    of the slot's duration to exactly one of network transit, local timer
    wait, or modeled CPU (receive-queue wait + processing).  All segment
    endpoints are shared event timestamps, so
    [network_s + timer_s + cpu_s = cp_total_s] up to float rounding
    (well within 1 µs of simulated time). *)

type hop = {
  msg_id : int;
  hop_src : int;
  hop_dst : int;
  hop_kind : string;  (** message kind (envelope/txset/tx) *)
  sent_at : float;
  recv_at : float;
  hop_network_s : float;  (** wire transit portion of this hop *)
  hop_cpu_s : float;  (** receiver queue wait + modeled processing *)
}

type critical_path = {
  cp_slot : int;
  cp_node : int;  (** the observing node the walk starts from *)
  t_start : float;  (** nominate-start on [cp_node] *)
  t_externalize : float;
  hops : hop list;  (** causally ordered, earliest first *)
  network_s : float;
  timer_s : float;
  cpu_s : float;
  cp_total_s : float;  (** [t_externalize - t_start] *)
}

val critical_paths : ?node:int -> Trace.t -> critical_path list
(** One path per slot [node] (default 0) both nominated and externalized,
    sorted by slot. *)

(** {2 Transaction lifecycle} *)

type tx_life = {
  tx : string;  (** hex tx hash *)
  submitted : float option;  (** first [Tx_submit] *)
  first_flood : float option;  (** first [Tx_flooded] anywhere *)
  txset_slot : int option;  (** first slot whose candidate set held it *)
  externalized : (int * float) option;  (** (slot, time) of consensus *)
  applied : float option;
  dropped : bool;  (** any [Tx_dropped] (duplicate or stale) *)
}

val tx_lives : Trace.t -> tx_life list
(** One record per tx hash, in first-appearance order. *)

type e2e = {
  n_submitted : int;
  n_externalized : int;
  n_applied : int;
  n_dropped : int;
  submit_to_externalize : quantiles;
  submit_to_apply : quantiles;
      (** adds the slot's modeled apply cost on top of the trace timestamp
          (sim-time application is instantaneous) *)
}

val e2e_latency : ?apply_cost:(txs:int -> ops:int -> float) -> Trace.t -> e2e
(** End-to-end payment latency quantiles over all submitted transactions —
    the §7.3 "five seconds from submission" figure. *)

val spans : Trace.t -> (int * string * int * float * float) list
(** Paired [Span_begin]/[Span_end] as (node, name, slot, t0, t1), in
    completion order; nested same-key spans pair LIFO. *)

(** {2 Fault recovery}

    Derived from the fault-injection events ([Node_crash] / [Node_restart] /
    [Catchup_begin] / [Catchup_done] / [Partition_begin] / [Partition_heal])
    plus externalize timestamps.  A node counts as "back in sync" at its
    first externalize that lands within [interval/2] of the fastest other
    node for the same slot: catchup replays and straggler-helped old slots
    close long after the network did and fail that test, while the first
    live slot closes with the crowd. *)

type recovery = {
  rec_node : int;
  t_crash : float;
  t_restart : float;  (** [nan] if the node never restarted *)
  catchup_from : int;  (** checkpoint seq the restart bootstrapped from *)
  catchup_to : int;  (** archive tip reached by replay *)
  replayed : int;
  t_resync : float option;  (** first in-sync externalize after restart *)
  recover_s : float option;  (** [t_resync - t_restart] *)
}

val recoveries : ?interval:float -> Trace.t -> recovery list
(** One record per crash, pairing the i-th crash of a node with its i-th
    restart; [interval] (default 5 s) is the ledger-close interval used by
    the in-sync test. *)

type heal_report = {
  t_split : float;
  t_heal : float;
  lagged : (int * float option) list;
      (** minority-side nodes and their post-heal resync delay *)
  heal_recover_s : float option;
      (** slowest lagged node's resync delay; [None] if any never resynced *)
}

val heals : ?interval:float -> Trace.t -> heal_report list
(** One record per [Partition_begin]/[Partition_heal] pair, in order. *)

(** JSON fragments with deterministic formatting (durations in ms). *)

val quantiles_json : quantiles -> string
val breakdown_json : breakdown -> string
val phases_json : phases list -> string
val flood_json : (int * flood) list -> string
val critical_paths_json : critical_path list -> string
val e2e_json : e2e -> string

val recoveries_json : recovery list -> string
(** Sorted by (node, t_crash); absent times render as [null]. *)

val heals_json : heal_report list -> string
