(** Turn a {!Trace.t} into the paper's evaluation artifacts: the per-slot
    ledger-close phase breakdown (nomination vs. balloting vs. apply, §7.3)
    and per-node flood amplification (§7.2).

    Everything here is derived from simulated-time stamps and event payloads
    only, so reports are deterministic for a fixed simulation seed. *)

type phases = {
  slot : int;
  nomination_s : float;  (** nominate-start → first ballot vote *)
  ballot_s : float;  (** first ballot vote → externalize *)
  apply_s : float;  (** modeled apply cost (see {!default_apply_cost}) *)
  total_s : float;
}

val default_apply_cost : txs:int -> ops:int -> float
(** Deterministic apply-cost model (~0.2 ms + 20 µs/op) used in place of
    measured CPU time so the breakdown is reproducible; real CPU time is
    reported separately through the "ledger.apply_ms" histogram. *)

val slot_phases :
  ?node:int -> ?apply_cost:(txs:int -> ops:int -> float) -> Trace.t -> phases list
(** Phase durations for every slot [node] (default 0) both nominated and
    externalized, sorted by slot. *)

val percentile : float list -> float -> float
(** Exact nearest-rank percentile (same convention as
    [Stellar_node.Metrics.percentile]). *)

type quantiles = { n : int; mean : float; p50 : float; p99 : float; max : float }

val quantiles : float list -> quantiles

type breakdown = {
  n_slots : int;
  nomination : quantiles;
  ballot : quantiles;
  apply : quantiles;
  total : quantiles;
}

val breakdown :
  ?node:int -> ?apply_cost:(txs:int -> ops:int -> float) -> Trace.t -> breakdown

type flood = {
  sent_copies : int;  (** per-peer copies pushed (sum of flood fanouts) *)
  received : int;  (** distinct payloads delivered *)
  dup_dropped : int;  (** duplicate deliveries suppressed *)
  amplification : float;  (** (received + dup_dropped) / received *)
}

val flood_stats : Trace.t -> (int * flood) list
(** Per node id, sorted. *)

val spans : Trace.t -> (int * string * int * float * float) list
(** Paired [Span_begin]/[Span_end] as (node, name, slot, t0, t1), in
    completion order; nested same-key spans pair LIFO. *)

(** JSON fragments with deterministic formatting (durations in ms). *)

val quantiles_json : quantiles -> string
val breakdown_json : breakdown -> string
val phases_json : phases list -> string
val flood_json : (int * flood) list -> string
