(** One observed run: a shared trace, one registry per node, and a separate
    registry for the simulation engine itself.  Hand [sink t i] to node [i]'s
    validator/network slot and {!sim_sink} to the engine. *)

type t

val create : ?trace_capacity:int -> n:int -> now:(unit -> float) -> unit -> t
(** [now] is the simulated clock (e.g. [fun () -> Engine.now engine]).
    [trace_capacity] bounds the shared trace (see {!Trace.create}); events
    past the bound are dropped and counted per node as
    [obs.trace.dropped]. *)

val trace : t -> Trace.t
val n_nodes : t -> int

val sink : t -> int -> Sink.t

val sim_sink : t -> Sink.t
(** Sink for run-level instrumentation (the engine's counters, and
    fault-injection events that belong to no single node); it shares the
    run's trace and stamps events with node id -1. *)

val registry : t -> int -> Registry.t
val sim_registry : t -> Registry.t

val aggregate : t -> Registry.t
(** All node registries plus the sim registry merged into one. *)
