(** The instrumentation hook handed to every subsystem.

    A sink binds a node id and a (simulated-)time source to a metric
    {!Registry.t} and an optional shared {!Trace.t}.  The {!null} sink is
    disabled: every operation is a single boolean test and no allocation, so
    instrumented code costs nothing when observability is off.  Call sites
    that build event payloads should still guard with {!enabled} to avoid
    constructing the payload at all. *)

type t

val null : t
(** Disabled sink: all operations are no-ops. *)

val make : ?trace:Trace.t -> node:int -> now:(unit -> float) -> Registry.t -> t
(** An enabled sink.  Without [trace], metrics are recorded but no events
    (the mode the network uses for its always-on byte accounting). *)

val enabled : t -> bool
val node : t -> int
val metrics : t -> Registry.t
val now : t -> float

val emit : t -> Event.t -> unit
(** Stamp with node and current time, append to the trace (if any).  When
    the trace is at capacity the event is discarded and the node's
    [obs.trace.dropped] counter incremented instead. *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val set_gauge : t -> string -> float -> unit
val observe : t -> string -> float -> unit

(** {2 Spans} — phase durations in simulated time.  Spans may nest freely;
    each emits [Span_begin]/[Span_end] events and feeds a histogram named
    after the span. *)

type span

val span_begin : t -> name:string -> slot:int -> span
val span_end : span -> unit
val with_span : t -> name:string -> slot:int -> (unit -> 'a) -> 'a
