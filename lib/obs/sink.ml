type t = {
  enabled : bool;
  node : int;
  now : unit -> float;
  metrics : Registry.t;
  trace : Trace.t option;
}

let null =
  { enabled = false; node = -1; now = (fun () -> 0.0); metrics = Registry.create (); trace = None }

let make ?trace ~node ~now metrics = { enabled = true; node; now; metrics; trace }

let enabled t = t.enabled
let node t = t.node
let metrics t = t.metrics
let now t = t.now ()

let emit t ev =
  match t.trace with
  | Some tr when t.enabled ->
      if not (Trace.try_record tr ~time:(t.now ()) ~node:t.node ev) then
        (* cold path: only taken once the trace hit its capacity bound *)
        Registry.incr (Registry.counter t.metrics "obs.trace.dropped")
  | _ -> ()

let incr t name = if t.enabled then Registry.incr (Registry.counter t.metrics name)
let add t name k = if t.enabled then Registry.add (Registry.counter t.metrics name) k
let set_gauge t name v = if t.enabled then Registry.set (Registry.gauge t.metrics name) v
let observe t name v = if t.enabled then Registry.observe (Registry.histogram t.metrics name) v

type span = { sink : t; sname : string; slot : int; t0 : float }

let span_begin t ~name ~slot =
  if t.enabled then emit t (Event.Span_begin { name; slot });
  { sink = t; sname = name; slot; t0 = (if t.enabled then t.now () else 0.0) }

let span_end sp =
  if sp.sink.enabled then begin
    let dur_s = sp.sink.now () -. sp.t0 in
    emit sp.sink (Event.Span_end { name = sp.sname; slot = sp.slot; dur_s });
    observe sp.sink sp.sname dur_s
  end

let with_span t ~name ~slot f =
  if not t.enabled then f ()
  else begin
    let sp = span_begin t ~name ~slot in
    match f () with
    | v ->
        span_end sp;
        v
    | exception e ->
        span_end sp;
        raise e
  end
