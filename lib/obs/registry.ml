type counter = { mutable count : int }
type gauge = { mutable value : float }

type histogram = {
  bounds : float array;  (* sorted upper bounds; one overflow bucket after *)
  counts : int array;  (* length = Array.length bounds + 1 *)
  mutable n : int;
  mutable sum : float;
  mutable hmax : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = (string, metric) Hashtbl.t

let create () : t = Hashtbl.create 64

(* Default buckets for durations in seconds: 100 us .. 60 s, roughly
   1-2.5-5 per decade, matching the latency ranges of §7. *)
let default_bounds =
  [|
    0.0001; 0.00025; 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25;
    0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 60.0;
  |]

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let mismatch name want got =
  invalid_arg
    (Printf.sprintf "Registry: %s already registered as a %s, wanted a %s" name
       (kind_name got) want)

let counter t name =
  match Hashtbl.find_opt t name with
  | Some (Counter c) -> c
  | Some m -> mismatch name "counter" m
  | None ->
      let c = { count = 0 } in
      Hashtbl.add t name (Counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t name with
  | Some (Gauge g) -> g
  | Some m -> mismatch name "gauge" m
  | None ->
      let g = { value = 0.0 } in
      Hashtbl.add t name (Gauge g);
      g

let histogram ?(bounds = default_bounds) t name =
  match Hashtbl.find_opt t name with
  | Some (Histogram h) -> h
  | Some m -> mismatch name "histogram" m
  | None ->
      let h =
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          n = 0;
          sum = 0.0;
          hmax = 0.0;
        }
      in
      Hashtbl.add t name (Histogram h);
      h

let incr c = c.count <- c.count + 1
let add c k = c.count <- c.count + k
let set g v = g.value <- v

let observe h v =
  let nb = Array.length h.bounds in
  let rec bucket i = if i >= nb || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v > h.hmax then h.hmax <- v

(* Same rank convention as Stellar_node.Metrics.percentile (nearest-rank on
   index [q * (n-1)]): when every sample sits exactly on a bucket bound, the
   estimate equals the exact percentile. *)
let percentile_of h q =
  if h.n = 0 then 0.0
  else begin
    let rank = int_of_float (q *. float_of_int (h.n - 1)) + 1 in
    let rank = max 1 (min h.n rank) in
    let nb = Array.length h.bounds in
    let rec go i cum =
      if i >= nb then h.hmax
      else
        let cum = cum + h.counts.(i) in
        if cum >= rank then Float.min h.bounds.(i) h.hmax else go (i + 1) cum
    in
    go 0 0
  end

type summary = { count : int; sum : float; p50 : float; p75 : float; p99 : float; max : float }

let summarize h =
  {
    count = h.n;
    sum = h.sum;
    p50 = percentile_of h 0.50;
    p75 = percentile_of h 0.75;
    p99 = percentile_of h 0.99;
    max = h.hmax;
  }

let counter_value t name =
  match Hashtbl.find_opt t name with Some (Counter c) -> c.count | _ -> 0

let gauge_value t name =
  match Hashtbl.find_opt t name with Some (Gauge g) -> g.value | _ -> 0.0

let summary t name =
  match Hashtbl.find_opt t name with Some (Histogram h) -> Some (summarize h) | _ -> None

let names t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let merge_into ~dst src =
  Hashtbl.iter
    (fun name m ->
      match m with
      | Counter c -> add (counter dst name) c.count
      | Gauge g ->
          (* gauges aggregate by summation across nodes (e.g. total memo-table
             entries network-wide) *)
          let d = gauge dst name in
          d.value <- d.value +. g.value
      | Histogram h ->
          let d = histogram ~bounds:h.bounds dst name in
          if d.bounds <> h.bounds then
            invalid_arg ("Registry.merge_into: bucket bounds differ for " ^ name);
          Array.iteri (fun i c -> d.counts.(i) <- d.counts.(i) + c) h.counts;
          d.n <- d.n + h.n;
          d.sum <- d.sum +. h.sum;
          if h.hmax > d.hmax then d.hmax <- h.hmax)
    src

let merge regs =
  let dst = create () in
  List.iter (fun r -> merge_into ~dst r) regs;
  dst

let metric_json = function
  | Counter c -> string_of_int c.count
  | Gauge g -> Printf.sprintf "%.6f" g.value
  | Histogram h ->
      let s = summarize h in
      Printf.sprintf
        {|{"count":%d,"sum":%.6f,"p50":%.6f,"p75":%.6f,"p99":%.6f,"max":%.6f}|}
        s.count s.sum s.p50 s.p75 s.p99 s.max

let to_json t =
  let entries =
    List.map
      (fun name ->
        Printf.sprintf {|"%s":%s|} name (metric_json (Hashtbl.find t name)))
      (names t)
  in
  "{" ^ String.concat "," entries ^ "}"
