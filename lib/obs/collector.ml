type t = {
  trace : Trace.t;
  node_registries : Registry.t array;
  sim_registry : Registry.t;
  sinks : Sink.t array;
  sim_sink : Sink.t;
}

let create ?trace_capacity ~n ~now () =
  let trace = Trace.create ?capacity:trace_capacity () in
  let node_registries = Array.init n (fun _ -> Registry.create ()) in
  let sim_registry = Registry.create () in
  {
    trace;
    node_registries;
    sim_registry;
    sinks =
      Array.init n (fun node -> Sink.make ~trace ~node ~now node_registries.(node));
    (* the sim sink shares the trace so run-level events (partition begin/
       heal, loss windows) can be recorded with node id -1 *)
    sim_sink = Sink.make ~trace ~node:(-1) ~now sim_registry;
  }

let trace t = t.trace
let n_nodes t = Array.length t.sinks
let sink t i = t.sinks.(i)
let sim_sink t = t.sim_sink
let registry t i = t.node_registries.(i)
let sim_registry t = t.sim_registry

let aggregate t =
  Registry.merge (t.sim_registry :: Array.to_list t.node_registries)
