type phases = {
  slot : int;
  nomination_s : float;
  ballot_s : float;
  apply_s : float;
  total_s : float;
}

(* Deterministic model of tx-set application cost, used for the phase
   breakdown so that trace-derived reports are reproducible bit-for-bit
   (real CPU time is not).  Calibrated to the measured in-memory apply
   times: ~0.2 ms fixed + ~20 us per operation.  Real CPU time still flows
   into the "ledger.apply_ms" histogram via the herder. *)
let default_apply_cost ~txs:_ ~ops = 0.0002 +. (2.0e-5 *. float_of_int ops)

type slot_acc = {
  mutable t_nominate : float option;
  mutable t_first_vote : float option;
  mutable t_externalize : float option;
  mutable apply : (int * int) option;  (* txs, ops *)
}

let slot_phases ?(node = 0) ?(apply_cost = default_apply_cost) trace =
  let acc : (int, slot_acc) Hashtbl.t = Hashtbl.create 64 in
  let get slot =
    match Hashtbl.find_opt acc slot with
    | Some a -> a
    | None ->
        let a =
          { t_nominate = None; t_first_vote = None; t_externalize = None; apply = None }
        in
        Hashtbl.add acc slot a;
        a
  in
  Trace.iter trace (fun s ->
      if s.Trace.node = node then
        match s.Trace.event with
        | Event.Nominate_start { slot } ->
            let a = get slot in
            if a.t_nominate = None then a.t_nominate <- Some s.Trace.time
        | Event.First_vote { slot; _ } ->
            let a = get slot in
            if a.t_first_vote = None then a.t_first_vote <- Some s.Trace.time
        | Event.Externalize { slot } ->
            let a = get slot in
            if a.t_externalize = None then a.t_externalize <- Some s.Trace.time
        | Event.Apply_begin { slot; txs; ops } ->
            let a = get slot in
            if a.apply = None then a.apply <- Some (txs, ops)
        | _ -> ());
  Hashtbl.fold (fun slot a l -> (slot, a) :: l) acc []
  |> List.filter_map (fun (slot, a) ->
         match (a.t_nominate, a.t_externalize) with
         | Some t0, Some t2 ->
             let t1 = Option.value ~default:t2 a.t_first_vote in
             let txs, ops = Option.value ~default:(0, 0) a.apply in
             let apply_s = apply_cost ~txs ~ops in
             Some
               {
                 slot;
                 nomination_s = Float.max 0.0 (t1 -. t0);
                 ballot_s = Float.max 0.0 (t2 -. t1);
                 apply_s;
                 total_s = Float.max 0.0 (t2 -. t0) +. apply_s;
               }
         | _ -> None)
  |> List.sort (fun a b -> Int.compare a.slot b.slot)

(* Exact nearest-rank percentile, same convention as
   [Stellar_node.Metrics.percentile]. *)
let percentile values q =
  match values with
  | [] -> 0.0
  | _ ->
      let arr = Array.of_list values in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let idx = int_of_float (q *. float_of_int (n - 1)) in
      arr.(max 0 (min (n - 1) idx))

type quantiles = { n : int; mean : float; p50 : float; p99 : float; max : float }

let quantiles values =
  match values with
  | [] -> { n = 0; mean = 0.0; p50 = 0.0; p99 = 0.0; max = 0.0 }
  | _ ->
      let n = List.length values in
      let sum = List.fold_left ( +. ) 0.0 values in
      {
        n;
        mean = sum /. float_of_int n;
        p50 = percentile values 0.50;
        p99 = percentile values 0.99;
        max = List.fold_left Float.max neg_infinity values;
      }

type breakdown = {
  n_slots : int;
  nomination : quantiles;
  ballot : quantiles;
  apply : quantiles;
  total : quantiles;
}

let breakdown ?node ?apply_cost trace =
  let ph = slot_phases ?node ?apply_cost trace in
  let f sel = quantiles (List.map sel ph) in
  {
    n_slots = List.length ph;
    nomination = f (fun p -> p.nomination_s);
    ballot = f (fun p -> p.ballot_s);
    apply = f (fun p -> p.apply_s);
    total = f (fun p -> p.total_s);
  }

(* ---- flood amplification (per node) ---- *)

type flood = { sent_copies : int; received : int; dup_dropped : int; amplification : float }

let flood_stats trace =
  let acc : (int, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  let bump node f =
    let cur = Option.value ~default:(0, 0, 0) (Hashtbl.find_opt acc node) in
    Hashtbl.replace acc node (f cur)
  in
  Trace.iter trace (fun s ->
      match s.Trace.event with
      | Event.Flood_send { fanout; _ } ->
          bump s.Trace.node (fun (a, b, c) -> (a + fanout, b, c))
      | Event.Flood_recv _ -> bump s.Trace.node (fun (a, b, c) -> (a, b + 1, c))
      | Event.Dedup_drop _ -> bump s.Trace.node (fun (a, b, c) -> (a, b, c + 1))
      | _ -> ());
  Hashtbl.fold
    (fun node (sent_copies, received, dup_dropped) l ->
      let amplification =
        float_of_int (received + dup_dropped) /. float_of_int (max 1 received)
      in
      (node, { sent_copies; received; dup_dropped; amplification }) :: l)
    acc []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* ---- span pairing (handles nesting via a per-key stack) ---- *)

let spans trace =
  let stacks : (int * string * int, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  Trace.iter trace (fun s ->
      match s.Trace.event with
      | Event.Span_begin { name; slot } ->
          let key = (s.Trace.node, name, slot) in
          let st =
            match Hashtbl.find_opt stacks key with
            | Some st -> st
            | None ->
                let st = ref [] in
                Hashtbl.add stacks key st;
                st
          in
          st := s.Trace.time :: !st
      | Event.Span_end { name; slot; _ } -> (
          let key = (s.Trace.node, name, slot) in
          match Hashtbl.find_opt stacks key with
          | Some ({ contents = t0 :: rest } as st) ->
              st := rest;
              out := (s.Trace.node, name, slot, t0, s.Trace.time) :: !out
          | _ -> ())
      | _ -> ());
  List.rev !out

(* ---- JSON fragments (deterministic formatting) ---- *)

let ms s = s *. 1000.0

let quantiles_json q =
  Printf.sprintf {|{"n":%d,"mean_ms":%.6f,"p50_ms":%.6f,"p99_ms":%.6f,"max_ms":%.6f}|}
    q.n (ms q.mean) (ms q.p50) (ms q.p99) (ms q.max)

let breakdown_json b =
  Printf.sprintf
    {|{"slots":%d,"nomination":%s,"ballot":%s,"apply":%s,"total":%s}|}
    b.n_slots (quantiles_json b.nomination) (quantiles_json b.ballot)
    (quantiles_json b.apply) (quantiles_json b.total)

let phases_json ph =
  let one p =
    Printf.sprintf
      {|{"slot":%d,"nomination_ms":%.6f,"ballot_ms":%.6f,"apply_ms":%.6f,"total_ms":%.6f}|}
      p.slot (ms p.nomination_s) (ms p.ballot_s) (ms p.apply_s) (ms p.total_s)
  in
  "[" ^ String.concat "," (List.map one ph) ^ "]"

let flood_json fl =
  let one (node, f) =
    Printf.sprintf
      {|{"node":%d,"sent_copies":%d,"received":%d,"dup_dropped":%d,"amplification":%.6f}|}
      node f.sent_copies f.received f.dup_dropped f.amplification
  in
  "[" ^ String.concat "," (List.map one fl) ^ "]"
