type phases = {
  slot : int;
  nomination_s : float;
  ballot_s : float;
  apply_s : float;
  total_s : float;
}

(* Deterministic model of tx-set application cost, used for the phase
   breakdown so that trace-derived reports are reproducible bit-for-bit
   (real CPU time is not).  Calibrated to the measured in-memory apply
   times: ~0.2 ms fixed + ~20 us per operation.  Real CPU time still flows
   into the "ledger.apply_ms" histogram via the herder. *)
let default_apply_cost ~txs:_ ~ops = 0.0002 +. (2.0e-5 *. float_of_int ops)

type slot_acc = {
  mutable t_nominate : float option;
  mutable t_first_vote : float option;
  mutable t_externalize : float option;
  mutable apply : (int * int) option;  (* txs, ops *)
}

let slot_phases ?(node = 0) ?(apply_cost = default_apply_cost) trace =
  let acc : (int, slot_acc) Hashtbl.t = Hashtbl.create 64 in
  let get slot =
    match Hashtbl.find_opt acc slot with
    | Some a -> a
    | None ->
        let a =
          { t_nominate = None; t_first_vote = None; t_externalize = None; apply = None }
        in
        Hashtbl.add acc slot a;
        a
  in
  Trace.iter trace (fun s ->
      if s.Trace.node = node then
        match s.Trace.event with
        | Event.Nominate_start { slot } ->
            let a = get slot in
            if a.t_nominate = None then a.t_nominate <- Some s.Trace.time
        | Event.First_vote { slot; _ } ->
            let a = get slot in
            if a.t_first_vote = None then a.t_first_vote <- Some s.Trace.time
        | Event.Externalize { slot } ->
            let a = get slot in
            if a.t_externalize = None then a.t_externalize <- Some s.Trace.time
        | Event.Apply_begin { slot; txs; ops } ->
            let a = get slot in
            if a.apply = None then a.apply <- Some (txs, ops)
        | _ -> ());
  Hashtbl.fold (fun slot a l -> (slot, a) :: l) acc []
  |> List.filter_map (fun (slot, a) ->
         match (a.t_nominate, a.t_externalize) with
         | Some t0, Some t2 ->
             let t1 = Option.value ~default:t2 a.t_first_vote in
             let txs, ops = Option.value ~default:(0, 0) a.apply in
             let apply_s = apply_cost ~txs ~ops in
             Some
               {
                 slot;
                 nomination_s = Float.max 0.0 (t1 -. t0);
                 ballot_s = Float.max 0.0 (t2 -. t1);
                 apply_s;
                 total_s = Float.max 0.0 (t2 -. t0) +. apply_s;
               }
         | _ -> None)
  |> List.sort (fun a b -> Int.compare a.slot b.slot)

(* Exact nearest-rank percentile, same convention as
   [Stellar_node.Metrics.percentile]. *)
let percentile values q =
  match values with
  | [] -> 0.0
  | _ ->
      let arr = Array.of_list values in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let idx = int_of_float (q *. float_of_int (n - 1)) in
      arr.(max 0 (min (n - 1) idx))

type quantiles = { n : int; mean : float; p50 : float; p99 : float; max : float }

let quantiles values =
  match values with
  | [] -> { n = 0; mean = 0.0; p50 = 0.0; p99 = 0.0; max = 0.0 }
  | _ ->
      let n = List.length values in
      let sum = List.fold_left ( +. ) 0.0 values in
      {
        n;
        mean = sum /. float_of_int n;
        p50 = percentile values 0.50;
        p99 = percentile values 0.99;
        max = List.fold_left Float.max neg_infinity values;
      }

type breakdown = {
  n_slots : int;
  nomination : quantiles;
  ballot : quantiles;
  apply : quantiles;
  total : quantiles;
}

let breakdown ?node ?apply_cost trace =
  let ph = slot_phases ?node ?apply_cost trace in
  let f sel = quantiles (List.map sel ph) in
  {
    n_slots = List.length ph;
    nomination = f (fun p -> p.nomination_s);
    ballot = f (fun p -> p.ballot_s);
    apply = f (fun p -> p.apply_s);
    total = f (fun p -> p.total_s);
  }

(* ---- flood amplification (per node) ---- *)

type flood = {
  sent_copies : int;
  received : int;
  dup_dropped : int;
  dup_bytes : int;
  amplification : float;
}

let flood_stats trace =
  let acc : (int, int * int * int * int) Hashtbl.t = Hashtbl.create 64 in
  let bump node f =
    let cur = Option.value ~default:(0, 0, 0, 0) (Hashtbl.find_opt acc node) in
    Hashtbl.replace acc node (f cur)
  in
  Trace.iter trace (fun s ->
      match s.Trace.event with
      | Event.Flood_send { fanout; _ } ->
          bump s.Trace.node (fun (a, b, c, d) -> (a + fanout, b, c, d))
      | Event.Flood_recv _ -> bump s.Trace.node (fun (a, b, c, d) -> (a, b + 1, c, d))
      | Event.Dedup_drop { bytes; _ } ->
          bump s.Trace.node (fun (a, b, c, d) -> (a, b, c + 1, d + bytes))
      | _ -> ());
  Hashtbl.fold
    (fun node (sent_copies, received, dup_dropped, dup_bytes) l ->
      let amplification =
        float_of_int (received + dup_dropped) /. float_of_int (max 1 received)
      in
      (node, { sent_copies; received; dup_dropped; dup_bytes; amplification }) :: l)
    acc []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* ---- causal DAG: critical path to externalization ---- *)

type hop = {
  msg_id : int;
  hop_src : int;
  hop_dst : int;
  hop_kind : string;
  sent_at : float;
  recv_at : float;
  hop_network_s : float;
  hop_cpu_s : float;
}

type critical_path = {
  cp_slot : int;
  cp_node : int;
  t_start : float;
  t_externalize : float;
  hops : hop list;
  network_s : float;
  timer_s : float;
  cpu_s : float;
  cp_total_s : float;
}

(* Per-delivery view of a Flood_recv, indexed for the backward walk. *)
type recv_ix = { r_seq : int; r_time : float; r_send : int; r_link : float; r_kind : string }

type send_ix = { s_seq : int; s_time : float; s_node : int }

let causal_index trace =
  let sends : (int, send_ix) Hashtbl.t = Hashtbl.create 1024 in
  let recvs_by_node : (int, recv_ix list ref) Hashtbl.t = Hashtbl.create 64 in
  Trace.iter trace (fun s ->
      match s.Trace.event with
      | Event.Flood_send { msg_id; _ } ->
          if not (Hashtbl.mem sends msg_id) then
            Hashtbl.add sends msg_id
              { s_seq = s.Trace.seq; s_time = s.Trace.time; s_node = s.Trace.node }
      | Event.Flood_recv { send_id; link_s; kind; _ } ->
          let l =
            match Hashtbl.find_opt recvs_by_node s.Trace.node with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add recvs_by_node s.Trace.node l;
                l
          in
          l :=
            { r_seq = s.Trace.seq; r_time = s.Trace.time; r_send = send_id; r_link = link_s; r_kind = kind }
            :: !l
      | _ -> ());
  (* recvs arrive in ascending seq; keep them as arrays for binary search *)
  let recv_arrays : (int, recv_ix array) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun node l -> Hashtbl.add recv_arrays node (Array.of_list (List.rev !l)))
    recvs_by_node;
  (sends, recv_arrays)

(* Latest Flood_recv at [node] with seq < [before] (binary search on the
   seq-ascending per-node array). *)
let latest_recv_before recv_arrays node ~before =
  match Hashtbl.find_opt recv_arrays node with
  | None -> None
  | Some arr ->
      let n = Array.length arr in
      if n = 0 || arr.(0).r_seq >= before then None
      else begin
        (* invariant: arr.(lo).r_seq < before <= arr.(hi).r_seq *)
        let lo = ref 0 and hi = ref n in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if arr.(mid).r_seq < before then lo := mid else hi := mid
        done;
        Some arr.(!lo)
      end

(* Walk the message chain backwards from the externalize event: the latest
   delivery before an event at a node is (by the synchronous handler
   discipline) the message whose processing produced it; its send_id names
   the exact Flood_send on the upstream node, where the walk continues.
   Every interval of [t_start, t_externalize] is attributed to exactly one
   of {network, timer, cpu}, and all segment endpoints are shared, so the
   three sums telescope to (t_externalize - t_start) up to float rounding —
   the ±1 µs accounting identity the tests pin. *)
let walk_critical_path (sends, recv_arrays) ~node ~slot ~t0 ~ext_time ~ext_seq =
  let network = ref 0.0 and timer = ref 0.0 and cpu = ref 0.0 in
  let hops = ref [] in
  let clip x = Float.max t0 x in
  let rec walk cur_node cur_time cur_seq budget =
    if cur_time > t0 && budget > 0 then
      match latest_recv_before recv_arrays cur_node ~before:cur_seq with
      | None ->
          (* origin of the chain: local activity back to nomination start *)
          timer := !timer +. (cur_time -. t0)
      | Some r ->
          (* local gap at cur_node between the delivery and the event it
             eventually produced: the node was waiting on protocol timers *)
          timer := !timer +. (cur_time -. clip r.r_time);
          if r.r_time > t0 then begin
            match Hashtbl.find_opt sends r.r_send with
            | None ->
                (* untagged send (e.g. a harness message): attribute the
                   remainder to timer so the identity still holds *)
                timer := !timer +. (r.r_time -. t0)
            | Some s ->
                (* hop: [s_time, s_time+link] on the wire, the rest is the
                   receiver's modeled CPU (queue wait + processing) *)
                let mid = clip (Float.min r.r_time (s.s_time +. r.r_link)) in
                let sstart = clip s.s_time in
                cpu := !cpu +. (r.r_time -. mid);
                network := !network +. (mid -. sstart);
                hops :=
                  {
                    msg_id = r.r_send;
                    hop_src = s.s_node;
                    hop_dst = cur_node;
                    hop_kind = r.r_kind;
                    sent_at = s.s_time;
                    recv_at = r.r_time;
                    hop_network_s = mid -. sstart;
                    hop_cpu_s = r.r_time -. mid;
                  }
                  :: !hops;
                walk s.s_node s.s_time s.s_seq (budget - 1)
          end
  in
  walk node ext_time ext_seq 1_000_000;
  {
    cp_slot = slot;
    cp_node = node;
    t_start = t0;
    t_externalize = ext_time;
    hops = !hops;
    network_s = !network;
    timer_s = !timer;
    cpu_s = !cpu;
    cp_total_s = ext_time -. t0;
  }

let critical_paths ?(node = 0) trace =
  let ix = causal_index trace in
  let starts : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let exts : (int, float * int) Hashtbl.t = Hashtbl.create 64 in
  Trace.iter trace (fun s ->
      if s.Trace.node = node then
        match s.Trace.event with
        | Event.Nominate_start { slot } ->
            if not (Hashtbl.mem starts slot) then Hashtbl.add starts slot s.Trace.time
        | Event.Externalize { slot } ->
            if not (Hashtbl.mem exts slot) then
              Hashtbl.add exts slot (s.Trace.time, s.Trace.seq)
        | _ -> ());
  Hashtbl.fold
    (fun slot (ext_time, ext_seq) acc ->
      match Hashtbl.find_opt starts slot with
      | Some t0 when ext_time >= t0 ->
          walk_critical_path ix ~node ~slot ~t0 ~ext_time ~ext_seq :: acc
      | _ -> acc)
    exts []
  |> List.sort (fun a b -> Int.compare a.cp_slot b.cp_slot)

(* ---- transaction lifecycle (per tx hash) ---- *)

type tx_life = {
  tx : string;
  submitted : float option;
  first_flood : float option;
  txset_slot : int option;
  externalized : (int * float) option;
  applied : float option;
  dropped : bool;
}

let tx_lives trace =
  let acc : (string, int * tx_life ref) Hashtbl.t = Hashtbl.create 1024 in
  let get tx seq =
    match Hashtbl.find_opt acc tx with
    | Some (_, l) -> l
    | None ->
        let l =
          ref
            {
              tx;
              submitted = None;
              first_flood = None;
              txset_slot = None;
              externalized = None;
              applied = None;
              dropped = false;
            }
        in
        Hashtbl.add acc tx (seq, l);
        l
  in
  Trace.iter trace (fun s ->
      let t = s.Trace.time and seq = s.Trace.seq in
      match s.Trace.event with
      | Event.Tx_submit { tx } ->
          let l = get tx seq in
          if !l.submitted = None then l := { !l with submitted = Some t }
      | Event.Tx_flooded { tx } ->
          let l = get tx seq in
          if !l.first_flood = None then l := { !l with first_flood = Some t }
      | Event.Tx_in_txset { tx; slot } ->
          let l = get tx seq in
          if !l.txset_slot = None then l := { !l with txset_slot = Some slot }
      | Event.Tx_externalized { tx; slot } ->
          let l = get tx seq in
          if !l.externalized = None then l := { !l with externalized = Some (slot, t) }
      | Event.Tx_applied { tx; _ } ->
          let l = get tx seq in
          if !l.applied = None then l := { !l with applied = Some t }
      | Event.Tx_dropped { tx; _ } ->
          let l = get tx seq in
          l := { !l with dropped = true }
      | _ -> ());
  Hashtbl.fold (fun _ (seq, l) acc -> (seq, !l) :: acc) acc []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

(* ---- end-to-end payment latency (§7.3's headline figure) ---- *)

type e2e = {
  n_submitted : int;
  n_externalized : int;
  n_applied : int;
  n_dropped : int;
  submit_to_externalize : quantiles;
  submit_to_apply : quantiles;
}

let e2e_latency ?(apply_cost = default_apply_cost) trace =
  (* first Apply_begin per slot gives the (txs, ops) the apply model needs *)
  let slot_apply : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  Trace.iter trace (fun s ->
      match s.Trace.event with
      | Event.Apply_begin { slot; txs; ops } ->
          if not (Hashtbl.mem slot_apply slot) then Hashtbl.add slot_apply slot (txs, ops)
      | _ -> ());
  let lives = tx_lives trace in
  let submitted = List.filter (fun l -> l.submitted <> None) lives in
  let ext_lat = ref [] and apply_lat = ref [] in
  let n_externalized = ref 0 and n_applied = ref 0 and n_dropped = ref 0 in
  List.iter
    (fun l ->
      if l.dropped then incr n_dropped;
      match (l.submitted, l.externalized) with
      | Some t_sub, Some (slot, t_ext) ->
          incr n_externalized;
          ext_lat := (t_ext -. t_sub) :: !ext_lat;
          (match l.applied with
          | Some t_app ->
              incr n_applied;
              let txs, ops = Option.value ~default:(0, 0) (Hashtbl.find_opt slot_apply slot) in
              apply_lat := (t_app -. t_sub +. apply_cost ~txs ~ops) :: !apply_lat
          | None -> ())
      | _ -> ())
    submitted;
  {
    n_submitted = List.length submitted;
    n_externalized = !n_externalized;
    n_applied = !n_applied;
    n_dropped = !n_dropped;
    submit_to_externalize = quantiles (List.rev !ext_lat);
    submit_to_apply = quantiles (List.rev !apply_lat);
  }

(* ---- fault recovery (crash → restart → catchup → back in sync) ---- *)

type recovery = {
  rec_node : int;
  t_crash : float;
  t_restart : float;
  catchup_from : int;  (** checkpoint seq the restart bootstrapped from *)
  catchup_to : int;  (** archive tip reached by replay *)
  replayed : int;
  t_resync : float option;
  recover_s : float option;
}

type heal_report = {
  t_split : float;
  t_heal : float;
  lagged : (int * float option) list;
  heal_recover_s : float option;
}

(* Externalize times per slot, as (node, time) in trace order (first
   externalize per (slot, node) only: a node externalizes a slot once). *)
let externalizations trace =
  let by_slot : (int, (int * float) list ref) Hashtbl.t = Hashtbl.create 64 in
  Trace.iter trace (fun s ->
      match s.Trace.event with
      | Event.Externalize { slot } ->
          let l =
            match Hashtbl.find_opt by_slot slot with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add by_slot slot l;
                l
          in
          if not (List.mem_assoc s.Trace.node !l) then l := (s.Trace.node, s.Trace.time) :: !l
      | _ -> ());
  by_slot

(* A node is "back in sync" at the first slot it externalizes no later than
   [interval/2] after the fastest *other* node: replayed/straggler-helped
   old slots close long after the network did and fail this test, while the
   first live slot closes with the crowd (normal spread is milliseconds). *)
let first_in_sync by_slot ~interval ~node ~after =
  let candidates =
    Hashtbl.fold
      (fun _slot l acc ->
        match List.assoc_opt node !l with
        | Some t_n when t_n >= after -> (
            match
              List.filter_map (fun (m, t) -> if m <> node then Some t else None) !l
            with
            | [] -> acc
            | others ->
                let t_min = List.fold_left Float.min (List.hd others) others in
                if t_n -. t_min <= interval /. 2.0 then t_n :: acc else acc)
        | _ -> acc)
      by_slot []
  in
  match candidates with [] -> None | t :: rest -> Some (List.fold_left Float.min t rest)

let recoveries ?(interval = 5.0) trace =
  let by_slot = externalizations trace in
  (* per-node fault timelines, in trace order *)
  let crashes : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let restarts : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let catchups : (int, (float * int * int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let push tbl node v =
    match Hashtbl.find_opt tbl node with
    | Some l -> l := v :: !l
    | None -> Hashtbl.add tbl node (ref [ v ])
  in
  let pending_from : (int, int) Hashtbl.t = Hashtbl.create 8 in
  Trace.iter trace (fun s ->
      match s.Trace.event with
      | Event.Node_crash -> push crashes s.Trace.node s.Trace.time
      | Event.Node_restart -> push restarts s.Trace.node s.Trace.time
      | Event.Catchup_begin { from_seq } -> Hashtbl.replace pending_from s.Trace.node from_seq
      | Event.Catchup_done { to_seq; replayed } ->
          let from_seq =
            Option.value ~default:0 (Hashtbl.find_opt pending_from s.Trace.node)
          in
          push catchups s.Trace.node (s.Trace.time, from_seq, to_seq, replayed)
      | _ -> ());
  let nodes =
    Hashtbl.fold (fun n _ acc -> n :: acc) crashes [] |> List.sort_uniq Int.compare
  in
  List.concat_map
    (fun node ->
      let get tbl = match Hashtbl.find_opt tbl node with Some l -> List.rev !l | None -> [] in
      let cs = get crashes and rs = get restarts and cus = get catchups in
      (* pair the i-th crash with the i-th restart (Fault.validate enforces
         the alternation) *)
      List.mapi
        (fun i t_crash ->
          match List.nth_opt rs i with
          | None ->
              {
                rec_node = node;
                t_crash;
                t_restart = nan;
                catchup_from = 0;
                catchup_to = 0;
                replayed = 0;
                t_resync = None;
                recover_s = None;
              }
          | Some t_restart ->
              let catchup_from, catchup_to, replayed =
                match
                  List.find_opt (fun (t, _, _, _) -> t >= t_restart -. 1e-9) cus
                with
                | Some (_, f, upto, n) -> (f, upto, n)
                | None -> (0, 0, 0)
              in
              let t_resync = first_in_sync by_slot ~interval ~node ~after:t_restart in
              {
                rec_node = node;
                t_crash;
                t_restart;
                catchup_from;
                catchup_to;
                replayed;
                t_resync;
                recover_s = Option.map (fun t -> t -. t_restart) t_resync;
              })
        cs)
    nodes

let heals ?(interval = 5.0) trace =
  let by_slot = externalizations trace in
  (* pair each Partition_begin with the next Partition_heal *)
  let out = ref [] in
  let open_split = ref None in
  Trace.iter trace (fun s ->
      match s.Trace.event with
      | Event.Partition_begin { groups } -> open_split := Some (s.Trace.time, groups)
      | Event.Partition_heal -> (
          match !open_split with
          | None -> ()
          | Some (t_split, groups) ->
              open_split := None;
              (* the majority group keeps externalizing; everyone else lags *)
              let counts = Hashtbl.create 4 in
              List.iter
                (fun g ->
                  Hashtbl.replace counts g (1 + Option.value ~default:0 (Hashtbl.find_opt counts g)))
                groups;
              let majority, _ =
                Hashtbl.fold
                  (fun g c ((bg, bc) as best) ->
                    if c > bc || (c = bc && g < bg) then (g, c) else best)
                  counts (min_int, 0)
              in
              let t_heal = s.Trace.time in
              let lagged =
                List.mapi (fun node g -> (node, g)) groups
                |> List.filter (fun (_, g) -> g <> majority)
                |> List.map (fun (node, _) ->
                       ( node,
                         Option.map
                           (fun t -> t -. t_heal)
                           (first_in_sync by_slot ~interval ~node ~after:t_heal) ))
              in
              let heal_recover_s =
                if lagged = [] || List.exists (fun (_, d) -> d = None) lagged then None
                else
                  Some
                    (List.fold_left
                       (fun acc (_, d) -> Float.max acc (Option.get d))
                       0.0 lagged)
              in
              out := { t_split; t_heal; lagged; heal_recover_s } :: !out)
      | _ -> ());
  List.rev !out

(* ---- span pairing (handles nesting via a per-key stack) ---- *)

let spans trace =
  let stacks : (int * string * int, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  Trace.iter trace (fun s ->
      match s.Trace.event with
      | Event.Span_begin { name; slot } ->
          let key = (s.Trace.node, name, slot) in
          let st =
            match Hashtbl.find_opt stacks key with
            | Some st -> st
            | None ->
                let st = ref [] in
                Hashtbl.add stacks key st;
                st
          in
          st := s.Trace.time :: !st
      | Event.Span_end { name; slot; _ } -> (
          let key = (s.Trace.node, name, slot) in
          match Hashtbl.find_opt stacks key with
          | Some ({ contents = t0 :: rest } as st) ->
              st := rest;
              out := (s.Trace.node, name, slot, t0, s.Trace.time) :: !out
          | _ -> ())
      | _ -> ());
  List.rev !out

(* ---- JSON fragments (deterministic formatting) ---- *)

let ms s = s *. 1000.0

let quantiles_json q =
  Printf.sprintf {|{"n":%d,"mean_ms":%.6f,"p50_ms":%.6f,"p99_ms":%.6f,"max_ms":%.6f}|}
    q.n (ms q.mean) (ms q.p50) (ms q.p99) (ms q.max)

let breakdown_json b =
  Printf.sprintf
    {|{"slots":%d,"nomination":%s,"ballot":%s,"apply":%s,"total":%s}|}
    b.n_slots (quantiles_json b.nomination) (quantiles_json b.ballot)
    (quantiles_json b.apply) (quantiles_json b.total)

let phases_json ph =
  let one p =
    Printf.sprintf
      {|{"slot":%d,"nomination_ms":%.6f,"ballot_ms":%.6f,"apply_ms":%.6f,"total_ms":%.6f}|}
      p.slot (ms p.nomination_s) (ms p.ballot_s) (ms p.apply_s) (ms p.total_s)
  in
  "[" ^ String.concat "," (List.map one ph) ^ "]"

let flood_json fl =
  let one (node, f) =
    Printf.sprintf
      {|{"node":%d,"sent_copies":%d,"received":%d,"dup_dropped":%d,"dup_bytes":%d,"amplification":%.6f}|}
      node f.sent_copies f.received f.dup_dropped f.dup_bytes f.amplification
  in
  "[" ^ String.concat "," (List.map one fl) ^ "]"

let critical_paths_json cps =
  let one cp =
    Printf.sprintf
      {|{"slot":%d,"hops":%d,"network_ms":%.6f,"timer_ms":%.6f,"cpu_ms":%.6f,"total_ms":%.6f}|}
      cp.cp_slot (List.length cp.hops) (ms cp.network_s) (ms cp.timer_s) (ms cp.cpu_s)
      (ms cp.cp_total_s)
  in
  "[" ^ String.concat "," (List.map one cps) ^ "]"

let e2e_json e =
  Printf.sprintf
    {|{"submitted":%d,"externalized":%d,"applied":%d,"dropped":%d,"submit_to_externalize":%s,"submit_to_apply":%s}|}
    e.n_submitted e.n_externalized e.n_applied e.n_dropped
    (quantiles_json e.submit_to_externalize)
    (quantiles_json e.submit_to_apply)

let float_opt_json = function None -> "null" | Some v -> Printf.sprintf "%.6f" v

let recoveries_json rs =
  let one r =
    Printf.sprintf
      {|{"node":%d,"t_crash":%.6f,"t_restart":%.6f,"catchup_from":%d,"catchup_to":%d,"replayed":%d,"t_resync":%s,"recover_s":%s}|}
      r.rec_node r.t_crash r.t_restart r.catchup_from r.catchup_to r.replayed
      (float_opt_json r.t_resync)
      (float_opt_json r.recover_s)
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare a.rec_node b.rec_node with
        | 0 -> compare a.t_crash b.t_crash
        | c -> c)
      rs
  in
  "[" ^ String.concat "," (List.map one sorted) ^ "]"

let heals_json hs =
  let one h =
    let lagged =
      List.sort (fun (a, _) (b, _) -> compare a b) h.lagged
      |> List.map (fun (node, d) ->
             Printf.sprintf {|{"node":%d,"recover_s":%s}|} node (float_opt_json d))
    in
    Printf.sprintf {|{"t_split":%.6f,"t_heal":%.6f,"lagged":[%s],"recover_s":%s}|}
      h.t_split h.t_heal (String.concat "," lagged)
      (float_opt_json h.heal_recover_s)
  in
  "[" ^ String.concat "," (List.map one hs) ^ "]"
