type timeout_kind = [ `Nomination | `Ballot ]
type drop_reason = [ `Duplicate | `Stale ]

type t =
  | Nominate_start of { slot : int }
  | Nomination_round of { slot : int; round : int }
  | First_vote of { slot : int; counter : int }
  | Ballot_bump of { slot : int; counter : int }
  | Confirm_prepare of { slot : int }
  | Externalize of { slot : int }
  | Timeout_fired of { slot : int; kind : timeout_kind }
  | Flood_send of { kind : string; bytes : int; fanout : int; msg_id : int }
  | Flood_recv of {
      kind : string;
      bytes : int;
      src : int;
      send_id : int;
      link_s : float;
      wait_s : float;
      proc_s : float;
    }
  | Dedup_drop of { kind : string; src : int; bytes : int }
  | Apply_begin of { slot : int; txs : int; ops : int }
  | Apply_end of { slot : int; txs : int; ops : int }
  | Bucket_merge of { level : int; entries : int }
  | Span_begin of { name : string; slot : int }
  | Span_end of { name : string; slot : int; dur_s : float }
  | Tx_submit of { tx : string }
  | Tx_flooded of { tx : string }
  | Tx_in_txset of { tx : string; slot : int }
  | Tx_externalized of { tx : string; slot : int }
  | Tx_applied of { tx : string; slot : int; ok : bool }
  | Tx_dropped of { tx : string; reason : drop_reason }
  | Node_crash
  | Node_restart
  | Partition_begin of { groups : int list }
  | Partition_heal
  | Catchup_begin of { from_seq : int }
  | Catchup_done of { to_seq : int; replayed : int }

let name = function
  | Nominate_start _ -> "nominate.start"
  | Nomination_round _ -> "nomination.round"
  | First_vote _ -> "ballot.first"
  | Ballot_bump _ -> "ballot.bump"
  | Confirm_prepare _ -> "phase.confirm"
  | Externalize _ -> "phase.externalize"
  | Timeout_fired _ -> "timeout"
  | Flood_send _ -> "flood.send"
  | Flood_recv _ -> "flood.recv"
  | Dedup_drop _ -> "flood.dup"
  | Apply_begin _ -> "apply.begin"
  | Apply_end _ -> "apply.end"
  | Bucket_merge _ -> "bucket.merge"
  | Span_begin _ -> "span.begin"
  | Span_end _ -> "span.end"
  | Tx_submit _ -> "tx.submit"
  | Tx_flooded _ -> "tx.flooded"
  | Tx_in_txset _ -> "tx.txset"
  | Tx_externalized _ -> "tx.externalized"
  | Tx_applied _ -> "tx.applied"
  | Tx_dropped _ -> "tx.dropped"
  | Node_crash -> "fault.crash"
  | Node_restart -> "fault.restart"
  | Partition_begin _ -> "fault.partition"
  | Partition_heal -> "fault.heal"
  | Catchup_begin _ -> "catchup.begin"
  | Catchup_done _ -> "catchup.done"

let timeout_kind_name = function `Nomination -> "nomination" | `Ballot -> "ballot"
let drop_reason_name = function `Duplicate -> "duplicate" | `Stale -> "stale"

(* Payload as a JSON fragment (comma-prefixed key/values, no braces).  All
   float formatting is fixed-width so traces are byte-identical across runs
   with the same seed. *)
let fields = function
  | Nominate_start { slot } -> Printf.sprintf {|,"slot":%d|} slot
  | Nomination_round { slot; round } -> Printf.sprintf {|,"slot":%d,"round":%d|} slot round
  | First_vote { slot; counter } | Ballot_bump { slot; counter } ->
      Printf.sprintf {|,"slot":%d,"counter":%d|} slot counter
  | Confirm_prepare { slot } | Externalize { slot } -> Printf.sprintf {|,"slot":%d|} slot
  | Timeout_fired { slot; kind } ->
      Printf.sprintf {|,"slot":%d,"kind":"%s"|} slot (timeout_kind_name kind)
  | Flood_send { kind; bytes; fanout; msg_id } ->
      Printf.sprintf {|,"kind":"%s","bytes":%d,"fanout":%d,"msg_id":%d|} kind bytes fanout
        msg_id
  | Flood_recv { kind; bytes; src; send_id; link_s; wait_s; proc_s } ->
      Printf.sprintf
        {|,"kind":"%s","bytes":%d,"src":%d,"send_id":%d,"link_s":%.9f,"wait_s":%.9f,"proc_s":%.9f|}
        kind bytes src send_id link_s wait_s proc_s
  | Dedup_drop { kind; src; bytes } ->
      Printf.sprintf {|,"kind":"%s","src":%d,"bytes":%d|} kind src bytes
  | Apply_begin { slot; txs; ops } | Apply_end { slot; txs; ops } ->
      Printf.sprintf {|,"slot":%d,"txs":%d,"ops":%d|} slot txs ops
  | Bucket_merge { level; entries } ->
      Printf.sprintf {|,"level":%d,"entries":%d|} level entries
  | Span_begin { name; slot } -> Printf.sprintf {|,"name":"%s","slot":%d|} name slot
  | Span_end { name; slot; dur_s } ->
      Printf.sprintf {|,"name":"%s","slot":%d,"dur_s":%.6f|} name slot dur_s
  | Tx_submit { tx } | Tx_flooded { tx } -> Printf.sprintf {|,"tx":"%s"|} tx
  | Tx_in_txset { tx; slot } | Tx_externalized { tx; slot } ->
      Printf.sprintf {|,"tx":"%s","slot":%d|} tx slot
  | Tx_applied { tx; slot; ok } ->
      Printf.sprintf {|,"tx":"%s","slot":%d,"ok":%b|} tx slot ok
  | Tx_dropped { tx; reason } ->
      Printf.sprintf {|,"tx":"%s","reason":"%s"|} tx (drop_reason_name reason)
  | Node_crash | Node_restart | Partition_heal -> ""
  | Partition_begin { groups } ->
      Printf.sprintf {|,"groups":[%s]|}
        (String.concat "," (List.map string_of_int groups))
  | Catchup_begin { from_seq } -> Printf.sprintf {|,"from_seq":%d|} from_seq
  | Catchup_done { to_seq; replayed } ->
      Printf.sprintf {|,"to_seq":%d,"replayed":%d|} to_seq replayed
