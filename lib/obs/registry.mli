(** Per-node metric registry: counters, gauges and fixed-bucket histograms
    keyed by dotted names ("scp.ballot.prepare", "ledger.apply_ms", ...).

    Registering a name twice returns the same handle; registering it with a
    different metric kind raises [Invalid_argument].  Registries from many
    nodes aggregate with {!merge} (counters and histograms add; gauges sum).

    Handles ([counter], [gauge], [histogram]) are plain mutable records so
    hot paths pay a field update, not a hash lookup. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram : ?bounds:float array -> t -> string -> histogram
(** [bounds] are sorted bucket upper bounds; an overflow bucket is implicit.
    Default: {!default_bounds}. *)

val default_bounds : float array
(** 100 µs … 60 s in a 1–2.5–5 progression — the latency range of §7. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val percentile_of : histogram -> float -> float
(** Nearest-rank estimate from the bucket counts, using the same rank
    convention as [Stellar_node.Metrics.percentile]; the result is the
    upper bound of the bucket holding the rank (clipped to the observed
    max), so samples placed exactly on bucket bounds reproduce the exact
    percentile. *)

type summary = { count : int; sum : float; p50 : float; p75 : float; p99 : float; max : float }

val summarize : histogram -> summary

(* Read-side: value lookups by name (0 / 0.0 / None when absent). *)
val counter_value : t -> string -> int
val gauge_value : t -> string -> float
val summary : t -> string -> summary option

val names : t -> string list
(** Sorted. *)

val merge_into : dst:t -> t -> unit
val merge : t list -> t

val to_json : t -> string
(** Deterministic (sorted keys, fixed float formatting). *)
