open Stellar_herder
open Stellar_ledger

let scheme = (module Stellar_crypto.Sim_sig : Stellar_crypto.Sig_intf.SCHEME
               with type secret = string)

let kp name = Stellar_crypto.Sim_sig.keypair ~seed:(Stellar_crypto.Sha256.digest name)

(* ---------- consensus value codec & combination ---------- *)

let h32 s = Stellar_crypto.Sha256.digest s

let value_tests =
  let open Alcotest in
  [
    test_case "encode/decode roundtrip" `Quick (fun () ->
        let v =
          Value.
            {
              tx_set_hash = h32 "ts";
              close_time = 123456;
              upgrades = [ Value.Upgrade_base_fee 200; Value.Upgrade_protocol_version 2 ];
            }
        in
        check bool "roundtrip" true (Value.decode (Value.encode v) = Some v));
    test_case "decode rejects garbage" `Quick (fun () ->
        check bool "junk" true (Value.decode "nonsense" = None);
        check bool "empty" true (Value.decode "" = None);
        let v = Value.{ tx_set_hash = h32 "x"; close_time = 1; upgrades = [] } in
        let enc = Value.encode v in
        check bool "trailing bytes" true (Value.decode (enc ^ "x") = None));
    test_case "combine: highest close time, upgrade union" `Quick (fun () ->
        let v1 = Value.{ tx_set_hash = h32 "a"; close_time = 10; upgrades = [ Value.Upgrade_base_fee 200 ] } in
        let v2 = Value.{ tx_set_hash = h32 "b"; close_time = 12; upgrades = [ Value.Upgrade_base_fee 150; Value.Upgrade_base_reserve 9 ] } in
        match Value.combine [ v1; v2 ] with
        | None -> fail "no combination"
        | Some v ->
            check int "max close" 12 v.Value.close_time;
            check bool "higher fee wins" true
              (List.mem (Value.Upgrade_base_fee 200) v.Value.upgrades);
            check bool "reserve kept" true
              (List.mem (Value.Upgrade_base_reserve 9) v.Value.upgrades));
    test_case "combine_with prefers most operations" `Quick (fun () ->
        let _, alice = kp "alice" and _, bob = kp "bob" in
        let mk_ts n_ops =
          let txs =
            List.init n_ops (fun i ->
                let tx =
                  Tx.make ~source:alice ~seq_num:(i + 1)
                    [ Tx.op (Tx.Payment { destination = bob; asset = Asset.native; amount = 1 }) ]
                in
                Tx.sign tx ~secret:(fst (kp "alice")) ~public:alice ~scheme)
          in
          Tx_set.make ~prev_header_hash:(h32 "prev") txs
        in
        let small = mk_ts 1 and big = mk_ts 3 in
        let lookup h =
          if h = Tx_set.hash small then Some small
          else if h = Tx_set.hash big then Some big
          else None
        in
        let v_small = Value.{ tx_set_hash = Tx_set.hash small; close_time = 5; upgrades = [] } in
        let v_big = Value.{ tx_set_hash = Tx_set.hash big; close_time = 4; upgrades = [] } in
        match Value.combine_with ~lookup [ v_small; v_big ] with
        | Some v ->
            check bool "big set chosen" true (v.Value.tx_set_hash = Tx_set.hash big);
            check int "still max close time" 5 v.Value.close_time
        | None -> fail "no combination");
    test_case "upgrade validity bounds" `Quick (fun () ->
        check bool "fee ok" true (Value.valid_upgrade (Value.Upgrade_base_fee 100));
        check bool "fee zero bad" false (Value.valid_upgrade (Value.Upgrade_base_fee 0));
        check bool "absurd reserve bad" false
          (Value.valid_upgrade (Value.Upgrade_base_reserve 1_000_000_000)));
    test_case "apply_upgrades changes parameters" `Quick (fun () ->
        let _, master = kp "m" in
        let state = State.genesis ~master ~total_xlm:100 () in
        let state' =
          Value.apply_upgrades state
            [ Value.Upgrade_base_fee 777; Value.Upgrade_protocol_version 3 ]
        in
        check int "fee" 777 (State.base_fee state');
        check int "version" 3 (State.protocol_version state'));
  ]

(* ---------- tx sets ---------- *)

let tx_set_tests =
  let open Alcotest in
  [
    test_case "hash independent of submission order" `Quick (fun () ->
        let sa, alice = kp "alice" and _, bob = kp "bob" in
        let mk i =
          let tx =
            Tx.make ~source:alice ~seq_num:i
              [ Tx.op (Tx.Payment { destination = bob; asset = Asset.native; amount = i }) ]
          in
          Tx.sign tx ~secret:sa ~public:alice ~scheme
        in
        let t1 = Tx_set.make ~prev_header_hash:(h32 "p") [ mk 1; mk 2; mk 3 ] in
        let t2 = Tx_set.make ~prev_header_hash:(h32 "p") [ mk 3; mk 1; mk 2 ] in
        check bool "equal hashes" true (Tx_set.hash t1 = Tx_set.hash t2));
    test_case "hash binds previous header" `Quick (fun () ->
        let t1 = Tx_set.make ~prev_header_hash:(h32 "p1") [] in
        let t2 = Tx_set.make ~prev_header_hash:(h32 "p2") [] in
        check bool "different" false (Tx_set.hash t1 = Tx_set.hash t2));
    test_case "op and fee accounting" `Quick (fun () ->
        let sa, alice = kp "alice" and _, bob = kp "bob" in
        let tx =
          Tx.make ~source:alice ~seq_num:1
            [
              Tx.op (Tx.Payment { destination = bob; asset = Asset.native; amount = 1 });
              Tx.op (Tx.Payment { destination = bob; asset = Asset.native; amount = 2 });
            ]
        in
        let ts = Tx_set.make ~prev_header_hash:(h32 "p") [ Tx.sign tx ~secret:sa ~public:alice ~scheme ] in
        check int "ops" 2 (Tx_set.op_count ts);
        check int "fees" 200 (Tx_set.total_fees ts));
  ]

(* ---------- tx queue ---------- *)

let queue_tests =
  let open Alcotest in
  let setup () =
    let sa, alice = kp "alice" and _, bob = kp "bob" in
    let state = State.genesis ~master:alice ~total_xlm:(Asset.of_units 100) () in
    let mk seq =
      let tx =
        Tx.make ~source:alice ~seq_num:seq
          [ Tx.op (Tx.Payment { destination = bob; asset = Asset.native; amount = 1 }) ]
      in
      Tx.sign tx ~secret:sa ~public:alice ~scheme
    in
    (state, mk)
  in
  [
    test_case "duplicates rejected" `Quick (fun () ->
        let _, mk = setup () in
        let q = Tx_queue.create () in
        check bool "first" true (Tx_queue.add q (mk 1));
        check bool "dup" false (Tx_queue.add q (mk 1));
        check int "size" 1 (Tx_queue.size q));
    test_case "candidates follow the sequence chain" `Quick (fun () ->
        let state, mk = setup () in
        let q = Tx_queue.create () in
        ignore (Tx_queue.add q (mk 1));
        ignore (Tx_queue.add q (mk 2));
        ignore (Tx_queue.add q (mk 4));
        (* gap at 3 *)
        let c = Tx_queue.candidates q ~state ~max_ops:100 in
        check int "chain stops at the gap" 2 (List.length c));
    test_case "max_ops respected" `Quick (fun () ->
        let state, mk = setup () in
        let q = Tx_queue.create () in
        for i = 1 to 10 do
          ignore (Tx_queue.add q (mk i))
        done;
        check int "capped" 3 (List.length (Tx_queue.candidates q ~state ~max_ops:3)));
    test_case "surge pricing: highest fee-per-op chains win" `Quick (fun () ->
        (* two funded accounts compete for one slot of 2 ops *)
        let sa, alice = kp "alice" and sb, bob = kp "bob" in
        let state = State.genesis ~master:alice ~total_xlm:(Asset.of_units 100) () in
        let state, _ =
          Apply.apply_tx Apply.sim_ctx state
            (Tx.sign
               (Tx.make ~source:alice ~seq_num:1
                  [ Tx.op (Tx.Create_account { destination = bob; starting_balance = Asset.of_units 10 }) ])
               ~secret:sa ~public:alice ~scheme)
        in
        let q = Tx_queue.create () in
        let pay source secret seq fee =
          Tx.sign
            (Tx.make ~source ~seq_num:seq ~fee
               [ Tx.op (Tx.Payment { destination = alice; asset = Asset.native; amount = 1 }) ])
            ~secret ~public:source ~scheme
        in
        (* alice queues two cheap txs, bob one expensive tx *)
        ignore (Tx_queue.add q (pay alice sa 2 100));
        ignore (Tx_queue.add q (pay alice sa 3 100));
        let bob_seq = (Option.get (State.account state bob)).Entry.seq_num in
        ignore (Tx_queue.add q (pay bob sb (bob_seq + 1) 900));
        let picked = Tx_queue.candidates q ~state ~max_ops:2 in
        check int "two picked" 2 (List.length picked);
        check bool "bob's expensive tx included" true
          (List.exists (fun s -> String.equal s.Tx.tx.Tx.source bob) picked));
    test_case "remove_applied and purge" `Quick (fun () ->
        let state, mk = setup () in
        let q = Tx_queue.create () in
        ignore (Tx_queue.add q (mk 1));
        ignore (Tx_queue.add q (mk 2));
        Tx_queue.remove_applied q [ mk 1 ];
        check int "one left" 1 (Tx_queue.size q);
        (* if the account's seq has advanced past 2, purge drops it *)
        let state =
          match State.account state (snd (kp "alice")) with
          | Some a -> State.put_account state { a with Stellar_ledger.Entry.seq_num = 5 }
          | None -> state
        in
        check int "purged" 1 (List.length (Tx_queue.purge_invalid q ~state));
        check int "empty" 0 (Tx_queue.size q));
  ]

let () =
  Alcotest.run "herder"
    [ ("value", value_tests); ("tx-set", tx_set_tests); ("tx-queue", queue_tests) ]
