open Stellar_sim

(* ---------- Engine ---------- *)

let engine_tests =
  let open Alcotest in
  [
    test_case "events fire in time order" `Quick (fun () ->
        let e = Engine.create () in
        let log = ref [] in
        ignore (Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log));
        ignore (Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log));
        ignore (Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log));
        Engine.run e;
        check (list int) "order" [ 1; 2; 3 ] (List.rev !log));
    test_case "equal times fire in scheduling order" `Quick (fun () ->
        let e = Engine.create () in
        let log = ref [] in
        for i = 1 to 5 do
          ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
        done;
        Engine.run e;
        check (list int) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log));
    test_case "clock advances to event time" `Quick (fun () ->
        let e = Engine.create () in
        let seen = ref 0.0 in
        ignore (Engine.schedule e ~delay:5.5 (fun () -> seen := Engine.now e));
        Engine.run e;
        check (float 1e-9) "time" 5.5 !seen);
    test_case "cancelled timers do not fire" `Quick (fun () ->
        let e = Engine.create () in
        let fired = ref false in
        let timer = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
        Engine.cancel timer;
        Engine.run e;
        check bool "not fired" false !fired);
    test_case "run ~until stops the clock" `Quick (fun () ->
        let e = Engine.create () in
        let fired = ref false in
        ignore (Engine.schedule e ~delay:10.0 (fun () -> fired := true));
        Engine.run ~until:5.0 e;
        check bool "not yet" false !fired;
        check (float 1e-9) "clock at limit" 5.0 (Engine.now e);
        Engine.run e;
        check bool "eventually" true !fired);
    test_case "events may schedule events" `Quick (fun () ->
        let e = Engine.create () in
        let count = ref 0 in
        let rec tick () =
          incr count;
          if !count < 10 then ignore (Engine.schedule e ~delay:1.0 tick)
        in
        ignore (Engine.schedule e ~delay:1.0 tick);
        Engine.run e;
        check int "ten ticks" 10 !count;
        check (float 1e-9) "clock" 10.0 (Engine.now e));
  ]

(* ---------- Heap ---------- *)

let clock_monotonic_prop =
  QCheck.Test.make ~name:"clock is monotonic across random schedules" ~count:100
    QCheck.(small_list (pair (float_bound_inclusive 10.0) (float_bound_inclusive 5.0)))
    (fun events ->
      let e = Engine.create () in
      let ok = ref true in
      let last = ref 0.0 in
      List.iter
        (fun (at, extra) ->
          ignore
            (Engine.schedule e ~delay:at (fun () ->
                 if Engine.now e < !last then ok := false;
                 last := Engine.now e;
                 (* events scheduling further events must also respect time *)
                 ignore
                   (Engine.schedule e ~delay:extra (fun () ->
                        if Engine.now e < !last then ok := false;
                        last := Engine.now e)))))
        events;
      Engine.run e;
      !ok)

let heap_prop =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* ---------- Rng ---------- *)

let rng_tests =
  let open Alcotest in
  [
    test_case "deterministic for same seed" `Quick (fun () ->
        let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
        for _ = 1 to 100 do
          check int "same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
        done);
    test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
        let same = ref 0 in
        for _ = 1 to 50 do
          if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
        done;
        check bool "mostly different" true (!same < 5));
    test_case "split gives independent stream" `Quick (fun () ->
        let a = Rng.create ~seed:7 in
        let b = Rng.split a in
        let xa = Rng.int a 1000 and xb = Rng.int b 1000 in
        ignore xa;
        ignore xb);
    test_case "float bounds" `Quick (fun () ->
        let r = Rng.create ~seed:1 in
        for _ = 1 to 1000 do
          let f = Rng.float r 3.0 in
          check bool "in range" true (f >= 0.0 && f < 3.0)
        done);
    test_case "exponential mean approx" `Quick (fun () ->
        let r = Rng.create ~seed:2 in
        let n = 20000 in
        let total = ref 0.0 in
        for _ = 1 to n do
          total := !total +. Rng.exponential r ~mean:0.2
        done;
        let mean = !total /. float_of_int n in
        check bool "close to 0.2" true (abs_float (mean -. 0.2) < 0.01));
    test_case "shuffle is a permutation" `Quick (fun () ->
        let r = Rng.create ~seed:3 in
        let arr = Array.init 50 Fun.id in
        Rng.shuffle r arr;
        let sorted = Array.copy arr in
        Array.sort Int.compare sorted;
        check (array int) "permutation" (Array.init 50 Fun.id) sorted);
  ]

(* ---------- Network ---------- *)

let network_tests =
  let open Alcotest in
  let setup ?(latency = Latency.Constant 0.01) n =
    let engine = Engine.create () in
    let rng = Rng.create ~seed:5 in
    let net = Network.create ~engine ~rng ~n ~latency () in
    (engine, net)
  in
  [
    test_case "delivers with latency" `Quick (fun () ->
        let engine, net = setup 2 in
        let got = ref None in
        Network.set_handler net 1 (fun ~src ~info:_ msg -> got := Some (src, msg, Engine.now engine));
        Network.send net ~src:0 ~dst:1 ~size:100 "hello";
        Engine.run engine;
        match !got with
        | Some (src, msg, time) ->
            check int "src" 0 src;
            check string "msg" "hello" msg;
            check (float 1e-9) "latency" 0.01 time
        | None -> fail "not delivered");
    test_case "down receiver drops" `Quick (fun () ->
        let engine, net = setup 2 in
        let got = ref false in
        Network.set_handler net 1 (fun ~src:_ ~info:_ _ -> got := true);
        Network.set_down net 1 true;
        Network.send net ~src:0 ~dst:1 ~size:10 "x";
        Engine.run engine;
        check bool "dropped" false !got);
    test_case "down sender drops" `Quick (fun () ->
        let engine, net = setup 2 in
        let got = ref false in
        Network.set_handler net 1 (fun ~src:_ ~info:_ _ -> got := true);
        Network.set_down net 0 true;
        Network.send net ~src:0 ~dst:1 ~size:10 "x";
        Engine.run engine;
        check bool "dropped" false !got);
    test_case "crash while in flight drops" `Quick (fun () ->
        let engine, net = setup 2 in
        let got = ref false in
        Network.set_handler net 1 (fun ~src:_ ~info:_ _ -> got := true);
        Network.send net ~src:0 ~dst:1 ~size:10 "x";
        ignore (Engine.schedule engine ~delay:0.005 (fun () -> Network.set_down net 1 true));
        Engine.run engine;
        check bool "dropped mid-flight" false !got);
    test_case "partition blocks cross traffic only" `Quick (fun () ->
        let engine, net = setup 3 in
        let got = ref [] in
        for i = 0 to 2 do
          Network.set_handler net i (fun ~src ~info:_ msg -> got := (src, i, msg) :: !got)
        done;
        Network.set_partition net (fun i -> if i < 2 then 0 else 1);
        Network.send net ~src:0 ~dst:1 ~size:1 "ok";
        Network.send net ~src:0 ~dst:2 ~size:1 "blocked";
        Engine.run engine;
        check int "one delivery" 1 (List.length !got));
    test_case "stats count bytes" `Quick (fun () ->
        let engine, net = setup 2 in
        Network.set_handler net 1 (fun ~src:_ ~info:_ _ -> ());
        Network.send net ~src:0 ~dst:1 ~size:123 "m";
        Engine.run engine;
        check int "sent" 123 (Network.stats net 0).Network.bytes_sent;
        check int "received" 123 (Network.stats net 1).Network.bytes_received);
    test_case "loss rate drops roughly the right fraction" `Quick (fun () ->
        let engine, net = setup 2 in
        let got = ref 0 in
        Network.set_handler net 1 (fun ~src:_ ~info:_ _ -> incr got);
        Network.set_loss_rate net 0.5;
        for _ = 1 to 1000 do
          Network.send net ~src:0 ~dst:1 ~size:1 "m"
        done;
        Engine.run engine;
        check bool "about half" true (!got > 350 && !got < 650));
  ]

let latency_tests =
  let open Alcotest in
  [
    test_case "constant" `Quick (fun () ->
        let r = Rng.create ~seed:1 in
        check (float 1e-12) "exact" 0.4 (Latency.sample (Latency.Constant 0.4) r));
    test_case "uniform in bounds" `Quick (fun () ->
        let r = Rng.create ~seed:1 in
        for _ = 1 to 1000 do
          let s = Latency.sample (Latency.Uniform { lo = 0.1; hi = 0.2 }) r in
          check bool "bounds" true (s >= 0.1 && s < 0.2)
        done);
    test_case "jittered tail" `Quick (fun () ->
        let r = Rng.create ~seed:1 in
        let model =
          Latency.Jittered { base = 0.01; jitter = 0.01; spike_prob = 0.2; spike = 1.0 }
        in
        let spikes = ref 0 in
        for _ = 1 to 1000 do
          if Latency.sample model r > 0.05 then incr spikes
        done;
        check bool "some spikes" true (!spikes > 100 && !spikes < 350));
  ]

let () =
  Alcotest.run "sim"
    [
      ("engine", engine_tests);
      ("heap", [ QCheck_alcotest.to_alcotest heap_prop ]);
      ("clock", [ QCheck_alcotest.to_alcotest clock_monotonic_prop ]);
      ("rng", rng_tests);
      ("network", network_tests);
      ("latency", latency_tests);
    ]
