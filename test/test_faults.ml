(* Fault injection & crash recovery: the Scenario fault interpreter, the
   Validator crash/restart path (archive catchup + straggler help), and the
   regression tests for the flood/dedup/busy-time fixes that rode along. *)

open Stellar_node

let scheme =
  (module Stellar_crypto.Sim_sig : Stellar_crypto.Sig_intf.SCHEME with type secret = string)

let payment ~accounts ~seqs i =
  let j = (i + 1) mod Array.length accounts in
  let src = accounts.(i) and dst = accounts.(j) in
  seqs.(i) <- seqs.(i) + 1;
  let tx =
    Stellar_ledger.Tx.make ~source:src.Genesis.public ~seq_num:seqs.(i)
      [
        Stellar_ledger.Tx.op
          (Stellar_ledger.Tx.Payment
             {
               destination = dst.Genesis.public;
               asset = Stellar_ledger.Asset.native;
               amount = 100;
             });
      ]
  in
  Stellar_ledger.Tx.sign tx ~secret:src.Genesis.secret ~public:src.Genesis.public ~scheme

let scenario_with_faults ?(n = 5) ?(duration = 45.0) ?(rate = 4.0) ?(seed = 21) faults =
  Scenario.run
    {
      (Scenario.default ~spec:(Topology.all_to_all ~n)) with
      Scenario.n_accounts = 50;
      tx_rate = rate;
      duration;
      seed;
      observe = true;
      faults;
    }

let trace_of r =
  match r.Scenario.telemetry with
  | Some c -> Stellar_obs.Collector.trace c
  | None -> Alcotest.fail "scenario ran without telemetry"

(* ---------- fault schedule validation ---------- *)

let validate_tests =
  let open Alcotest in
  let ok s = Result.is_ok (Fault.validate ~n_nodes:4 s) in
  [
    test_case "well-formed schedule accepted" `Quick (fun () ->
        check bool "ok" true
          (ok
             [
               Fault.Crash { node = 1; at = 5.0 };
               Fault.Restart { node = 1; at = 10.0 };
               Fault.Loss { rate = 0.1; from_ = 2.0; until_ = 4.0 };
               Fault.Partition { at = 12.0; groups = [ (0, 0); (1, 0); (2, 1); (3, 1) ] };
               Fault.Heal { at = 20.0 };
               Fault.Reflood { node = 0; at = 15.0; copies = 3 };
             ]));
    test_case "malformed schedules rejected" `Quick (fun () ->
        check bool "node out of range" false (ok [ Fault.Crash { node = 9; at = 1.0 } ]);
        check bool "negative time" false (ok [ Fault.Crash { node = 0; at = -1.0 } ]);
        check bool "restart without crash" false (ok [ Fault.Restart { node = 0; at = 5.0 } ]);
        check bool "double crash" false
          (ok [ Fault.Crash { node = 0; at = 1.0 }; Fault.Crash { node = 0; at = 2.0 } ]);
        check bool "restart before crash in time" false
          (ok [ Fault.Crash { node = 0; at = 9.0 }; Fault.Restart { node = 0; at = 5.0 } ]);
        check bool "loss rate > 1" false
          (ok [ Fault.Loss { rate = 1.5; from_ = 0.0; until_ = 1.0 } ]);
        check bool "empty loss window" false
          (ok [ Fault.Loss { rate = 0.1; from_ = 3.0; until_ = 3.0 } ]);
        check bool "partition missing nodes" false
          (ok [ Fault.Partition { at = 1.0; groups = [ (0, 0); (1, 1) ] } ]);
        check bool "partition duplicate node" false
          (ok [ Fault.Partition { at = 1.0; groups = [ (0, 0); (0, 1); (2, 0); (3, 0) ] } ]);
        check bool "zero reflood copies" false
          (ok [ Fault.Reflood { node = 0; at = 1.0; copies = 0 } ]));
    test_case "scenario rejects invalid schedule" `Quick (fun () ->
        match scenario_with_faults ~duration:1.0 [ Fault.Restart { node = 0; at = 1.0 } ] with
        | exception Failure _ -> ()
        | _ -> fail "invalid schedule accepted");
  ]

(* ---------- crash / restart round trip ---------- *)

let recovery_tests =
  let open Alcotest in
  [
    test_case "crashed validator rejoins via archive catchup and converges" `Quick
      (fun () ->
        let r =
          scenario_with_faults
            [
              Fault.Crash { node = 4; at = 8.0 };
              Fault.Restart { node = 4; at = 22.0 };
            ]
        in
        check bool "converged" true r.Scenario.converged;
        check bool "not diverged" false r.Scenario.diverged;
        (* the restarted node's chain matches the others' *)
        let c4 = List.assoc 4 r.Scenario.chains and c0 = List.assoc 0 r.Scenario.chains in
        let common = min (List.length c4) (List.length c0) in
        check bool "closed ledgers" true (common > 5);
        check bool "identical prefix" true
          (List.filteri (fun i _ -> i < common) c4
          = List.filteri (fun i _ -> i < common) c0);
        (* catchup events were traced *)
        let trace = trace_of r in
        let crash = ref 0 and restart = ref 0 and cu_begin = ref 0 and cu_done = ref 0 in
        Stellar_obs.Trace.iter trace (fun s ->
            if s.Stellar_obs.Trace.node = 4 then
              match s.Stellar_obs.Trace.event with
              | Stellar_obs.Event.Node_crash -> incr crash
              | Stellar_obs.Event.Node_restart -> incr restart
              | Stellar_obs.Event.Catchup_begin _ -> incr cu_begin
              | Stellar_obs.Event.Catchup_done { to_seq; replayed } ->
                  incr cu_done;
                  check bool "caught up past genesis" true (to_seq > 0);
                  check bool "replay count sane" true (replayed >= 0)
              | _ -> ());
        check int "one crash" 1 !crash;
        check int "one restart" 1 !restart;
        check int "one catchup begin" 1 !cu_begin;
        check int "one catchup done" 1 !cu_done;
        (* the recovery report pairs it all up with a finite time-to-recover *)
        match Stellar_obs.Report.recoveries ~interval:5.0 trace with
        | [ rc ] ->
            check int "node" 4 rc.Stellar_obs.Report.rec_node;
            check bool "resynced" true (rc.Stellar_obs.Report.recover_s <> None);
            check bool "recovered quickly" true
              (Option.get rc.Stellar_obs.Report.recover_s < 15.0)
        | l -> fail (Printf.sprintf "expected 1 recovery, got %d" (List.length l)));
    test_case "partition heals and the minority converges" `Quick (fun () ->
        let r =
          scenario_with_faults ~duration:50.0
            [
              Fault.Partition
                { at = 10.0; groups = [ (0, 0); (1, 0); (2, 0); (3, 1); (4, 1) ] };
              Fault.Heal { at = 25.0 };
            ]
        in
        check bool "converged" true r.Scenario.converged;
        let trace = trace_of r in
        match Stellar_obs.Report.heals ~interval:5.0 trace with
        | [ h ] ->
            check (list int) "lagged minority" [ 3; 4 ]
              (List.map fst h.Stellar_obs.Report.lagged |> List.sort compare);
            check bool "all resynced" true (h.Stellar_obs.Report.heal_recover_s <> None)
        | l -> fail (Printf.sprintf "expected 1 heal, got %d" (List.length l)));
    test_case "reflooding Byzantine peer wastes bytes but cannot stall" `Quick (fun () ->
        let r =
          scenario_with_faults ~duration:30.0
            [ Fault.Reflood { node = 1; at = 12.0; copies = 5 } ]
        in
        check bool "converged" true r.Scenario.converged;
        (* peers absorbed the copies in their dedup tables *)
        let dups = ref 0 in
        Stellar_obs.Trace.iter (trace_of r) (fun s ->
            match s.Stellar_obs.Trace.event with
            | Stellar_obs.Event.Dedup_drop _ -> incr dups
            | _ -> ());
        check bool "duplicates dropped" true (!dups > 0));
  ]

(* ---------- satellite regressions ---------- *)

let regression_tests =
  let open Alcotest in
  [
    test_case "down node accrues no busy time (restart sees idle CPU)" `Quick (fun () ->
        let engine = Stellar_sim.Engine.create () in
        let rng = Stellar_sim.Rng.create ~seed:5 in
        let network =
          Stellar_sim.Network.create ~engine ~rng ~n:2
            ~latency:(Stellar_sim.Latency.Constant 0.001)
            ~processing:(fun _ -> 0.5)
            ()
        in
        let waits = ref [] in
        Stellar_sim.Network.set_handler network 1 (fun ~src:_ ~info _ ->
            waits := info.Stellar_sim.Network.wait_s :: !waits);
        Stellar_sim.Network.set_down network 1 true;
        (* five messages arrive while node 1 is down: without the fix each
           would advance its CPU queue by 0.5s even though none is
           delivered *)
        for _ = 1 to 5 do
          Stellar_sim.Network.send network ~src:0 ~dst:1 ~size:100 ()
        done;
        Stellar_sim.Engine.run ~until:1.0 engine;
        check int "nothing delivered while down" 0 (List.length !waits);
        Stellar_sim.Network.set_down network 1 false;
        Stellar_sim.Network.send network ~src:0 ~dst:1 ~size:100 ();
        Stellar_sim.Engine.run ~until:3.0 engine;
        match !waits with
        | [ w ] -> check bool "no phantom backlog" true (w < 1e-9)
        | l -> fail (Printf.sprintf "expected 1 delivery, got %d" (List.length l)));
    test_case "flood path encodes each message exactly once per node" `Quick (fun () ->
        let engine = Stellar_sim.Engine.create () in
        let rng = Stellar_sim.Rng.create ~seed:6 in
        let network =
          Stellar_sim.Network.create ~engine ~rng ~n:2
            ~latency:(Stellar_sim.Latency.Constant 0.001) ()
        in
        let genesis, accounts = Genesis.make ~n_accounts:4 () in
        let spec = Topology.all_to_all ~n:2 in
        let qset = Scp.Quorum_set.majority (Array.to_list (Topology.node_ids spec)) in
        let mk i =
          Validator.create ~network ~index:i
            ~peers:[ 1 - i ]
            ~config:
              {
                (Stellar_herder.Herder.default_config
                   ~seed:(spec.Topology.validator_seed i) ~qset)
                with
                Stellar_herder.Herder.is_validator = false;
              }
            ~genesis ()
        in
        let v0 = mk 0 and v1 = mk 1 in
        ignore v1;
        let seqs = Array.make 4 0 in
        let signed = payment ~accounts ~seqs 0 in
        let before = Message.encode_count () in
        Validator.submit_tx v0 signed;
        Stellar_sim.Engine.run ~until:1.0 engine;
        (* one encode at the origin's flood, one at the receiver's handle;
           the receiver's forward reuses the handle's bytes and fans out to
           nobody (its only peer is the source) *)
        check int "two encodes total" 2 (Message.encode_count () - before));
    test_case "flood dedup table stays bounded (entries expire with slots)" `Quick
      (fun () ->
        let spec = Topology.all_to_all ~n:4 in
        let engine = Stellar_sim.Engine.create () in
        let rng = Stellar_sim.Rng.create ~seed:7 in
        let network =
          Stellar_sim.Network.create ~engine ~rng ~n:4
            ~latency:Stellar_sim.Latency.datacenter ()
        in
        let genesis, accounts = Genesis.make ~n_accounts:20 () in
        let mk i =
          Validator.create ~network ~index:i
            ~peers:(spec.Topology.peers_of i)
            ~config:
              (Stellar_herder.Herder.default_config ~seed:(spec.Topology.validator_seed i)
                 ~qset:(spec.Topology.qset_of i))
            ~genesis ()
        in
        let vs = Array.init 4 mk in
        Array.iter Validator.start vs;
        let seqs = Array.make 20 0 in
        let sent = ref 0 in
        let rec load () =
          if Stellar_sim.Engine.now engine < 115.0 then begin
            Validator.submit_tx vs.(!sent mod 4) (payment ~accounts ~seqs (!sent mod 20));
            incr sent;
            ignore (Stellar_sim.Engine.schedule engine ~delay:0.4 load)
          end
        in
        ignore (Stellar_sim.Engine.schedule engine ~delay:0.2 load);
        Stellar_sim.Engine.run ~until:120.0 engine;
        Array.iter Validator.stop vs;
        (* ~24 ledgers, ~290 submitted txs: an unbounded table would hold
           every envelope/tx/txset ever flooded (>500 entries); expiry keeps
           only the last few slots' worth *)
        check bool "made progress" true
          (Stellar_herder.Herder.ledger_seq (Validator.herder vs.(0)) >= 20);
        Array.iter
          (fun v ->
            let sz = Validator.seen_size v in
            check bool (Printf.sprintf "node %d seen table bounded (%d)" (Validator.index v) sz)
              true (sz < 200))
          vs;
        check bool "helped memo bounded" true (Validator.helped_size vs.(0) < 50));
  ]

let () =
  Alcotest.run "faults"
    [
      ("validate", validate_tests);
      ("recovery", recovery_tests);
      ("regressions", regression_tests);
    ]
