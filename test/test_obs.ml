(* Tests for the observability subsystem (lib/obs): metric registries,
   structured tracing, spans, report derivation, and the determinism
   contract BENCH_phases.json depends on. *)

module Obs = Stellar_obs

(* ---- registry ---- *)

let test_counter_monotonic () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "scp.ballot.prepare" in
  let prev = ref 0 in
  for i = 1 to 100 do
    if i mod 3 = 0 then Obs.Registry.add c 2 else Obs.Registry.incr c;
    let v = Obs.Registry.counter_value r "scp.ballot.prepare" in
    Alcotest.(check bool) "monotone" true (v > !prev);
    prev := v
  done;
  (* re-registration returns the same handle *)
  let c' = Obs.Registry.counter r "scp.ballot.prepare" in
  Obs.Registry.incr c';
  Alcotest.(check int) "shared handle" (!prev + 1)
    (Obs.Registry.counter_value r "scp.ballot.prepare")

let test_kind_mismatch () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.counter r "x");
  Alcotest.check_raises "counter vs gauge"
    (Invalid_argument "Registry: x already registered as a counter, wanted a gauge")
    (fun () -> ignore (Obs.Registry.gauge r "x"))

let test_merge () =
  let a = Obs.Registry.create () and b = Obs.Registry.create () in
  Obs.Registry.add (Obs.Registry.counter a "c") 3;
  Obs.Registry.add (Obs.Registry.counter b "c") 4;
  Obs.Registry.set (Obs.Registry.gauge a "g") 1.5;
  Obs.Registry.set (Obs.Registry.gauge b "g") 2.5;
  Obs.Registry.observe (Obs.Registry.histogram a "h") 0.01;
  Obs.Registry.observe (Obs.Registry.histogram b "h") 0.02;
  let m = Obs.Registry.merge [ a; b ] in
  Alcotest.(check int) "counters add" 7 (Obs.Registry.counter_value m "c");
  Alcotest.(check (float 1e-9)) "gauges sum" 4.0 (Obs.Registry.gauge_value m "g");
  match Obs.Registry.summary m "h" with
  | Some s -> Alcotest.(check int) "histogram counts add" 2 s.Obs.Registry.count
  | None -> Alcotest.fail "merged histogram missing"

(* Histogram percentile estimates agree exactly with the list-based
   Stellar_node.Metrics.percentile when every sample sits on a bucket
   bound (the estimate is the bucket's upper bound under the same
   nearest-rank convention). *)
let test_histogram_percentiles () =
  let bounds = Obs.Registry.default_bounds in
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram r "lat" in
  let samples = ref [] in
  (* an uneven spread over the bound values, including repeats *)
  Array.iteri
    (fun i b ->
      let reps = 1 + (i mod 4) in
      for _ = 1 to reps do
        Obs.Registry.observe h b;
        samples := b :: !samples
      done)
    bounds;
  let sorted = Array.of_list (List.sort Float.compare !samples) in
  List.iter
    (fun q ->
      let exact = Stellar_node.Metrics.percentile sorted q in
      let est = Obs.Registry.percentile_of h q in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "p%.0f" (q *. 100.0))
        exact est)
    [ 0.0; 0.5; 0.75; 0.9; 0.99; 1.0 ]

(* ---- spans ---- *)

let test_span_nesting () =
  let clock = ref 0.0 in
  let trace = Obs.Trace.create () in
  let reg = Obs.Registry.create () in
  let sink = Obs.Sink.make ~trace ~node:3 ~now:(fun () -> !clock) reg in
  let outer = Obs.Sink.span_begin sink ~name:"close" ~slot:7 in
  clock := 1.0;
  let inner = Obs.Sink.span_begin sink ~name:"close" ~slot:7 in
  clock := 2.0;
  Obs.Sink.span_end inner;
  clock := 5.0;
  Obs.Sink.span_end outer;
  (match Obs.Report.spans trace with
  | [ (n1, "close", 7, t0_in, t1_in); (n2, "close", 7, t0_out, t1_out) ] ->
      Alcotest.(check int) "node" 3 n1;
      Alcotest.(check int) "node" 3 n2;
      (* same-key spans pair LIFO: inner completes first *)
      Alcotest.(check (float 1e-9)) "inner t0" 1.0 t0_in;
      Alcotest.(check (float 1e-9)) "inner t1" 2.0 t1_in;
      Alcotest.(check (float 1e-9)) "outer t0" 0.0 t0_out;
      Alcotest.(check (float 1e-9)) "outer t1" 5.0 t1_out
  | l -> Alcotest.failf "expected 2 paired spans, got %d" (List.length l));
  (* durations feed the histogram named after the span *)
  match Obs.Registry.summary reg "close" with
  | Some s -> Alcotest.(check int) "span histogram count" 2 s.Obs.Registry.count
  | None -> Alcotest.fail "span histogram missing"

let test_with_span_exception_safe () =
  let trace = Obs.Trace.create () in
  let sink = Obs.Sink.make ~trace ~node:0 ~now:(fun () -> 0.0) (Obs.Registry.create ()) in
  (try Obs.Sink.with_span sink ~name:"s" ~slot:1 (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 1 (List.length (Obs.Report.spans trace))

(* ---- null sink is inert ---- *)

let test_null_sink () =
  Alcotest.(check bool) "disabled" false (Obs.Sink.enabled Obs.Sink.null);
  Obs.Sink.incr Obs.Sink.null "c";
  Obs.Sink.set_gauge Obs.Sink.null "g" 1.0;
  Obs.Sink.observe Obs.Sink.null "h" 1.0;
  Obs.Sink.emit Obs.Sink.null (Obs.Event.Externalize { slot = 1 });
  Obs.Sink.with_span Obs.Sink.null ~name:"s" ~slot:1 (fun () -> ());
  Alcotest.(check int) "no metrics recorded" 0
    (List.length (Obs.Registry.names (Obs.Sink.metrics Obs.Sink.null)))

(* ---- network stats migration (satellite 2) ---- *)

let test_network_stats_wrapper () =
  let engine = Stellar_sim.Engine.create () in
  let rng = Stellar_sim.Rng.create ~seed:42 in
  let net =
    Stellar_sim.Network.create ~engine ~rng ~n:2 ~latency:Stellar_sim.Latency.datacenter ()
  in
  Stellar_sim.Network.set_handler net 1 (fun ~src:_ _ -> ());
  Stellar_sim.Network.send net ~src:0 ~dst:1 ~size:100 "hello";
  Stellar_sim.Network.send net ~src:0 ~dst:1 ~size:50 "again";
  Stellar_sim.Engine.run engine;
  let s0 = Stellar_sim.Network.stats net 0 and s1 = Stellar_sim.Network.stats net 1 in
  Alcotest.(check int) "sent msgs" 2 s0.Stellar_sim.Network.msgs_sent;
  Alcotest.(check int) "sent bytes" 150 s0.Stellar_sim.Network.bytes_sent;
  Alcotest.(check int) "recv msgs" 2 s1.Stellar_sim.Network.msgs_received;
  Alcotest.(check int) "recv bytes" 150 s1.Stellar_sim.Network.bytes_received;
  (* the wrapper reads straight from the registry *)
  let reg0 = Stellar_sim.Network.registry net 0 in
  Alcotest.(check int) "registry backs stats" s0.Stellar_sim.Network.bytes_sent
    (Obs.Registry.counter_value reg0 "overlay.bytes.sent")

(* ---- end-to-end determinism (the BENCH_phases.json contract) ---- *)

let observed_run seed =
  let spec = Stellar_node.Topology.all_to_all ~n:4 in
  Stellar_node.Scenario.run
    {
      (Stellar_node.Scenario.default ~spec) with
      Stellar_node.Scenario.tx_rate = 10.0;
      duration = 30.0;
      seed;
      observe = true;
    }

let test_trace_deterministic () =
  let r1 = observed_run 5 and r2 = observed_run 5 in
  let t1 = Option.get r1.Stellar_node.Scenario.telemetry in
  let t2 = Option.get r2.Stellar_node.Scenario.telemetry in
  let j1 = Obs.Trace.to_jsonl (Obs.Collector.trace t1) in
  let j2 = Obs.Trace.to_jsonl (Obs.Collector.trace t2) in
  Alcotest.(check bool) "trace non-empty" true (String.length j1 > 0);
  Alcotest.(check string) "JSONL byte-identical" j1 j2;
  let report c =
    let tr = Obs.Collector.trace c in
    Obs.Report.breakdown_json (Obs.Report.breakdown tr)
    ^ Obs.Report.phases_json (Obs.Report.slot_phases tr)
    ^ Obs.Report.flood_json (Obs.Report.flood_stats tr)
  in
  Alcotest.(check string) "derived report identical" (report t1) (report t2)

let test_trace_phases_sane () =
  let r = observed_run 5 in
  let c = Option.get r.Stellar_node.Scenario.telemetry in
  let ph = Obs.Report.slot_phases (Obs.Collector.trace c) in
  Alcotest.(check bool) "some slots measured" true (List.length ph > 0);
  List.iter
    (fun p ->
      let open Obs.Report in
      Alcotest.(check bool) "phases non-negative" true
        (p.nomination_s >= 0.0 && p.ballot_s >= 0.0 && p.apply_s > 0.0);
      Alcotest.(check (float 1e-9)) "total = nom + ballot + apply"
        (p.nomination_s +. p.ballot_s +. p.apply_s)
        p.total_s)
    ph;
  (* the herder's own stopwatch and the trace agree on how many ledgers
     node 0 closed *)
  Alcotest.(check bool) "slot count matches ledgers closed" true
    (List.length ph >= r.Stellar_node.Scenario.ledgers_closed - 1);
  (* validator.helped.size gauge appears once pruning has run (satellite 1) *)
  let names = Obs.Registry.names (Obs.Collector.registry c 0) in
  Alcotest.(check bool) "helped-size gauge exported" true
    (List.mem "validator.helped.size" names);
  Alcotest.(check bool) "helped table bounded" true
    (Obs.Registry.gauge_value (Obs.Collector.registry c 0) "validator.helped.size" >= 0.0)

let test_flood_amplification () =
  let r = observed_run 5 in
  let c = Option.get r.Stellar_node.Scenario.telemetry in
  let fl = Obs.Report.flood_stats (Obs.Collector.trace c) in
  Alcotest.(check int) "every node floods" 4 (List.length fl);
  List.iter
    (fun (_, f) ->
      let open Obs.Report in
      Alcotest.(check bool) "amplification >= 1" true (f.amplification >= 1.0);
      Alcotest.(check int) "recv + dropped consistent"
        (f.received + f.dup_dropped)
        (int_of_float (f.amplification *. float_of_int f.received +. 0.5)))
    fl

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter monotonic" `Quick test_counter_monotonic;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
        ] );
      ( "sink",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "with_span exception-safe" `Quick test_with_span_exception_safe;
          Alcotest.test_case "null sink" `Quick test_null_sink;
        ] );
      ( "network",
        [ Alcotest.test_case "stats wrapper" `Quick test_network_stats_wrapper ] );
      ( "determinism",
        [
          Alcotest.test_case "trace byte-identical" `Quick test_trace_deterministic;
          Alcotest.test_case "phase breakdown sane" `Quick test_trace_phases_sane;
          Alcotest.test_case "flood amplification" `Quick test_flood_amplification;
        ] );
    ]
