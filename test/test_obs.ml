(* Tests for the observability subsystem (lib/obs): metric registries,
   structured tracing, spans, report derivation, and the determinism
   contract BENCH_phases.json depends on. *)

module Obs = Stellar_obs

(* ---- registry ---- *)

let test_counter_monotonic () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "scp.ballot.prepare" in
  let prev = ref 0 in
  for i = 1 to 100 do
    if i mod 3 = 0 then Obs.Registry.add c 2 else Obs.Registry.incr c;
    let v = Obs.Registry.counter_value r "scp.ballot.prepare" in
    Alcotest.(check bool) "monotone" true (v > !prev);
    prev := v
  done;
  (* re-registration returns the same handle *)
  let c' = Obs.Registry.counter r "scp.ballot.prepare" in
  Obs.Registry.incr c';
  Alcotest.(check int) "shared handle" (!prev + 1)
    (Obs.Registry.counter_value r "scp.ballot.prepare")

let test_kind_mismatch () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.counter r "x");
  Alcotest.check_raises "counter vs gauge"
    (Invalid_argument "Registry: x already registered as a counter, wanted a gauge")
    (fun () -> ignore (Obs.Registry.gauge r "x"))

let test_merge () =
  let a = Obs.Registry.create () and b = Obs.Registry.create () in
  Obs.Registry.add (Obs.Registry.counter a "c") 3;
  Obs.Registry.add (Obs.Registry.counter b "c") 4;
  Obs.Registry.set (Obs.Registry.gauge a "g") 1.5;
  Obs.Registry.set (Obs.Registry.gauge b "g") 2.5;
  Obs.Registry.observe (Obs.Registry.histogram a "h") 0.01;
  Obs.Registry.observe (Obs.Registry.histogram b "h") 0.02;
  let m = Obs.Registry.merge [ a; b ] in
  Alcotest.(check int) "counters add" 7 (Obs.Registry.counter_value m "c");
  Alcotest.(check (float 1e-9)) "gauges sum" 4.0 (Obs.Registry.gauge_value m "g");
  match Obs.Registry.summary m "h" with
  | Some s -> Alcotest.(check int) "histogram counts add" 2 s.Obs.Registry.count
  | None -> Alcotest.fail "merged histogram missing"

(* Histogram percentile estimates agree exactly with the list-based
   Stellar_node.Metrics.percentile when every sample sits on a bucket
   bound (the estimate is the bucket's upper bound under the same
   nearest-rank convention). *)
let test_histogram_percentiles () =
  let bounds = Obs.Registry.default_bounds in
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram r "lat" in
  let samples = ref [] in
  (* an uneven spread over the bound values, including repeats *)
  Array.iteri
    (fun i b ->
      let reps = 1 + (i mod 4) in
      for _ = 1 to reps do
        Obs.Registry.observe h b;
        samples := b :: !samples
      done)
    bounds;
  let sorted = Array.of_list (List.sort Float.compare !samples) in
  List.iter
    (fun q ->
      let exact = Stellar_node.Metrics.percentile sorted q in
      let est = Obs.Registry.percentile_of h q in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "p%.0f" (q *. 100.0))
        exact est)
    [ 0.0; 0.5; 0.75; 0.9; 0.99; 1.0 ]

(* ---- spans ---- *)

let test_span_nesting () =
  let clock = ref 0.0 in
  let trace = Obs.Trace.create () in
  let reg = Obs.Registry.create () in
  let sink = Obs.Sink.make ~trace ~node:3 ~now:(fun () -> !clock) reg in
  let outer = Obs.Sink.span_begin sink ~name:"close" ~slot:7 in
  clock := 1.0;
  let inner = Obs.Sink.span_begin sink ~name:"close" ~slot:7 in
  clock := 2.0;
  Obs.Sink.span_end inner;
  clock := 5.0;
  Obs.Sink.span_end outer;
  (match Obs.Report.spans trace with
  | [ (n1, "close", 7, t0_in, t1_in); (n2, "close", 7, t0_out, t1_out) ] ->
      Alcotest.(check int) "node" 3 n1;
      Alcotest.(check int) "node" 3 n2;
      (* same-key spans pair LIFO: inner completes first *)
      Alcotest.(check (float 1e-9)) "inner t0" 1.0 t0_in;
      Alcotest.(check (float 1e-9)) "inner t1" 2.0 t1_in;
      Alcotest.(check (float 1e-9)) "outer t0" 0.0 t0_out;
      Alcotest.(check (float 1e-9)) "outer t1" 5.0 t1_out
  | l -> Alcotest.failf "expected 2 paired spans, got %d" (List.length l));
  (* durations feed the histogram named after the span *)
  match Obs.Registry.summary reg "close" with
  | Some s -> Alcotest.(check int) "span histogram count" 2 s.Obs.Registry.count
  | None -> Alcotest.fail "span histogram missing"

let test_with_span_exception_safe () =
  let trace = Obs.Trace.create () in
  let sink = Obs.Sink.make ~trace ~node:0 ~now:(fun () -> 0.0) (Obs.Registry.create ()) in
  (try Obs.Sink.with_span sink ~name:"s" ~slot:1 (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 1 (List.length (Obs.Report.spans trace))

(* ---- null sink is inert ---- *)

let test_null_sink () =
  Alcotest.(check bool) "disabled" false (Obs.Sink.enabled Obs.Sink.null);
  Obs.Sink.incr Obs.Sink.null "c";
  Obs.Sink.set_gauge Obs.Sink.null "g" 1.0;
  Obs.Sink.observe Obs.Sink.null "h" 1.0;
  Obs.Sink.emit Obs.Sink.null (Obs.Event.Externalize { slot = 1 });
  Obs.Sink.with_span Obs.Sink.null ~name:"s" ~slot:1 (fun () -> ());
  Alcotest.(check int) "no metrics recorded" 0
    (List.length (Obs.Registry.names (Obs.Sink.metrics Obs.Sink.null)))

(* ---- network stats migration (satellite 2) ---- *)

let test_network_stats_wrapper () =
  let engine = Stellar_sim.Engine.create () in
  let rng = Stellar_sim.Rng.create ~seed:42 in
  let net =
    Stellar_sim.Network.create ~engine ~rng ~n:2 ~latency:Stellar_sim.Latency.datacenter ()
  in
  Stellar_sim.Network.set_handler net 1 (fun ~src:_ ~info:_ _ -> ());
  Stellar_sim.Network.send net ~src:0 ~dst:1 ~size:100 "hello";
  Stellar_sim.Network.send net ~src:0 ~dst:1 ~size:50 "again";
  Stellar_sim.Engine.run engine;
  let s0 = Stellar_sim.Network.stats net 0 and s1 = Stellar_sim.Network.stats net 1 in
  Alcotest.(check int) "sent msgs" 2 s0.Stellar_sim.Network.msgs_sent;
  Alcotest.(check int) "sent bytes" 150 s0.Stellar_sim.Network.bytes_sent;
  Alcotest.(check int) "recv msgs" 2 s1.Stellar_sim.Network.msgs_received;
  Alcotest.(check int) "recv bytes" 150 s1.Stellar_sim.Network.bytes_received;
  (* the wrapper reads straight from the registry *)
  let reg0 = Stellar_sim.Network.registry net 0 in
  Alcotest.(check int) "registry backs stats" s0.Stellar_sim.Network.bytes_sent
    (Obs.Registry.counter_value reg0 "overlay.bytes.sent")

(* ---- end-to-end determinism (the BENCH_phases.json contract) ---- *)

let observed_run seed =
  let spec = Stellar_node.Topology.all_to_all ~n:4 in
  Stellar_node.Scenario.run
    {
      (Stellar_node.Scenario.default ~spec) with
      Stellar_node.Scenario.tx_rate = 10.0;
      duration = 30.0;
      seed;
      observe = true;
    }

let test_trace_deterministic () =
  let r1 = observed_run 5 and r2 = observed_run 5 in
  let t1 = Option.get r1.Stellar_node.Scenario.telemetry in
  let t2 = Option.get r2.Stellar_node.Scenario.telemetry in
  let j1 = Obs.Trace.to_jsonl (Obs.Collector.trace t1) in
  let j2 = Obs.Trace.to_jsonl (Obs.Collector.trace t2) in
  Alcotest.(check bool) "trace non-empty" true (String.length j1 > 0);
  Alcotest.(check string) "JSONL byte-identical" j1 j2;
  let report c =
    let tr = Obs.Collector.trace c in
    Obs.Report.breakdown_json (Obs.Report.breakdown tr)
    ^ Obs.Report.phases_json (Obs.Report.slot_phases tr)
    ^ Obs.Report.flood_json (Obs.Report.flood_stats tr)
  in
  Alcotest.(check string) "derived report identical" (report t1) (report t2)

let test_trace_phases_sane () =
  let r = observed_run 5 in
  let c = Option.get r.Stellar_node.Scenario.telemetry in
  let ph = Obs.Report.slot_phases (Obs.Collector.trace c) in
  Alcotest.(check bool) "some slots measured" true (List.length ph > 0);
  List.iter
    (fun p ->
      let open Obs.Report in
      Alcotest.(check bool) "phases non-negative" true
        (p.nomination_s >= 0.0 && p.ballot_s >= 0.0 && p.apply_s > 0.0);
      Alcotest.(check (float 1e-9)) "total = nom + ballot + apply"
        (p.nomination_s +. p.ballot_s +. p.apply_s)
        p.total_s)
    ph;
  (* the herder's own stopwatch and the trace agree on how many ledgers
     node 0 closed *)
  Alcotest.(check bool) "slot count matches ledgers closed" true
    (List.length ph >= r.Stellar_node.Scenario.ledgers_closed - 1);
  (* validator.helped.size gauge appears once pruning has run (satellite 1) *)
  let names = Obs.Registry.names (Obs.Collector.registry c 0) in
  Alcotest.(check bool) "helped-size gauge exported" true
    (List.mem "validator.helped.size" names);
  Alcotest.(check bool) "helped table bounded" true
    (Obs.Registry.gauge_value (Obs.Collector.registry c 0) "validator.helped.size" >= 0.0)

let test_flood_amplification () =
  let r = observed_run 5 in
  let c = Option.get r.Stellar_node.Scenario.telemetry in
  let fl = Obs.Report.flood_stats (Obs.Collector.trace c) in
  Alcotest.(check int) "every node floods" 4 (List.length fl);
  List.iter
    (fun (_, f) ->
      let open Obs.Report in
      Alcotest.(check bool) "amplification >= 1" true (f.amplification >= 1.0);
      Alcotest.(check int) "recv + dropped consistent"
        (f.received + f.dup_dropped)
        (int_of_float (f.amplification *. float_of_int f.received +. 0.5)))
    fl

(* ---- causal tracing: flood DAG, tx lifecycle, critical path ---- *)

(* one shared observed run for the causal-section tests *)
let causal_trace =
  lazy
    (let r = observed_run 9 in
     (r, Obs.Collector.trace (Option.get r.Stellar_node.Scenario.telemetry)))

(* Every delivery names the send that produced it: send ids are unique per
   Flood_send, every Flood_recv's send_id resolves to exactly one of them,
   the send precedes the recv in time, and the payload sizes agree. *)
let test_causal_pairing () =
  let _, trace = Lazy.force causal_trace in
  let sends = Hashtbl.create 1024 in
  let n_recv = ref 0 in
  Obs.Trace.iter trace (fun s ->
      match s.Obs.Trace.event with
      | Obs.Event.Flood_send { msg_id; bytes; _ } ->
          Alcotest.(check bool) "msg ids tagged" true (msg_id >= 1);
          Alcotest.(check bool)
            (Printf.sprintf "msg id %d unique" msg_id)
            false (Hashtbl.mem sends msg_id);
          Hashtbl.add sends msg_id (s.Obs.Trace.time, bytes)
      | _ -> ());
  Obs.Trace.iter trace (fun s ->
      match s.Obs.Trace.event with
      | Obs.Event.Flood_recv { send_id; bytes; link_s; wait_s; proc_s; _ } ->
          incr n_recv;
          (match Hashtbl.find_opt sends send_id with
          | None -> Alcotest.failf "recv names unknown send id %d" send_id
          | Some (t_send, b_send) ->
              Alcotest.(check bool) "send before recv" true (t_send <= s.Obs.Trace.time);
              Alcotest.(check int) "payload bytes match" b_send bytes;
              (* delivery decomposition reconstructs the trace timestamp *)
              Alcotest.(check (float 1e-9)) "recv time = send + link + wait + proc"
                (t_send +. link_s +. wait_s +. proc_s)
                s.Obs.Trace.time)
      | _ -> ());
  Alcotest.(check bool) "deliveries observed" true (!n_recv > 0)

(* Lifecycle events for each tx appear in causal order, and the scenario's
   own counters corroborate the trace-derived ones. *)
let test_tx_lifecycle () =
  let r, trace = Lazy.force causal_trace in
  let lives = Obs.Report.tx_lives trace in
  let e2e = Obs.Report.e2e_latency trace in
  Alcotest.(check int) "every submitted tx traced"
    r.Stellar_node.Scenario.txs_submitted e2e.Obs.Report.n_submitted;
  Alcotest.(check int) "every applied tx traced" r.Stellar_node.Scenario.txs_applied
    e2e.Obs.Report.n_applied;
  Alcotest.(check bool) "some txs externalized" true (e2e.Obs.Report.n_externalized > 0);
  List.iter
    (fun l ->
      let open Obs.Report in
      match l.submitted with
      | None -> ()
      | Some t_sub ->
          (match l.first_flood with
          | Some t_fl -> Alcotest.(check bool) "submit <= flood" true (t_sub <= t_fl)
          | None -> ());
          (match l.externalized with
          | Some (_, t_ext) ->
              Alcotest.(check bool) "submit <= externalize" true (t_sub <= t_ext);
              (match l.applied with
              | Some t_app ->
                  Alcotest.(check bool) "externalize <= apply" true (t_ext <= t_app)
              | None -> ())
          | None -> ()))
    lives

(* The acceptance criterion: per externalized slot, the critical-path
   attribution (network + timer + cpu) equals the nominate-start →
   externalize duration to within 1 µs of simulated time. *)
let test_critical_path_attribution () =
  let r, trace = Lazy.force causal_trace in
  let cps = Obs.Report.critical_paths trace in
  Alcotest.(check bool) "paths for most closed ledgers" true
    (List.length cps >= r.Stellar_node.Scenario.ledgers_closed - 1);
  List.iter
    (fun cp ->
      let open Obs.Report in
      Alcotest.(check bool) "segments non-negative" true
        (cp.network_s >= 0.0 && cp.timer_s >= 0.0 && cp.cpu_s >= 0.0);
      Alcotest.(check bool) "path has hops or pure-local slot" true
        (cp.hops <> [] || cp.cp_total_s < 0.1);
      Alcotest.(check bool)
        (Printf.sprintf "slot %d: attribution sums to duration (1us)" cp.cp_slot)
        true
        (Float.abs (cp.network_s +. cp.timer_s +. cp.cpu_s -. cp.cp_total_s) < 1e-6);
      Alcotest.(check (float 1e-9)) "total = externalize - start"
        (cp.t_externalize -. cp.t_start) cp.cp_total_s;
      (* hops are causally ordered and intra-slot *)
      ignore
        (List.fold_left
           (fun prev h ->
             Alcotest.(check bool) "hop send <= recv" true (h.sent_at <= h.recv_at);
             Alcotest.(check bool) "hops causally ordered" true (prev <= h.recv_at);
             h.recv_at)
           neg_infinity cp.hops))
    cps

(* The fig-e2e contract: e2e + critical-path JSON byte-identical across two
   same-seed runs. *)
let test_e2e_deterministic () =
  let json seed =
    let r = observed_run seed in
    let tr = Obs.Collector.trace (Option.get r.Stellar_node.Scenario.telemetry) in
    Obs.Report.e2e_json (Obs.Report.e2e_latency tr)
    ^ Obs.Report.critical_paths_json (Obs.Report.critical_paths tr)
  in
  let j1 = json 9 and j2 = json 9 in
  Alcotest.(check bool) "non-empty" true (String.length j1 > 60);
  Alcotest.(check string) "e2e + critical path byte-identical" j1 j2

(* Bounded trace memory (satellite): events past the capacity are dropped
   and counted, never silently lost. *)
let test_trace_capacity () =
  let clock = ref 0.0 in
  let trace = Obs.Trace.create ~capacity:3 () in
  let reg = Obs.Registry.create () in
  let sink = Obs.Sink.make ~trace ~node:0 ~now:(fun () -> !clock) reg in
  for slot = 1 to 5 do
    clock := float_of_int slot;
    Obs.Sink.emit sink (Obs.Event.Externalize { slot })
  done;
  Alcotest.(check int) "capacity respected" 3 (Obs.Trace.length trace);
  Alcotest.(check int) "drops counted on trace" 2 (Obs.Trace.dropped trace);
  Alcotest.(check int) "drops exported as metric" 2
    (Obs.Registry.counter_value reg "obs.trace.dropped");
  (* the retained prefix is the earliest events, untouched *)
  match Obs.Trace.events trace with
  | [ e1; _; e3 ] ->
      Alcotest.(check (float 1e-9)) "first kept" 1.0 e1.Obs.Trace.time;
      Alcotest.(check (float 1e-9)) "third kept" 3.0 e3.Obs.Trace.time
  | l -> Alcotest.failf "expected 3 events, got %d" (List.length l)

(* Dedup drops carry payload bytes (satellite): wasted bandwidth is
   reported in bytes and corroborated by the flood.dup_bytes counter. *)
let test_dedup_bytes () =
  let r, trace = Lazy.force causal_trace in
  let fl = Obs.Report.flood_stats trace in
  let total_dup_bytes =
    List.fold_left (fun a (_, f) -> a + f.Obs.Report.dup_bytes) 0 fl
  in
  Alcotest.(check bool) "duplicates observed" true (total_dup_bytes > 0);
  List.iter
    (fun (_, f) ->
      let open Obs.Report in
      Alcotest.(check bool) "bytes iff drops" true ((f.dup_bytes > 0) = (f.dup_dropped > 0)))
    fl;
  let agg =
    Obs.Collector.aggregate (Option.get r.Stellar_node.Scenario.telemetry)
  in
  Alcotest.(check int) "trace agrees with flood.dup_bytes counter"
    (Obs.Registry.counter_value agg "flood.dup_bytes")
    total_dup_bytes

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter monotonic" `Quick test_counter_monotonic;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
        ] );
      ( "sink",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "with_span exception-safe" `Quick test_with_span_exception_safe;
          Alcotest.test_case "null sink" `Quick test_null_sink;
        ] );
      ( "network",
        [ Alcotest.test_case "stats wrapper" `Quick test_network_stats_wrapper ] );
      ( "determinism",
        [
          Alcotest.test_case "trace byte-identical" `Quick test_trace_deterministic;
          Alcotest.test_case "phase breakdown sane" `Quick test_trace_phases_sane;
          Alcotest.test_case "flood amplification" `Quick test_flood_amplification;
        ] );
      ( "causal",
        [
          Alcotest.test_case "flood send/recv pairing" `Quick test_causal_pairing;
          Alcotest.test_case "tx lifecycle ordering" `Quick test_tx_lifecycle;
          Alcotest.test_case "critical-path attribution" `Quick
            test_critical_path_attribution;
          Alcotest.test_case "e2e report deterministic" `Quick test_e2e_deterministic;
          Alcotest.test_case "trace capacity bound" `Quick test_trace_capacity;
          Alcotest.test_case "dedup wasted bytes" `Quick test_dedup_bytes;
        ] );
    ]
