(* Reusable in-memory SCP network for the protocol tests: N validators over
   the discrete-event simulator, with pluggable quorum sets, faults, and
   Byzantine behaviours. *)

open Scp

type node = {
  id : Types.node_id;
  secret : Stellar_crypto.Sim_sig.secret;
  protocol : Protocol.t;
  externalized : (int * Types.value) list ref;
}

type t = {
  engine : Stellar_sim.Engine.t;
  network : Types.envelope Stellar_sim.Network.t;
  nodes : node array;
  ids : Types.node_id array;
}

(* Deterministic combine: the lexicographically greatest candidate. *)
let combine_max ~slot:_ values =
  match List.sort (fun a b -> String.compare b a) values with
  | v :: _ -> Some v
  | [] -> None

let make ?(latency = Stellar_sim.Latency.Constant 0.005) ?(seed = 42)
    ?(validate = fun ~slot:_ _ -> Driver.Valid) ~n ~qset_of () =
  Stellar_crypto.Sim_sig.reset ();
  let engine = Stellar_sim.Engine.create () in
  let rng = Stellar_sim.Rng.create ~seed in
  let network = Stellar_sim.Network.create ~engine ~rng ~n ~latency () in
  let keys =
    Array.init n (fun i ->
        let seed = Stellar_crypto.Sha256.digest (Printf.sprintf "harness-node-%d" i) in
        Stellar_crypto.Sim_sig.keypair ~seed)
  in
  let ids = Array.map snd keys in
  let nodes =
    Array.init n (fun i ->
        let secret, id = keys.(i) in
        let externalized = ref [] in
        let driver =
          Driver.make
            ~emit_envelope:(fun env ->
              for j = 0 to n - 1 do
                if j <> i then
                  Stellar_sim.Network.send network ~src:i ~dst:j
                    ~size:(Types.envelope_size env) env
              done)
            ~sign:(fun msg -> Stellar_crypto.Sim_sig.sign secret msg)
            ~verify:(fun node_id ~msg ~signature ->
              Stellar_crypto.Sim_sig.verify ~public:node_id ~msg ~signature)
            ~validate_value:validate ~combine_candidates:combine_max
            ~value_externalized:(fun ~slot value ->
              externalized := (slot, value) :: !externalized)
            ~schedule:(fun ~delay f ->
              let timer = Stellar_sim.Engine.schedule engine ~delay f in
              fun () -> Stellar_sim.Engine.cancel timer)
            ()
        in
        let protocol = Protocol.create ~driver ~local_id:id ~qset:(qset_of ids i) in
        { id; secret; protocol; externalized })
  in
  Array.iteri
    (fun i node ->
      Stellar_sim.Network.set_handler network i (fun ~src:_ ~info:_ env ->
          ignore (Protocol.receive_envelope node.protocol env)))
    nodes;
  { engine; network; nodes; ids }

let nominate_all ?(slot = 1) t value_of =
  Array.iteri
    (fun i node ->
      ignore
        (Stellar_sim.Engine.schedule t.engine ~delay:0.0 (fun () ->
             Protocol.nominate node.protocol ~slot ~value:(value_of i) ~prev:"genesis")))
    t.nodes

let run ?(until = 300.0) t = Stellar_sim.Engine.run ~until t.engine

let decisions ?(slot = 1) t =
  Array.map (fun node -> List.assoc_opt slot !(node.externalized)) t.nodes

(* All non-excluded nodes decided, and on the same value. *)
let unanimous ?(slot = 1) ?(except = []) t =
  let vals = ref [] in
  let ok = ref true in
  Array.iteri
    (fun i node ->
      if not (List.mem i except) then
        match List.assoc_opt slot !(node.externalized) with
        | None -> ok := false
        | Some v -> if not (List.mem v !vals) then vals := v :: !vals)
    t.nodes;
  !ok && List.length !vals = 1
