(* The XDR wire-format suite: randomized round-trip properties for every
   codec (seeded by Stellar_sim.Rng, so failures reproduce), strict-decoding
   checks, golden hex vectors pinning the wire format, and the archive blob
   round trip.

   Regenerate the golden vectors with:
     XDR_PRINT_GOLDEN=1 dune exec test/test_xdr.exe -- test golden 2>/dev/null *)

open Stellar_ledger
module Xdr = Stellar_xdr.Xdr
module Rng = Stellar_sim.Rng

let hex = Stellar_crypto.Hex.encode
let sha256 = Stellar_crypto.Sha256.digest

let rng = Rng.create ~seed:0xC0FFEE

(* ---------- random generators ---------- *)

let gen_blob max = Rng.bytes rng (Rng.int rng (max + 1))
let gen_acct () = Rng.bytes rng (1 + Rng.int rng 16)

let gen_asset () =
  if Rng.bool rng then Asset.native
  else Asset.credit ~code:(Rng.bytes rng (1 + Rng.int rng 12)) ~issuer:(gen_acct ())

let gen_price () = Price.make ~n:(1 + Rng.int rng 1_000_000) ~d:(1 + Rng.int rng 1_000_000)

let gen_signer () = { Entry.key = gen_acct (); weight = Rng.int rng 256 }

let gen_account_entry () =
  Entry.Account_entry
    {
      id = gen_acct ();
      balance = Rng.int rng 1_000_000_000;
      seq_num = Rng.int rng 1_000_000;
      num_sub_entries = Rng.int rng 32;
      flags =
        {
          auth_required = Rng.bool rng;
          auth_revocable = Rng.bool rng;
          auth_immutable = Rng.bool rng;
        };
      thresholds =
        {
          master_weight = Rng.int rng 256;
          low = Rng.int rng 256;
          medium = Rng.int rng 256;
          high = Rng.int rng 256;
        };
      signers = List.init (Rng.int rng 3) (fun _ -> gen_signer ());
      home_domain = gen_blob 24;
      inflation_dest = (if Rng.bool rng then Some (gen_acct ()) else None);
    }

let gen_entry () =
  match Rng.int rng 4 with
  | 0 -> gen_account_entry ()
  | 1 ->
      Entry.Trustline_entry
        {
          account = gen_acct ();
          asset = gen_asset ();
          tl_balance = Rng.int rng 1_000_000;
          limit = Rng.int rng 10_000_000;
          authorized = Rng.bool rng;
        }
  | 2 ->
      Entry.Offer_entry
        {
          offer_id = Rng.int rng 1_000_000;
          seller = gen_acct ();
          selling = gen_asset ();
          buying = gen_asset ();
          amount = 1 + Rng.int rng 1_000_000;
          price = gen_price ();
          passive = Rng.bool rng;
        }
  | _ -> Entry.Data_entry { owner = gen_acct (); name = gen_blob 12; value = gen_blob 32 }

let gen_key () =
  match Rng.int rng 4 with
  | 0 -> Entry.Account_key (gen_acct ())
  | 1 -> Entry.Trustline_key (gen_acct (), gen_asset ())
  | 2 -> Entry.Offer_key (Rng.int rng 1_000_000)
  | _ -> Entry.Data_key (gen_acct (), gen_blob 12)

let gen_body () =
  match Rng.int rng 12 with
  | 0 -> Tx.Create_account { destination = gen_acct (); starting_balance = Rng.int rng 100000 }
  | 1 ->
      Tx.Payment
        { destination = gen_acct (); asset = gen_asset (); amount = 1 + Rng.int rng 100000 }
  | 2 ->
      Tx.Path_payment
        {
          send_asset = gen_asset ();
          send_max = 1 + Rng.int rng 100000;
          destination = gen_acct ();
          dest_asset = gen_asset ();
          dest_amount = 1 + Rng.int rng 100000;
          path = List.init (Rng.int rng 3) (fun _ -> gen_asset ());
        }
  | 3 ->
      Tx.Manage_offer
        {
          offer_id = Rng.int rng 1000;
          selling = gen_asset ();
          buying = gen_asset ();
          amount = Rng.int rng 100000;
          price = gen_price ();
          passive = Rng.bool rng;
        }
  | 4 ->
      let opt f = if Rng.bool rng then Some (f ()) else None in
      Tx.Set_options
        {
          master_weight = opt (fun () -> Rng.int rng 256);
          low = opt (fun () -> Rng.int rng 256);
          medium = opt (fun () -> Rng.int rng 256);
          high = opt (fun () -> Rng.int rng 256);
          signer =
            opt (fun () ->
                if Rng.bool rng then Tx.Set_signer (gen_signer ())
                else Tx.Remove_signer (gen_acct ()));
          home_domain = opt (fun () -> gen_blob 24);
          set_auth_required = opt (fun () -> Rng.bool rng);
          set_auth_revocable = opt (fun () -> Rng.bool rng);
          set_auth_immutable = opt (fun () -> Rng.bool rng);
        }
  | 5 -> Tx.Change_trust { asset = gen_asset (); limit = Rng.int rng 10_000_000 }
  | 6 ->
      Tx.Allow_trust
        {
          trustor = gen_acct ();
          asset_code = Rng.bytes rng (1 + Rng.int rng 12);
          authorize = Rng.bool rng;
        }
  | 7 -> Tx.Account_merge { destination = gen_acct () }
  | 8 ->
      Tx.Manage_data
        { name = gen_blob 12; value = (if Rng.bool rng then Some (gen_blob 16) else None) }
  | 9 -> Tx.Bump_sequence { bump_to = Rng.int rng 1_000_000 }
  | 10 -> Tx.Set_inflation_dest { dest = gen_acct () }
  | _ -> Tx.Inflation

let gen_tx () =
  {
    Tx.source = gen_acct ();
    fee = Rng.int rng 10_000;
    seq_num = Rng.int rng 1_000_000;
    time_bounds =
      (if Rng.bool rng then Some { Tx.min_time = Rng.int rng 1000; max_time = Rng.int rng 100000 }
       else None);
    memo =
      (match Rng.int rng 3 with
      | 0 -> Tx.Memo_none
      | 1 -> Tx.Memo_text (gen_blob 28)
      | _ -> Tx.Memo_hash (Rng.bytes rng 32));
    operations =
      List.init (1 + Rng.int rng 3) (fun _ -> { Tx.op_source = None; body = gen_body () });
  }

let gen_signed () =
  {
    Tx.tx = gen_tx ();
    signatures = List.init (Rng.int rng 3) (fun _ -> (gen_acct (), Rng.bytes rng 16));
  }

let gen_header () =
  {
    Header.ledger_seq = Rng.int rng 1_000_000;
    prev_hash = Rng.bytes rng 32;
    scp_value_hash = Rng.bytes rng 32;
    tx_set_hash = Rng.bytes rng 32;
    results_hash = Rng.bytes rng 32;
    snapshot_hash = Rng.bytes rng 32;
    close_time = Rng.int rng 1_000_000;
    base_fee = 100 + Rng.int rng 100;
    base_reserve = Rng.int rng 1_000_000;
    protocol_version = Rng.int rng 20;
    fee_pool = Rng.int rng 1_000_000;
    id_pool = Rng.int rng 1_000_000;
    skip_list = List.init (Rng.int rng 4) (fun _ -> Rng.bytes rng 32);
  }

let rec gen_qset depth =
  let n_vals = 1 + Rng.int rng 4 in
  let validators = List.init n_vals (fun _ -> gen_acct ()) in
  let inner =
    if depth >= 2 then [] else List.init (Rng.int rng 2) (fun _ -> gen_qset (depth + 1))
  in
  let n = List.length validators + List.length inner in
  Scp.Quorum_set.make ~threshold:(1 + Rng.int rng n) ~inner validators

let gen_ballot () =
  {
    Scp.Types.counter =
      (if Rng.int rng 10 = 0 then Scp.Types.Ballot.max_counter else Rng.int rng 1000);
    value = gen_blob 48;
  }

let gen_pledge () =
  match Rng.int rng 4 with
  | 0 ->
      Scp.Types.Nominate
        {
          votes = List.init (Rng.int rng 3) (fun _ -> gen_blob 32);
          accepted = List.init (Rng.int rng 3) (fun _ -> gen_blob 32);
        }
  | 1 ->
      Scp.Types.Prepare
        {
          ballot = gen_ballot ();
          prepared = (if Rng.bool rng then Some (gen_ballot ()) else None);
          prepared_prime = (if Rng.bool rng then Some (gen_ballot ()) else None);
          n_c = Rng.int rng 100;
          n_h = Rng.int rng 100;
        }
  | 2 ->
      Scp.Types.Confirm
        {
          ballot = gen_ballot ();
          n_prepared = Rng.int rng 100;
          n_commit = Rng.int rng 100;
          n_h = Rng.int rng 100;
        }
  | _ -> Scp.Types.Externalize { commit = gen_ballot (); n_h = Rng.int rng 100 }

let gen_statement () =
  {
    Scp.Types.node_id = gen_acct ();
    slot = Rng.int rng 1_000_000;
    quorum_set = gen_qset 0;
    pledge = gen_pledge ();
  }

let gen_envelope () = { Scp.Types.statement = gen_statement (); signature = Rng.bytes rng 32 }

let gen_value () =
  let tags = List.filter (fun _ -> Rng.bool rng) [ 0; 1; 2 ] in
  {
    Stellar_herder.Value.tx_set_hash = Rng.bytes rng 32;
    close_time = Rng.int rng 1_000_000;
    upgrades =
      List.map
        (function
          | 0 -> Stellar_herder.Value.Upgrade_base_fee (100 + Rng.int rng 1000)
          | 1 -> Stellar_herder.Value.Upgrade_base_reserve (1 + Rng.int rng 1000)
          | _ -> Stellar_herder.Value.Upgrade_protocol_version (1 + Rng.int rng 50))
        tags;
  }

let gen_tx_set () =
  Stellar_herder.Tx_set.make ~prev_header_hash:(Rng.bytes rng 32)
    (List.init (Rng.int rng 4) (fun _ -> gen_signed ()))

let gen_message () =
  match Rng.int rng 3 with
  | 0 -> Stellar_node.Message.Envelope (gen_envelope ())
  | 1 -> Stellar_node.Message.Tx_set_msg (gen_tx_set ())
  | _ -> Stellar_node.Message.Tx_msg (gen_signed ())

let gen_item () =
  {
    Stellar_bucket.Bucket.key = gen_key ();
    entry = (if Rng.bool rng then Some (gen_entry ()) else None);
  }

let gen_bucket_list () =
  let bl = ref (Stellar_bucket.Bucket_list.create ~levels:4 ()) in
  for _ = 1 to Rng.int rng 4 do
    bl :=
      Stellar_bucket.Bucket_list.add_batch !bl (List.init (1 + Rng.int rng 4) (fun _ -> gen_item ()))
  done;
  !bl

(* ---------- round-trip properties ---------- *)

let iterations = 100

(* decode ∘ encode = id (structural), and encode ∘ decode = id (bytes): both
   are implied by [Xdr.round_trips] plus the structural equality check. *)
let roundtrip_case name codec gen =
  Alcotest.test_case name `Quick (fun () ->
      for i = 1 to iterations do
        let v = gen () in
        let enc = Xdr.encode codec v in
        Alcotest.(check bool)
          (Printf.sprintf "%s: 4-byte alignment (iter %d)" name i)
          true
          (String.length enc mod 4 = 0);
        (match Xdr.decode codec enc with
        | Error e -> Alcotest.failf "%s: decode failed (iter %d): %s" name i e
        | Ok v' ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: decode(encode v) = v (iter %d)" name i)
              true (v' = v);
            Alcotest.(check string)
              (Printf.sprintf "%s: encode(decode bytes) = bytes (iter %d)" name i)
              (hex enc)
              (hex (Xdr.encode codec v')));
        Alcotest.(check bool)
          (Printf.sprintf "%s: round_trips (iter %d)" name i)
          true (Xdr.round_trips codec v)
      done)

(* Tx_set / Bucket / Bucket_list values are abstract or carry derived
   fields; compare via canonical bytes and hashes instead of (=). *)
let roundtrip_bytes_case name codec gen hash_of =
  Alcotest.test_case name `Quick (fun () ->
      for i = 1 to iterations do
        let v = gen () in
        let enc = Xdr.encode codec v in
        match Xdr.decode codec enc with
        | Error e -> Alcotest.failf "%s: decode failed (iter %d): %s" name i e
        | Ok v' ->
            Alcotest.(check string)
              (Printf.sprintf "%s: canonical bytes (iter %d)" name i)
              (hex enc)
              (hex (Xdr.encode codec v'));
            Alcotest.(check string)
              (Printf.sprintf "%s: hash stable (iter %d)" name i)
              (hex (hash_of v)) (hex (hash_of v'))
      done)

let roundtrip_tests =
  [
    roundtrip_case "price" Price.xdr gen_price;
    roundtrip_case "asset" Asset.xdr gen_asset;
    roundtrip_case "entry key" Entry.key_xdr gen_key;
    roundtrip_case "ledger entry" Entry.entry_xdr gen_entry;
    roundtrip_case "transaction" Tx.xdr gen_tx;
    roundtrip_case "signed transaction" Tx.signed_xdr gen_signed;
    roundtrip_case "ledger header" Header.xdr gen_header;
    roundtrip_case "quorum set" Scp.Quorum_set.xdr (fun () -> gen_qset 0);
    roundtrip_case "scp statement" Scp.Types.statement_xdr gen_statement;
    roundtrip_case "scp envelope" Scp.Types.envelope_xdr gen_envelope;
    roundtrip_case "consensus value" Stellar_herder.Value.xdr gen_value;
    roundtrip_case "bucket item" Stellar_bucket.Bucket.item_xdr gen_item;
    roundtrip_case "overlay message" Stellar_node.Message.xdr gen_message;
    roundtrip_bytes_case "tx set" Stellar_herder.Tx_set.xdr gen_tx_set
      Stellar_herder.Tx_set.hash;
    roundtrip_bytes_case "bucket list" Stellar_bucket.Bucket_list.xdr gen_bucket_list
      Stellar_bucket.Bucket_list.hash;
  ]

(* ---------- primitives & strictness ---------- *)

let prim_tests =
  let open Alcotest in
  [
    test_case "primitive golden vectors" `Quick (fun () ->
        check string "uint32 1" "00000001" (hex (Xdr.encode Xdr.uint32 1));
        check string "uint32 max" "ffffffff" (hex (Xdr.encode Xdr.uint32 0xffff_ffff));
        check string "int32 -1" "ffffffff" (hex (Xdr.encode Xdr.int32 (-1)));
        check string "hyper -1" "ffffffffffffffff" (hex (Xdr.encode Xdr.hyper (-1)));
        check string "hyper 2^40" "0000010000000000" (hex (Xdr.encode Xdr.hyper (1 lsl 40)));
        check string "bool true" "00000001" (hex (Xdr.encode Xdr.bool true));
        check string "str hi (padded)" "0000000268690000" (hex (Xdr.encode (Xdr.str ()) "hi"));
        check string "str empty" "00000000" (hex (Xdr.encode (Xdr.str ()) ""));
        check string "opaque3 abc" "61626300" (hex (Xdr.encode (Xdr.opaque 3) "abc"));
        check string "option none" "00000000" (hex (Xdr.encode (Xdr.option Xdr.uint32) None));
        check string "option some 7" "0000000100000007"
          (hex (Xdr.encode (Xdr.option Xdr.uint32) (Some 7)));
        check string "list [1;2]" "000000020000000100000002"
          (hex (Xdr.encode (Xdr.list Xdr.uint32) [ 1; 2 ])));
    test_case "primitive integer round trips" `Quick (fun () ->
        List.iter
          (fun v -> check bool "int32" true (Xdr.round_trips Xdr.int32 v))
          [ 0; 1; -1; 0x7fff_ffff; -0x8000_0000 ];
        List.iter
          (fun v -> check bool "uint32" true (Xdr.round_trips Xdr.uint32 v))
          [ 0; 1; 0xffff_ffff ];
        List.iter
          (fun v -> check bool "hyper" true (Xdr.round_trips Xdr.hyper v))
          [ 0; 1; -1; max_int; min_int ]);
    test_case "writer range checks" `Quick (fun () ->
        let raises f = match f () with _ -> false | exception Xdr.Error _ -> true in
        check bool "uint32 negative" true (raises (fun () -> Xdr.encode Xdr.uint32 (-1)));
        check bool "uint32 too big" true (raises (fun () -> Xdr.encode Xdr.uint32 0x1_0000_0000));
        check bool "int32 too big" true (raises (fun () -> Xdr.encode Xdr.int32 0x8000_0000));
        check bool "opaque wrong length" true
          (raises (fun () -> Xdr.encode (Xdr.opaque 4) "abc"));
        check bool "str over max" true
          (raises (fun () -> Xdr.encode (Xdr.str ~max:2 ()) "abc")));
    test_case "strict decoding rejects malformed input" `Quick (fun () ->
        let is_err = function Error _ -> true | Ok _ -> false in
        check bool "truncated" true (is_err (Xdr.decode Xdr.uint32 "abc"));
        check bool "trailing bytes" true
          (is_err (Xdr.decode Xdr.uint32 "\x00\x00\x00\x01\x00\x00\x00\x00"));
        (* "a" encodes as 00000001 'a' 000000; corrupt a pad byte *)
        let enc = Bytes.of_string (Xdr.encode (Xdr.str ()) "a") in
        Bytes.set enc 7 '\x01';
        check bool "nonzero padding" true (is_err (Xdr.decode (Xdr.str ()) (Bytes.to_string enc)));
        (* declared length overruns the buffer *)
        check bool "length overrun" true
          (is_err (Xdr.decode (Xdr.str ()) "\x00\x00\x00\xff\x61\x00\x00\x00"));
        (* absurd list count must fail before allocating *)
        check bool "huge list count" true
          (is_err (Xdr.decode (Xdr.list Xdr.uint32) "\xff\xff\xff\xff"));
        check bool "bad union discriminant" true
          (is_err (Xdr.decode Asset.xdr "\x00\x00\x00\x07"));
        check bool "bad bool" true (is_err (Xdr.decode Xdr.bool "\x00\x00\x00\x02")));
    test_case "quorum set decode re-validates invariants" `Quick (fun () ->
        (* threshold 3 over 1 validator: structurally decodable, semantically bad *)
        let w = Xdr.Writer.create () in
        Xdr.Writer.uint32 w 3;
        Xdr.Writer.uint32 w 1;
        Xdr.Writer.opaque_var w "v1";
        Xdr.Writer.uint32 w 0;
        match Scp.Quorum_set.decode (Xdr.Writer.contents w) with
        | Ok _ -> Alcotest.fail "accepted out-of-range threshold"
        | Error _ -> ());
  ]

(* ---------- hashes and sizes are measured over canonical bytes ---------- *)

let accounting_tests =
  let open Alcotest in
  [
    test_case "content hashes = SHA-256 of canonical bytes" `Quick (fun () ->
        for _ = 1 to 25 do
          let q = gen_qset 0 in
          check string "quorum set" (hex (sha256 (Scp.Quorum_set.encode q)))
            (hex (Scp.Quorum_set.hash q));
          let h = gen_header () in
          check string "header" (hex (sha256 (Header.encode h))) (hex (Header.hash h));
          let v = gen_value () in
          check string "value"
            (hex (sha256 (Stellar_herder.Value.encode v)))
            (hex (Stellar_herder.Value.hash v));
          let ts = gen_tx_set () in
          check string "tx set"
            (hex (sha256 (Stellar_herder.Tx_set.encode ts)))
            (hex (Stellar_herder.Tx_set.hash ts));
          let m = gen_message () in
          check string "message dedup key"
            (hex (sha256 (Stellar_node.Message.encode m)))
            (hex (Stellar_node.Message.dedup_key m))
        done);
    test_case "sizes = Bytes.length of the actual encoding" `Quick (fun () ->
        for _ = 1 to 25 do
          let s = gen_signed () in
          check int "tx size" (String.length (Xdr.encode Tx.signed_xdr s)) (Tx.size s);
          let e = gen_envelope () in
          check int "envelope size"
            (String.length (Scp.Types.encode_envelope e))
            (Scp.Types.envelope_size e);
          let ts = gen_tx_set () in
          check int "tx set size"
            (String.length (Stellar_herder.Tx_set.encode ts))
            (Stellar_herder.Tx_set.size_bytes ts);
          let m = gen_message () in
          check int "message size"
            (String.length (Stellar_node.Message.encode m))
            (Stellar_node.Message.size m)
        done);
  ]

(* ---------- golden vectors for domain codecs ---------- *)

(* Fixed values encoded byte-for-byte.  If one of these checks fails, the
   wire format changed: every content hash in the system changes with it,
   so this must be a deliberate, documented decision. *)

let golden_asset = Asset.credit ~code:"USD" ~issuer:"issuer-1"

let golden_tx =
  {
    Tx.source = "alice";
    fee = 200;
    seq_num = 42;
    time_bounds = Some { Tx.min_time = 5; max_time = 500 };
    memo = Tx.Memo_text "hello";
    operations =
      [
        {
          Tx.op_source = None;
          body = Tx.Payment { destination = "bob"; asset = golden_asset; amount = 1000 };
        };
      ];
  }

let golden_signed = { Tx.tx = golden_tx; signatures = [ ("alice", "sig-bytes") ] }

let golden_header =
  {
    Header.ledger_seq = 7;
    prev_hash = "prev";
    scp_value_hash = "scpv";
    tx_set_hash = "txs";
    results_hash = "res";
    snapshot_hash = "snap";
    close_time = 1234;
    base_fee = 100;
    base_reserve = 5000000;
    protocol_version = 1;
    fee_pool = 300;
    id_pool = 9;
    skip_list = [ "s0"; "s1" ];
  }

let golden_envelope =
  {
    Scp.Types.statement =
      {
        Scp.Types.node_id = "node-a";
        slot = 7;
        quorum_set = Scp.Quorum_set.make ~threshold:1 [ "node-a" ];
        pledge =
          Scp.Types.Prepare
            {
              ballot = { Scp.Types.counter = 2; value = "val" };
              prepared = Some { Scp.Types.counter = 1; value = "val" };
              prepared_prime = None;
              n_c = 0;
              n_h = 1;
            };
      };
    signature = "sig";
  }

let golden_value =
  {
    Stellar_herder.Value.tx_set_hash = "tsh";
    close_time = 1000;
    upgrades = [ Stellar_herder.Value.Upgrade_base_fee 250 ];
  }

let golden_entry =
  Entry.Trustline_entry
    {
      account = "bob";
      asset = golden_asset;
      tl_balance = 77;
      limit = 1000;
      authorized = true;
    }

let golden_item = { Stellar_bucket.Bucket.key = Entry.Account_key "gone"; entry = None }

let goldens : (string * string * string) list Lazy.t =
  lazy
    [
      ( "asset",
        hex (Xdr.encode Asset.xdr golden_asset),
        "000000010000000355534400000000086973737565722d31" );
      ( "tx",
        hex (Xdr.encode Tx.xdr golden_tx),
        "00000005616c69636500000000000000000000c8000000000000002a00000001000000000000000500000000000001f4000000010000000568656c6c6f00000000000001000000000000000100000003626f6200000000010000000355534400000000086973737565722d3100000000000003e8"
      );
      ( "signed tx",
        hex (Xdr.encode Tx.signed_xdr golden_signed),
        "00000005616c69636500000000000000000000c8000000000000002a00000001000000000000000500000000000001f4000000010000000568656c6c6f00000000000001000000000000000100000003626f6200000000010000000355534400000000086973737565722d3100000000000003e80000000100000005616c696365000000000000097369672d6279746573000000"
      );
      ( "header",
        hex (Xdr.encode Header.xdr golden_header),
        "0000000000000007000000047072657600000004736370760000000374787300000000037265730000000004736e617000000000000004d2000000000000006400000000004c4b400000000000000001000000000000012c00000000000000090000000200000002733000000000000273310000"
      );
      ( "envelope",
        hex (Xdr.encode Scp.Types.envelope_xdr golden_envelope),
        "000000066e6f64652d61000000000000000000070000000100000001000000066e6f64652d610000000000000000000100000000000000020000000376616c000000000100000000000000010000000376616c0000000000000000000000000000000000000000010000000373696700"
      );
      ( "value",
        hex (Xdr.encode Stellar_herder.Value.xdr golden_value),
        "000000037473680000000000000003e8000000010000000000000000000000fa" );
      ( "entry",
        hex (Xdr.encode Entry.entry_xdr golden_entry),
        "0000000100000003626f6200000000010000000355534400000000086973737565722d31000000000000004d00000000000003e800000001"
      );
      ( "bucket item",
        hex (Xdr.encode Stellar_bucket.Bucket.item_xdr golden_item),
        "0000000000000004676f6e6500000000" );
    ]

let () =
  if Sys.getenv_opt "XDR_PRINT_GOLDEN" <> None then begin
    List.iter (fun (name, actual, _) -> Printf.eprintf "GOLDEN %-12s %s\n" name actual)
      (Lazy.force goldens);
    exit 0
  end

let golden_tests =
  [
    Alcotest.test_case "domain golden vectors" `Quick (fun () ->
        List.iter
          (fun (name, actual, expected) -> Alcotest.(check string) name expected actual)
          (Lazy.force goldens));
  ]

(* ---------- archive blob round trip ---------- *)

let archive_tests =
  let open Alcotest in
  [
    test_case "archive blob round-trips bit-for-bit" `Quick (fun () ->
        let a = Stellar_archive.Archive.create ~checkpoint_frequency:4 () in
        let known_tx = ref None in
        for seq = 1 to 10 do
          let txs = List.init 2 (fun _ -> gen_signed ()) in
          (match (txs, !known_tx) with s :: _, None -> known_tx := Some s | _ -> ());
          let tx_set = Stellar_herder.Tx_set.make ~prev_header_hash:(Rng.bytes rng 32) txs in
          let header = { (gen_header ()) with Header.ledger_seq = seq } in
          Stellar_archive.Archive.record_ledger a ~header ~tx_set ~buckets:(gen_bucket_list ())
        done;
        let blob = Stellar_archive.Archive.to_blob a in
        match Stellar_archive.Archive.of_blob blob with
        | Error e -> failf "of_blob failed: %s" e
        | Ok b ->
            check string "re-serialization is identical" (hex (sha256 blob))
              (hex (sha256 (Stellar_archive.Archive.to_blob b)));
            check bool "latest seq" true
              (Stellar_archive.Archive.latest_seq b = Some 10);
            check int "checkpoints" 2 (Stellar_archive.Archive.checkpoint_count b);
            check int "archived bytes" (Stellar_archive.Archive.size_bytes a)
              (Stellar_archive.Archive.size_bytes b);
            for seq = 1 to 10 do
              check bool
                (Printf.sprintf "header %d equal" seq)
                true
                (Stellar_archive.Archive.header a seq = Stellar_archive.Archive.header b seq);
              let ts_hash x =
                Option.map Stellar_herder.Tx_set.hash (Stellar_archive.Archive.tx_set_for x seq)
              in
              check bool (Printf.sprintf "tx set %d equal" seq) true (ts_hash a = ts_hash b)
            done;
            (match !known_tx with
            | None -> fail "no tx recorded"
            | Some s ->
                let h = Tx.hash s.Tx.tx in
                check bool "tx index rebuilt" true
                  (Stellar_archive.Archive.find_tx b h <> None)));
    test_case "of_blob rejects garbage" `Quick (fun () ->
        check bool "junk" true
          (Result.is_error (Stellar_archive.Archive.of_blob "garbage-bytes"));
        check bool "empty" true (Result.is_error (Stellar_archive.Archive.of_blob "")));
  ]

let () =
  Alcotest.run "xdr"
    [
      ("primitives", prim_tests);
      ("roundtrip", roundtrip_tests);
      ("accounting", accounting_tests);
      ("golden", golden_tests);
      ("archive", archive_tests);
    ]
