(* Integration tests: whole validators over the simulated overlay —
   consensus + herder + ledger + buckets together. *)

open Stellar_node

let run_scenario ?(n = 4) ?(accounts = 50) ?(rate = 5.0) ?(duration = 30.0) ?(seed = 7)
    ?(latency = Stellar_sim.Latency.datacenter) ?spec () =
  let spec = match spec with Some s -> s | None -> Topology.all_to_all ~n in
  Scenario.run
    {
      (Scenario.default ~spec) with
      Scenario.n_accounts = accounts;
      tx_rate = rate;
      duration;
      seed;
      latency;
    }

let integration_tests =
  let open Alcotest in
  [
    test_case "ledgers close on the 5s cadence" `Quick (fun () ->
        let r = run_scenario () in
        check bool "at least 5 ledgers" true (r.Scenario.ledgers_closed >= 5);
        check bool "no divergence" false r.Scenario.diverged;
        let ci = r.Scenario.close_interval.Metrics.mean in
        check bool "close interval ~5s" true (ci >= 4.9 && ci < 5.6));
    test_case "all submitted payments eventually apply" `Quick (fun () ->
        let r = run_scenario ~rate:10.0 ~duration:40.0 () in
        check int "none dropped" r.Scenario.txs_submitted r.Scenario.txs_applied);
    test_case "consensus latency well under the 5s target" `Quick (fun () ->
        let r = run_scenario () in
        check bool "nomination+balloting < 1s on datacenter links" true
          (r.Scenario.nomination.Metrics.mean +. r.Scenario.balloting.Metrics.mean < 1.0));
    test_case "~7 SCP envelopes per ledger in the fault-free case" `Quick (fun () ->
        let r = run_scenario () in
        check bool "6..10 envelopes" true
          (r.Scenario.envelopes_per_ledger >= 5.0 && r.Scenario.envelopes_per_ledger <= 10.0));
    test_case "tiered topology with watchers stays consistent" `Quick (fun () ->
        let spec, _ = Topology.tiered ~leaves:4 () in
        let r = run_scenario ~spec ~duration:25.0 ~latency:Stellar_sim.Latency.wide_area () in
        check bool "closed ledgers" true (r.Scenario.ledgers_closed >= 3);
        check bool "no divergence" false r.Scenario.diverged);
    test_case "validator count sweep keeps safety" `Quick (fun () ->
        List.iter
          (fun n ->
            let r = run_scenario ~n ~duration:20.0 ~rate:2.0 () in
            check bool (Printf.sprintf "n=%d closes" n) true (r.Scenario.ledgers_closed >= 2);
            check bool (Printf.sprintf "n=%d agrees" n) false r.Scenario.diverged)
          [ 4; 7; 10 ]);
    test_case "identical seeds give bit-identical runs (reproducibility)" `Quick
      (fun () ->
        let r1 = run_scenario ~seed:99 ~duration:20.0 () in
        let r2 = run_scenario ~seed:99 ~duration:20.0 () in
        check int "same ledgers" r1.Scenario.ledgers_closed r2.Scenario.ledgers_closed;
        check int "same txs applied" r1.Scenario.txs_applied r2.Scenario.txs_applied;
        check int "same final seq" r1.Scenario.final_ledger_seq r2.Scenario.final_ledger_seq;
        check (float 1e-12) "same nomination mean" r1.Scenario.nomination.Metrics.mean
          r2.Scenario.nomination.Metrics.mean);
    test_case "wide-area latency still beats the close target" `Quick (fun () ->
        let r = run_scenario ~latency:Stellar_sim.Latency.wide_area () in
        check bool "closes" true (r.Scenario.ledgers_closed >= 4);
        check bool "total < interval" true (r.Scenario.total.Metrics.mean < 5.0));
  ]

(* crash / partition behaviour uses the pieces directly *)
let fault_tests =
  let open Alcotest in
  [
    test_case "crashed minority does not stop the network" `Quick (fun () ->
        let spec = Topology.all_to_all ~n:4 in
        let engine = Stellar_sim.Engine.create () in
        let rng = Stellar_sim.Rng.create ~seed:3 in
        let network = Stellar_sim.Network.create ~engine ~rng ~n:4 ~latency:Stellar_sim.Latency.datacenter () in
        let genesis, _ = Genesis.make ~n_accounts:10 () in
        let mk i =
          Validator.create ~network ~index:i
            ~peers:(spec.Topology.peers_of i)
            ~config:
              (Stellar_herder.Herder.default_config ~seed:(spec.Topology.validator_seed i)
                 ~qset:(spec.Topology.qset_of i))
            ~genesis ()
        in
        let vs = Array.init 4 mk in
        Array.iter Validator.start vs;
        (* run 3 ledgers, crash one validator, run more *)
        Stellar_sim.Engine.run ~until:16.0 engine;
        Stellar_sim.Network.set_down network 3 true;
        Stellar_sim.Engine.run ~until:60.0 engine;
        let seq i = Stellar_herder.Herder.ledger_seq (Validator.herder vs.(i)) in
        check bool "survivors progressed past crash" true (seq 0 >= 8);
        check bool "agree" true (seq 0 = seq 1 && seq 1 = seq 2));
    test_case "partitioned majority continues, minority halts safely" `Quick (fun () ->
        let spec = Topology.all_to_all ~n:5 in
        let engine = Stellar_sim.Engine.create () in
        let rng = Stellar_sim.Rng.create ~seed:4 in
        let network = Stellar_sim.Network.create ~engine ~rng ~n:5 ~latency:Stellar_sim.Latency.datacenter () in
        let genesis, _ = Genesis.make ~n_accounts:10 () in
        let mk i =
          Validator.create ~network ~index:i
            ~peers:(spec.Topology.peers_of i)
            ~config:
              (Stellar_herder.Herder.default_config ~seed:(spec.Topology.validator_seed i)
                 ~qset:(spec.Topology.qset_of i))
            ~genesis ()
        in
        let vs = Array.init 5 mk in
        Array.iter Validator.start vs;
        Stellar_sim.Engine.run ~until:12.0 engine;
        (* 3-2 partition *)
        Stellar_sim.Network.set_partition network (fun i -> if i < 3 then 0 else 1);
        Stellar_sim.Engine.run ~until:60.0 engine;
        let seq i = Stellar_herder.Herder.ledger_seq (Validator.herder vs.(i)) in
        let majority = seq 0 in
        let minority = seq 3 in
        check bool "majority progressed" true (majority > minority);
        (* the minority must not have closed a conflicting ledger: its chain
           is a strict prefix of the majority's *)
        let chain i =
          List.rev_map Stellar_ledger.Header.hash
            (Stellar_herder.Herder.headers (Validator.herder vs.(i)))
        in
        let rec is_prefix a b =
          match (a, b) with
          | [], _ -> true
          | x :: a', y :: b' -> String.equal x y && is_prefix a' b'
          | _, [] -> false
        in
        check bool "minority chain is a prefix" true (is_prefix (chain 3) (chain 0));
        (* heal the partition: peers help the stragglers finish the old
           slots (the §6 fix), so the minority catches up ledger by ledger *)
        Stellar_sim.Network.set_partition network (fun _ -> 0);
        Stellar_sim.Engine.run ~until:130.0 engine;
        check bool "minority caught up after heal" true (seq 3 >= seq 0 - 1);
        check bool "chains consistent after heal" true
          (is_prefix (chain 3) (chain 0) || is_prefix (chain 0) (chain 3)));
    test_case "surge pricing under congestion (§5.2)" `Quick (fun () ->
        (* cap ledgers at 5 operations; submit 15 competing 1-op payments
           with tiered fees; the expensive ones must land first *)
        let spec = Topology.all_to_all ~n:4 in
        let engine = Stellar_sim.Engine.create () in
        let rng = Stellar_sim.Rng.create ~seed:23 in
        let network = Stellar_sim.Network.create ~engine ~rng ~n:4 ~latency:Stellar_sim.Latency.datacenter () in
        let genesis, accounts = Genesis.make ~n_accounts:15 () in
        let ledger_txs = ref [] in
        let v = ref None in
        let on_ledger_closed stats =
          match !v with
          | Some validator ->
              let herder = Validator.herder validator in
              let ts =
                Stellar_herder.Herder.tx_set herder
                  stats.Stellar_herder.Herder.header.Stellar_ledger.Header.tx_set_hash
              in
              Option.iter
                (fun ts -> ledger_txs := Stellar_herder.Tx_set.txs ts :: !ledger_txs)
                ts
          | None -> ()
        in
        let mk i =
          let config =
            {
              (Stellar_herder.Herder.default_config ~seed:(spec.Topology.validator_seed i)
                 ~qset:(spec.Topology.qset_of i))
              with
              Stellar_herder.Herder.max_ops_per_ledger = 5;
            }
          in
          Validator.create ~network ~index:i ~peers:(spec.Topology.peers_of i) ~config
            ~genesis
            ~on_ledger_closed:(if i = 0 then on_ledger_closed else fun _ -> ())
            ()
        in
        let vs = Array.init 4 mk in
        v := Some vs.(0);
        Array.iter Validator.start vs;
        let scheme = (module Stellar_crypto.Sim_sig : Stellar_crypto.Sig_intf.SCHEME with type secret = string) in
        (* 15 payments: fees 100..1500 stroops, all submitted up front *)
        Array.iteri
          (fun i (a : Genesis.account) ->
            let tx =
              Stellar_ledger.Tx.make ~source:a.Genesis.public ~seq_num:1
                ~fee:(100 * (i + 1))
                [
                  Stellar_ledger.Tx.op
                    (Stellar_ledger.Tx.Payment
                       {
                         destination = accounts.((i + 1) mod 15).Genesis.public;
                         asset = Stellar_ledger.Asset.native;
                         amount = 10;
                       });
                ]
            in
            Validator.submit_tx vs.(0)
              (Stellar_ledger.Tx.sign tx ~secret:a.Genesis.secret ~public:a.Genesis.public
                 ~scheme))
          accounts;
        Stellar_sim.Engine.run ~until:21.0 engine;
        let ledgers = List.rev !ledger_txs in
        let nonempty = List.filter (fun l -> l <> []) ledgers in
        check bool "needed multiple ledgers" true (List.length nonempty >= 2);
        (* the first non-empty ledger must carry the highest-fee txs *)
        let first = List.hd nonempty in
        let fees = List.map (fun s -> s.Stellar_ledger.Tx.tx.Stellar_ledger.Tx.fee) first in
        check int "full ledger" 5 (List.length fees);
        List.iter
          (fun f -> check bool (Printf.sprintf "fee %d in top tier" f) true (f >= 1100))
          fees);
    test_case "misconfigured disjoint cliques diverge at the ledger level (§6)" `Quick
      (fun () ->
        (* the incident §6 guards against: two cliques that do not reference
           each other each confirm their own, conflicting ledgers.  (With
           identical inputs the halves can agree by accident, so each clique
           governs a different upgrade to make the conflict real.)  The
           quorum doctor flags the configuration up front. *)
        let base = Topology.all_to_all ~n:6 in
        let ids = Topology.node_ids base in
        let qset_of i =
          if i < 3 then Scp.Quorum_set.majority [ ids.(0); ids.(1); ids.(2) ]
          else Scp.Quorum_set.majority [ ids.(3); ids.(4); ids.(5) ]
        in
        let engine = Stellar_sim.Engine.create () in
        let rng = Stellar_sim.Rng.create ~seed:13 in
        let network =
          Stellar_sim.Network.create ~engine ~rng ~n:6
            ~latency:Stellar_sim.Latency.datacenter ()
        in
        let genesis, _ = Genesis.make ~n_accounts:10 () in
        let vs =
          Array.init 6 (fun i ->
              let fee = if i < 3 then 150 else 250 in
              Validator.create ~network ~index:i ~peers:(base.Topology.peers_of i)
                ~config:
                  {
                    (Stellar_herder.Herder.default_config
                       ~seed:(base.Topology.validator_seed i) ~qset:(qset_of i))
                    with
                    Stellar_herder.Herder.is_governing = true;
                    desired_upgrades = [ Stellar_herder.Value.Upgrade_base_fee fee ];
                  }
                ~genesis ())
        in
        Array.iter Validator.start vs;
        Stellar_sim.Engine.run ~until:40.0 engine;
        let fee i =
          Stellar_ledger.State.base_fee
            (Stellar_herder.Herder.state (Validator.herder vs.(i)))
        in
        let seq i = Stellar_herder.Herder.ledger_seq (Validator.herder vs.(i)) in
        check bool "both halves made progress" true (seq 0 >= 4 && seq 3 >= 4);
        check bool "conflicting global parameters confirmed" true (fee 0 <> fee 3);
        (* the §6.2 checker catches the misconfiguration statically *)
        let spec = { base with Topology.qset_of } in
        let config = Topology.network_config spec in
        match Quorum_analysis.Intersection.check config with
        | Quorum_analysis.Intersection.Disjoint _ -> ()
        | _ -> fail "doctor failed to flag the split-brain configuration");
    test_case "leaf watcher tracks without validating" `Quick (fun () ->
        let spec, _ = Topology.tiered ~leaves:1 () in
        let n = spec.Topology.n_nodes in
        let r = run_scenario ~spec ~duration:20.0 ~rate:2.0 () in
        ignore n;
        check bool "network closed ledgers" true (r.Scenario.ledgers_closed >= 2));
  ]

(* ---------- archive + catchup ---------- *)

let archive_tests =
  let open Alcotest in
  [
    test_case "record, find, catch up to tip" `Quick (fun () ->
        (* drive a single-validator network and archive its ledgers, then
           bootstrap a state from the archive and compare hashes *)
        let engine = Stellar_sim.Engine.create () in
        let rng = Stellar_sim.Rng.create ~seed:5 in
        let network = Stellar_sim.Network.create ~engine ~rng ~n:1 ~latency:(Stellar_sim.Latency.Constant 0.001) () in
        let genesis, accounts = Genesis.make ~n_accounts:20 () in
        let archive = Stellar_archive.Archive.create ~checkpoint_frequency:4 () in
        let spec = Topology.all_to_all ~n:1 in
        let recorded = ref [] in
        let v = ref None in
        let on_ledger_closed stats =
          recorded := stats :: !recorded;
          match !v with
          | Some validator ->
              let herder = Validator.herder validator in
              let header = stats.Stellar_herder.Herder.header in
              let ts =
                Option.get
                  (Stellar_herder.Herder.tx_set herder header.Stellar_ledger.Header.tx_set_hash)
              in
              Stellar_archive.Archive.record_ledger archive ~header ~tx_set:ts
                ~buckets:(Stellar_herder.Herder.buckets herder)
          | None -> ()
        in
        let validator =
          Validator.create ~network ~index:0 ~peers:[]
            ~config:
              (Stellar_herder.Herder.default_config ~seed:(spec.Topology.validator_seed 0)
                 ~qset:(Scp.Quorum_set.singleton (Topology.node_ids spec).(0)))
            ~genesis ~on_ledger_closed ()
        in
        v := Some validator;
        Validator.start validator;
        (* submit some payments *)
        let scheme = (module Stellar_crypto.Sim_sig : Stellar_crypto.Sig_intf.SCHEME with type secret = string) in
        for i = 0 to 9 do
          let src = accounts.(i) and dst = accounts.((i + 1) mod 20) in
          let tx =
            Stellar_ledger.Tx.make ~source:src.Genesis.public ~seq_num:1
              [
                Stellar_ledger.Tx.op
                  (Stellar_ledger.Tx.Payment
                     {
                       destination = dst.Genesis.public;
                       asset = Stellar_ledger.Asset.native;
                       amount = 100;
                     });
              ]
          in
          let signed =
            Stellar_ledger.Tx.sign tx ~secret:src.Genesis.secret ~public:src.Genesis.public
              ~scheme
          in
          ignore
            (Stellar_sim.Engine.schedule engine ~delay:(float_of_int i) (fun () ->
                 Validator.submit_tx validator signed))
        done;
        Stellar_sim.Engine.run ~until:62.0 engine;
        Validator.stop validator;
        check bool "archived some ledgers" true
          (Option.value ~default:0 (Stellar_archive.Archive.latest_seq archive) >= 10);
        check bool "has checkpoints" true (Stellar_archive.Archive.checkpoint_count archive >= 2);
        (* catchup *)
        (match Stellar_archive.Archive.catchup archive with
        | Error e -> fail e
        | Ok (state, _buckets, chain) ->
            let live = Stellar_herder.Herder.state (Validator.herder validator) in
            check bool "caught-up state matches live snapshot" true
              (String.equal
                 (Stellar_ledger.State.snapshot_hash state)
                 (Stellar_ledger.State.snapshot_hash live));
            check bool "chain verified" true (Stellar_ledger.Header.verify_chain chain));
        (* tx lookup by hash *)
        let src = accounts.(0) in
        let tx =
          Stellar_ledger.Tx.make ~source:src.Genesis.public ~seq_num:1
            [
              Stellar_ledger.Tx.op
                (Stellar_ledger.Tx.Payment
                   {
                     destination = accounts.(1).Genesis.public;
                     asset = Stellar_ledger.Asset.native;
                     amount = 100;
                   });
            ]
        in
        match Stellar_archive.Archive.find_tx archive (Stellar_ledger.Tx.hash tx) with
        | Some (seq, _) -> check bool "found in an early ledger" true (seq >= 2)
        | None -> fail "tx not found in archive");
    test_case "out-of-order publication rejected" `Quick (fun () ->
        let archive = Stellar_archive.Archive.create () in
        let genesis, _ = Genesis.make ~n_accounts:1 () in
        let buckets = Stellar_bucket.Bucket_list.of_state genesis in
        let mk seq =
          let state = Stellar_ledger.State.set_header genesis ~ledger_seq:seq ~close_time:seq in
          Stellar_ledger.Header.make ~prev:None ~scp_value_hash:"v" ~tx_set_hash:"t"
            ~results_hash:"r" ~snapshot_hash:(Stellar_bucket.Bucket_list.hash buckets) ~state
        in
        let ts = Stellar_herder.Tx_set.make ~prev_header_hash:"p" [] in
        Stellar_archive.Archive.record_ledger archive ~header:(mk 2) ~tx_set:ts ~buckets;
        check_raises "gap rejected"
          (Invalid_argument "Archive.record_ledger: out of order (5 after 2)") (fun () ->
            Stellar_archive.Archive.record_ledger archive ~header:(mk 5) ~tx_set:ts ~buckets));
  ]

(* ---------- topology & genesis ---------- *)

let topo_tests =
  let open Alcotest in
  [
    test_case "all_to_all shape" `Quick (fun () ->
        let spec = Topology.all_to_all ~n:5 in
        check int "nodes" 5 spec.Topology.n_nodes;
        check int "peers" 4 (List.length (spec.Topology.peers_of 0));
        check int "majority threshold" 3 (spec.Topology.qset_of 0).Scp.Quorum_set.threshold);
    test_case "tiered default has 17 tier-1 validators" `Quick (fun () ->
        let _, orgs = Topology.tiered () in
        let tier1 =
          List.filter (fun o -> o.Quorum_analysis.Synthesis.quality = Quorum_analysis.Synthesis.Critical) orgs
        in
        let n = List.fold_left (fun acc o -> acc + List.length o.Quorum_analysis.Synthesis.validators) 0 tier1 in
        check int "17 tier-1" 17 n);
    test_case "tiered config enjoys quorum intersection" `Quick (fun () ->
        let spec, _ = Topology.tiered () in
        let config = Topology.network_config spec in
        check bool "intersecting" true
          (Quorum_analysis.Intersection.check config = Quorum_analysis.Intersection.Intersecting));
    test_case "genesis conserves the total supply" `Quick (fun () ->
        let state, accounts = Genesis.make ~n_accounts:100 () in
        check int "accounts + master" 101 (Stellar_ledger.State.account_count state);
        check int "supply" (Stellar_ledger.Asset.of_units 1_000_000_000_000)
          (Stellar_ledger.State.total_native state);
        check bool "keys distinct" true
          (Array.length accounts
          = List.length
              (List.sort_uniq String.compare
                 (Array.to_list (Array.map (fun a -> a.Genesis.public) accounts)))));
  ]


(* ---------- archive-bootstrap join (§5.4) ---------- *)

let join_tests =
  let open Alcotest in
  [
    test_case "new node bootstraps from the archive and joins the network" `Quick
      (fun () ->
        (* 4 founding validators run and publish to an archive; later a 5th
           node catches up from the archive and starts tracking the live
           network in agreement *)
        let n = 5 in
        let engine = Stellar_sim.Engine.create () in
        let rng = Stellar_sim.Rng.create ~seed:17 in
        let network =
          Stellar_sim.Network.create ~engine ~rng ~n
            ~latency:Stellar_sim.Latency.datacenter ()
        in
        let genesis, _ = Genesis.make ~n_accounts:10 () in
        let archive = Stellar_archive.Archive.create ~checkpoint_frequency:4 () in
        (* founders trust a majority of the four founders only *)
        let founder_ids = Array.init 4 (fun i -> (Topology.node_ids (Topology.all_to_all ~n:4)).(i)) in
        let qset = Scp.Quorum_set.majority (Array.to_list founder_ids) in
        let founders =
          Array.init 4 (fun i ->
              let v = ref None in
              let on_ledger_closed =
                if i = 0 then (fun stats ->
                  match !v with
                  | Some validator ->
                      let herder = Validator.herder validator in
                      let header = stats.Stellar_herder.Herder.header in
                      let ts =
                        Option.get
                          (Stellar_herder.Herder.tx_set herder
                             header.Stellar_ledger.Header.tx_set_hash)
                      in
                      Stellar_archive.Archive.record_ledger archive ~header ~tx_set:ts
                        ~buckets:(Stellar_herder.Herder.buckets herder)
                  | None -> ())
                else fun _ -> ()
              in
              let validator =
                Validator.create ~network ~index:i
                  ~peers:(List.filter (fun j -> j <> i) [ 0; 1; 2; 3; 4 ])
                  ~config:
                    (Stellar_herder.Herder.default_config
                       ~seed:(Stellar_crypto.Sha256.digest (Printf.sprintf "validator-%d" i))
                       ~qset)
                  ~genesis ~on_ledger_closed ()
              in
              v := Some validator;
              validator)
        in
        Array.iter Validator.start founders;
        Stellar_sim.Engine.run ~until:31.0 engine;
        let founder_seq = Stellar_herder.Herder.ledger_seq (Validator.herder founders.(0)) in
        check bool "founders made progress" true (founder_seq >= 6);
        (* the newcomer catches up offline from the archive... *)
        let state, catchup_buckets, chain =
          match Stellar_archive.Archive.catchup archive with
          | Ok r -> r
          | Error e -> fail e
        in
        let newcomer =
          Validator.create ~network ~index:4 ~peers:[ 0; 1; 2; 3 ]
            ~config:
              {
                (Stellar_herder.Herder.default_config
                   ~seed:(Stellar_crypto.Sha256.digest "newcomer") ~qset)
                with
                Stellar_herder.Herder.is_validator = false;
              }
            ~genesis:state ~buckets:catchup_buckets ~headers:(List.rev chain) ()
        in
        Validator.start newcomer;
        let start_seq = Stellar_herder.Herder.ledger_seq (Validator.herder newcomer) in
        Stellar_sim.Engine.run ~until:(Stellar_sim.Engine.now engine +. 30.0) engine;
        let new_seq = Stellar_herder.Herder.ledger_seq (Validator.herder newcomer) in
        check bool "newcomer tracked new ledgers" true (new_seq > start_seq);
        (* and its chain head matches a founder at the same height *)
        let founder_headers = Stellar_herder.Herder.headers (Validator.herder founders.(1)) in
        let new_head = Option.get (Stellar_herder.Herder.last_header (Validator.herder newcomer)) in
        let matching =
          List.find_opt
            (fun h -> h.Stellar_ledger.Header.ledger_seq = new_seq)
            founder_headers
        in
        match matching with
        | Some h ->
            check bool "same header hash" true
              (String.equal (Stellar_ledger.Header.hash h) (Stellar_ledger.Header.hash new_head))
        | None -> fail "founder does not have the newcomer's height yet");
  ]

let () =
  Alcotest.run "node"
    [
      ("integration", integration_tests);
      ("faults", fault_tests);
      ("archive", archive_tests);
      ("join", join_tests);
      ("topology", topo_tests);
    ]
